//! Functional-equivalence properties of the low-power test mode.
//!
//! The paper's technique must be invisible to the March test: every read
//! returns the expected value, no cell is corrupted, and the result holds
//! for any data background and any array shape. These properties are
//! exercised over seeded randomised configurations (the workspace carries
//! its own deterministic generator instead of `proptest`, which the offline
//! build environment cannot fetch), together with the negative control
//! showing that dropping the row-transition restore breaks them.

use sram_test_power::lp_precharge::prelude::*;
use sram_test_power::march_test::library;
use sram_test_power::march_test::rng::SplitMix64;
use sram_test_power::sram_model::config::{ArrayOrganization, SramConfig};

fn session(rows: u32, cols: u32) -> TestSession {
    TestSession::new(
        SramConfig::builder()
            .organization(ArrayOrganization::new(rows, cols).unwrap())
            .build()
            .unwrap(),
    )
}

#[test]
fn low_power_march_c_minus_is_functionally_correct() {
    let outcome = session(8, 32)
        .run(&library::march_c_minus(), OperatingMode::LowPowerTest)
        .unwrap();
    assert!(outcome.is_functionally_correct());
    assert_eq!(outcome.faulty_swaps, 0);
    assert_eq!(outcome.read_mismatches, 0);
}

#[test]
fn disabling_the_restore_cycle_corrupts_cells() {
    let outcome = session(8, 32)
        .with_options(LpOptions {
            row_transition_restore: false,
            ..LpOptions::default()
        })
        .run_with_background(&library::march_c_minus(), OperatingMode::LowPowerTest, true)
        .unwrap();
    assert!(outcome.faulty_swaps > 0, "the Figure 7 hazard must appear");
}

#[test]
fn full_verification_suite_passes_for_mats_plus_and_march_sr() {
    let config = SramConfig::builder()
        .organization(ArrayOrganization::new(8, 32).unwrap())
        .build()
        .unwrap();
    for test in [library::mats_plus(), library::march_sr()] {
        let report =
            sram_test_power::lp_precharge::verification::verify_technique(&config, &test).unwrap();
        assert!(report.all_checks_passed(), "{}: {report:?}", test.name());
    }
}

#[test]
fn stress_is_reduced_by_two_orders_of_magnitude_on_wide_arrays() {
    let session = session(4, 256);
    let functional = session
        .run(&library::mats_plus(), OperatingMode::Functional)
        .unwrap();
    let low_power = session
        .run(&library::mats_plus(), OperatingMode::LowPowerTest)
        .unwrap();
    // Functional mode stresses #cols − 1 cells per cycle; the low-power mode
    // stresses one full cell plus the handful of still-discharging ones.
    assert!(functional.stress.stressed_cells_per_cycle() > 200.0);
    assert!(low_power.stress.stressed_cells_per_cycle() < 15.0);
}

#[test]
fn very_narrow_arrays_may_not_benefit_but_stay_correct() {
    // The savings scale with (#cols − 2) while the low-power mode adds the
    // next-column recharge and the row-transition restores, so on a very
    // narrow array the technique can cost slightly more than it saves. It
    // must still be functionally correct.
    let outcome = session(4, 4)
        .run(&library::mats_plus(), OperatingMode::LowPowerTest)
        .unwrap();
    assert!(outcome.is_functionally_correct());
}

/// For any array shape wide enough for the savings to dominate the fixed
/// overheads, and any uniform data background, the low-power schedule of
/// MATS+ is functionally equivalent to the functional-mode test and
/// consumes less energy. Eight seeded random configurations per run.
#[test]
fn low_power_mode_is_correct_and_cheaper_for_any_shape() {
    let mut rng = SplitMix64::new(0xDA7E_2006);
    for _ in 0..8 {
        let rows = 2 + rng.next_below(8) as u32; // 2..10
        let cols = 24 + rng.next_below(40) as u32; // 24..64
        let background = rng.next_bool();
        let session = session(rows, cols);
        let test = library::mats_plus();
        let functional = session
            .run_with_background(&test, OperatingMode::Functional, background)
            .unwrap();
        let low_power = session
            .run_with_background(&test, OperatingMode::LowPowerTest, background)
            .unwrap();
        let case = format!("rows={rows} cols={cols} background={background}");
        assert!(low_power.is_functionally_correct(), "{case}");
        assert!(functional.is_functionally_correct(), "{case}");
        assert!(
            low_power.report.total_energy < functional.report.total_energy,
            "{case}"
        );
        assert_eq!(low_power.report.cycles, functional.report.cycles, "{case}");
    }
}

/// The measured PRR always lies strictly between 0 and 1 and never exceeds
/// the share of power the pre-charge activity had in the functional run.
#[test]
fn prr_is_bounded_by_the_functional_precharge_share() {
    let mut rng = SplitMix64::new(0x50_4152_5221); // "PRR!"
    for _ in 0..8 {
        let rows = 2 + rng.next_below(6) as u32; // 2..8
        let cols = 24 + rng.next_below(40) as u32; // 24..64
        let session = session(rows, cols);
        let test = library::mats_plus();
        let functional = session.run(&test, OperatingMode::Functional).unwrap();
        let record = session.compare(&test).unwrap();
        assert!(record.prr > 0.0, "rows={rows} cols={cols}");
        assert!(record.prr < 1.0, "rows={rows} cols={cols}");
        assert!(
            record.prr <= functional.report.precharge_fraction + 1e-9,
            "PRR {} cannot exceed the pre-charge share {} (rows={rows} cols={cols})",
            record.prr,
            functional.report.precharge_fraction
        );
    }
}
