//! Integration test for the headline result (Table 1 of the paper).
//!
//! The full 512×512 cycle-accurate reproduction lives in the `repro`
//! binary and the Criterion benches (it takes seconds in release mode);
//! here the analytic model carries the 512-column claims while the
//! cycle-accurate engine is cross-checked on a smaller array where a debug
//! build stays fast.

use sram_test_power::lp_precharge::prelude::*;
use sram_test_power::lp_precharge::report::{paper_table1_reference, table1_row};
use sram_test_power::march_test::library;
use sram_test_power::power_model::analytic::AnalyticPowerModel;
use sram_test_power::power_model::calibration::CalibratedParameters;
use sram_test_power::sram_model::config::{ArrayOrganization, SramConfig, TechnologyParams};

#[test]
fn analytic_prr_matches_the_paper_band_on_the_512x512_array() {
    let organization = ArrayOrganization::paper_512x512();
    let model = AnalyticPowerModel::new(CalibratedParameters::derive(
        &TechnologyParams::default_013um(),
        &organization,
    ));
    for (name, paper_prr) in paper_table1_reference() {
        let test = library::table1_algorithms()
            .into_iter()
            .find(|t| t.name() == name)
            .expect("table 1 algorithm present in the library");
        let prr = model.power_reduction_ratio(&test, &organization) * 100.0;
        assert!(
            (prr - paper_prr).abs() < 4.0,
            "{name}: analytic PRR {prr:.1}% vs paper {paper_prr:.1}%"
        );
    }
}

#[test]
fn simulated_and_analytic_prr_agree_on_a_medium_array() {
    // 32×64 keeps the debug-build runtime reasonable while still giving the
    // pre-charge savings a visible share of the total power.
    let config = SramConfig::builder()
        .organization(ArrayOrganization::new(32, 64).unwrap())
        .build()
        .unwrap();
    for test in [library::mats_plus(), library::march_c_minus()] {
        let row = table1_row(&config, &test).unwrap();
        assert!(
            row.prr_simulated_percent > 0.0,
            "{}: the low-power mode must save power",
            test.name()
        );
        assert!(
            (row.prr_simulated_percent - row.prr_analytic_percent).abs() < 5.0,
            "{}: simulated {:.1}% and analytic {:.1}% should agree",
            test.name(),
            row.prr_simulated_percent,
            row.prr_analytic_percent
        );
    }
}

#[test]
fn prr_grows_with_the_number_of_columns() {
    let test = library::march_c_minus();
    let technology = TechnologyParams::default_013um();
    let mut last = 0.0;
    for cols in [64u32, 128, 256, 512] {
        let organization = ArrayOrganization::new(64, cols).unwrap();
        let model =
            AnalyticPowerModel::new(CalibratedParameters::derive(&technology, &organization));
        let prr = model.power_reduction_ratio(&test, &organization);
        assert!(
            prr > last,
            "PRR must grow with the column count (cols={cols}: {prr})"
        );
        last = prr;
    }
}

#[test]
fn functional_power_exceeds_low_power_for_every_table1_algorithm() {
    let config = SramConfig::builder()
        .organization(ArrayOrganization::new(16, 32).unwrap())
        .build()
        .unwrap();
    let session = TestSession::new(config);
    for test in library::table1_algorithms() {
        let record = session.compare(&test).unwrap();
        assert!(
            record.functional.average_power > record.low_power.average_power,
            "{}: functional {:?} vs low-power {:?}",
            test.name(),
            record.functional.average_power,
            record.low_power.average_power
        );
        assert!(record.prr > 0.0 && record.prr < 1.0);
    }
}

#[test]
fn workload_statistics_match_table1() {
    let expected = [
        ("March C-", 6, 10, 5, 5),
        ("March SS", 6, 22, 13, 9),
        ("MATS+", 3, 5, 2, 3),
        ("March SR", 6, 14, 8, 6),
        ("March G", 7, 23, 10, 13),
    ];
    let algorithms = library::table1_algorithms();
    assert_eq!(algorithms.len(), expected.len());
    for (test, (name, elements, ops, reads, writes)) in algorithms.iter().zip(expected) {
        assert_eq!(test.name(), name);
        assert_eq!(test.element_count(), elements);
        assert_eq!(test.operation_count(), ops);
        assert_eq!(test.read_count(), reads);
        assert_eq!(test.write_count(), writes);
    }
}
