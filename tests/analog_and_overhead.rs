//! Cross-crate checks of the analog substrate and the hardware-overhead
//! claims (experiments E3 and E7).

use sram_test_power::lp_precharge::control_logic::{
    ControlInputs, ModifiedPrechargeController, PrechargeControlElement,
};
use sram_test_power::lp_precharge::timing::TimingImpact;
use sram_test_power::sram_model::bitline::BitLinePair;
use sram_test_power::sram_model::config::TechnologyParams;
use sram_test_power::transient::prelude::*;

#[test]
fn floating_bitline_discharge_takes_about_nine_cycles_in_both_models() {
    let technology = TechnologyParams::default_013um();

    // Behavioural model (constant-current discharge used by the array).
    let mut pair = BitLinePair::precharged(technology.vdd);
    let mut behavioural_cycles = 0;
    while pair.bl().value() > 0.05 && behavioural_cycles < 50 {
        pair.float_discharge_by_cell(false, &technology);
        behavioural_cycles += 1;
    }
    assert!(
        (8..=11).contains(&behavioural_cycles),
        "behavioural model took {behavioural_cycles} cycles"
    );

    // Netlist model: same capacitance discharged through a resistance that
    // matches the cell read current at VDD; the time to fall below the
    // logic threshold must land in the same handful of cycles.
    let mut netlist = Netlist::new();
    let gnd = netlist.add_source("GND", Volts::ZERO);
    let bl = netlist.add_node("BL", technology.bitline_capacitance, technology.vdd);
    let wl = netlist.add_switch("WL", true);
    let r_cell = technology.vdd.value() / technology.cell_read_current.value();
    netlist.add_gated_resistor(bl, gnd, Ohms(r_cell), wl);
    let mut solver = TransientSolver::new(netlist);
    let result = solver.run(SolverConfig::for_duration(Seconds(
        technology.clock_period.value() * 40.0,
    )));
    let waveform = result.waveform(bl).unwrap();
    let crossing = waveform
        .first_crossing(technology.logic_threshold, true)
        .expect("the bit line must cross the threshold");
    let cycles = crossing.value() / technology.clock_period.value();
    assert!(
        (1.0..15.0).contains(&cycles),
        "netlist model crossed the threshold after {cycles:.1} cycles"
    );
}

#[test]
fn charge_sharing_predicts_the_faulty_swap_exactly_when_the_bitline_is_low() {
    let technology = TechnologyParams::default_013um();
    let threshold = technology.logic_threshold;
    // Bit line fully discharged: the cell node is dragged below threshold.
    assert!(transient::charge_share::node_flips(
        technology.cell_node_capacitance,
        technology.vdd,
        technology.bitline_capacitance,
        Volts::ZERO,
        threshold
    ));
    // Bit line restored to VDD: no swap.
    assert!(!transient::charge_share::node_flips(
        technology.cell_node_capacitance,
        technology.vdd,
        technology.bitline_capacitance,
        technology.vdd,
        threshold
    ));
    // Bit line only partially discharged (still above threshold): no swap —
    // this is why only a handful of recently de-selected columns matter.
    assert!(!transient::charge_share::node_flips(
        technology.cell_node_capacitance,
        technology.vdd,
        technology.bitline_capacitance,
        Volts(1.0),
        threshold
    ));
}

#[test]
fn control_logic_overhead_is_ten_transistors_per_column_and_negligible_delay() {
    let element = PrechargeControlElement::new();
    assert_eq!(element.transistor_count(), 10);

    let controller = ModifiedPrechargeController::new(512);
    assert_eq!(controller.total_transistors(), 5_120);
    assert!(controller.area_overhead_fraction(512) < 0.005);

    let timing = TimingImpact::with_defaults(&TechnologyParams::default_013um());
    assert!(timing.is_negligible());
    assert!(timing.added_delay.to_picoseconds() < 50.0);
}

#[test]
fn control_element_truth_table_selects_exactly_two_columns_in_lp_mode() {
    let element = PrechargeControlElement::new();
    // Exhaustive check of the published behaviour over all input
    // combinations.
    for lp_test in [false, true] {
        for pr in [false, true] {
            for cs_prev in [false, true] {
                for cs_own in [false, true] {
                    let out = element.evaluate(ControlInputs {
                        lp_test,
                        pr,
                        cs_prev,
                        cs_own,
                    });
                    let expected = if cs_own {
                        pr
                    } else if lp_test {
                        !cs_prev
                    } else {
                        pr
                    };
                    assert_eq!(out, expected);
                }
            }
        }
    }
    let mut controller = ModifiedPrechargeController::new(16);
    controller.set_lp_test(true);
    for selected in 0..15u32 {
        assert_eq!(
            controller.enabled_columns(selected),
            vec![selected, selected + 1]
        );
    }
    assert_eq!(controller.enabled_columns(15), vec![15]);
}

#[test]
fn lp_mode_energy_per_cycle_tracks_the_restoration_physics() {
    // A written column restored by its pre-charge circuit costs C·Vdd² on
    // the driven line; the same quantity appears both in the analytic
    // helper and in a direct RcCharge computation.
    let technology = TechnologyParams::default_013um();
    let direct = technology.full_bitline_restore_energy();
    let rc = RcCharge::new(
        technology.precharge_resistance,
        technology.bitline_capacitance,
        Volts::ZERO,
        technology.vdd,
    );
    assert!((direct.value() - rc.supply_energy().value()).abs() / direct.value() < 1e-9);
}
