//! Experiment E6: fault coverage is independent of the address order.
//!
//! The paper's prerequisite (Section 3) is March degree of freedom #1: the
//! test may use any address sequence without losing coverage. This
//! integration test simulates the static fault list under the paper's
//! word-line-after-word-line order, the column-major order, the plain
//! linear order and a pseudo-random permutation, for every algorithm of
//! Table 1, and checks that exactly the same faults are detected.

use sram_test_power::march_test::address_order::{
    AddressOrder, ColumnMajor, LinearOrder, PseudoRandomOrder, WordLineAfterWordLine,
};
use sram_test_power::march_test::coverage::evaluate_coverage;
use sram_test_power::march_test::dof::verify_order_independence;
use sram_test_power::march_test::faults::{standard_fault_list, static_fault_list};
use sram_test_power::march_test::library;
use sram_test_power::sram_model::config::ArrayOrganization;

#[test]
fn guaranteed_fault_coverage_is_preserved_across_address_orders() {
    // DOF #1 in its precise form: every fault class an algorithm covers
    // completely under one order stays completely covered under any other
    // order (accidental detections of non-target faults may differ).
    let organization = ArrayOrganization::new(4, 8).unwrap();
    let faults = static_fault_list(&organization);
    let random = PseudoRandomOrder::new(2006);
    let orders: Vec<&dyn AddressOrder> =
        vec![&WordLineAfterWordLine, &ColumnMajor, &LinearOrder, &random];
    for test in library::table1_algorithms() {
        let report = verify_order_independence(&test, &orders, &organization, &faults);
        assert!(
            report.guaranteed_coverage_preserved(),
            "{}: guaranteed coverage changed with the address order",
            test.name()
        );
        assert!(
            report.fully_covered_kinds().contains(&"SAF".to_string()),
            "{}: stuck-at faults must be in the guaranteed set",
            test.name()
        );
    }
}

#[test]
fn strong_algorithms_detect_exactly_the_same_fault_set_under_every_order() {
    // For the stronger algorithms the detected set itself is identical
    // across regular address orders.
    let organization = ArrayOrganization::new(4, 8).unwrap();
    let faults = static_fault_list(&organization);
    let orders: Vec<&dyn AddressOrder> = vec![&WordLineAfterWordLine, &ColumnMajor, &LinearOrder];
    for test in [
        library::march_ss(),
        library::march_c_minus(),
        library::march_g(),
    ] {
        let report = verify_order_independence(&test, &orders, &organization, &faults);
        assert!(
            report.coverage_is_order_independent(),
            "{}: detected set changed with the address order",
            test.name()
        );
    }
}

#[test]
fn coverage_hierarchy_between_algorithms_is_preserved_under_the_paper_order() {
    // Stronger algorithms must not lose their advantage when the address
    // order is fixed to word-line-after-word-line.
    let organization = ArrayOrganization::new(4, 8).unwrap();
    let faults = standard_fault_list(&organization);
    let order = WordLineAfterWordLine;

    let mats = evaluate_coverage(&library::mats_plus(), &order, &organization, &faults);
    let c_minus = evaluate_coverage(&library::march_c_minus(), &order, &organization, &faults);
    let ss = evaluate_coverage(&library::march_ss(), &order, &organization, &faults);

    assert!(c_minus.coverage() >= mats.coverage());
    assert!(ss.coverage() >= c_minus.coverage());
    assert!(ss.coverage() > 0.85, "March SS coverage {}", ss.coverage());
}

#[test]
fn table1_algorithms_detect_their_guaranteed_fault_classes() {
    // Every Table 1 algorithm guarantees full stuck-at coverage; all of
    // them except MATS+ also guarantee full transition-fault coverage
    // (MATS+ misses the falling transition because nothing reads the cell
    // after its final w0 — the textbook reason MATS++ adds a trailing r0).
    let organization = ArrayOrganization::new(4, 8).unwrap();
    let faults = standard_fault_list(&organization);
    for test in library::table1_algorithms() {
        let report = evaluate_coverage(&test, &WordLineAfterWordLine, &organization, &faults);
        let by_kind = report.by_kind();
        let (saf_detected, saf_total) = by_kind["SAF"];
        assert_eq!(
            saf_detected,
            saf_total,
            "{} must detect every SAF instance",
            test.name()
        );
        if test.name() != "MATS+" {
            let (tf_detected, tf_total) = by_kind["TF"];
            assert_eq!(
                tf_detected,
                tf_total,
                "{} must detect every TF instance",
                test.name()
            );
        }
    }
}

#[test]
fn descending_sequences_are_exact_reverses_for_every_order() {
    let organization = ArrayOrganization::new(8, 8).unwrap();
    let random = PseudoRandomOrder::new(7);
    let orders: Vec<&dyn AddressOrder> =
        vec![&WordLineAfterWordLine, &ColumnMajor, &LinearOrder, &random];
    for order in orders {
        let up = order.ascending(&organization);
        let mut down = order.descending(&organization);
        down.reverse();
        assert_eq!(
            up,
            down,
            "{}: ⇓ must be the exact reverse of ⇑",
            order.name()
        );
        assert_eq!(up.len(), organization.capacity() as usize);
    }
}
