//! Golden tests for the rebuilt power engine.
//!
//! The row-replay kernel and the parallel Table 1 harness are only
//! admissible because they reproduce the full cycle-by-cycle simulation
//! *exactly* — not approximately. These tests pin that contract with
//! `assert_eq!` on the complete `SessionOutcome` (every energy, peak and
//! stress figure compared at full `f64` precision) and on the complete
//! Table 1 row set. The same gate runs on the paper's full 512×512
//! configuration inside `power_engine_bench` before anything is timed
//! (a debug-build test at that size would dominate `cargo test`).

use sram_test_power::lp_precharge::prelude::*;
use sram_test_power::lp_precharge::report::{reproduce_table1, reproduce_table1_serial};
use sram_test_power::lp_precharge::scheduler::LpOptions;
use sram_test_power::march_test::library;
use sram_test_power::sram_model::config::{ArrayOrganization, SramConfig};

fn config(rows: u32, cols: u32) -> SramConfig {
    SramConfig::builder()
        .organization(ArrayOrganization::new(rows, cols).unwrap())
        .build()
        .unwrap()
}

#[test]
fn replay_kernel_reproduces_the_simulation_exactly() {
    // Assorted shapes: square, wide, tall, single-row, single-column.
    for (rows, cols) in [(4, 8), (8, 32), (1, 16), (16, 1), (3, 5)] {
        let session = TestSession::new(config(rows, cols));
        for test in library::table1_algorithms() {
            for mode in [OperatingMode::Functional, OperatingMode::LowPowerTest] {
                for background in [false, true] {
                    let replayed = session
                        .run_with_background(&test, mode, background)
                        .unwrap();
                    let simulated = session
                        .run_fully_simulated(&test, mode, background)
                        .unwrap();
                    assert_eq!(
                        replayed,
                        simulated,
                        "{rows}x{cols} {} {mode:?} background={background}",
                        test.name()
                    );
                }
            }
        }
    }
}

#[test]
fn replay_kernel_is_exact_at_full_column_width() {
    // The paper's full 512-column row (few rows keep the debug-build
    // reference simulation fast): the restore cycle sweeps the same
    // column population as the 512×512 configuration.
    let session = TestSession::new(config(4, 512));
    for test in [library::mats_plus(), library::march_c_minus()] {
        for mode in [OperatingMode::Functional, OperatingMode::LowPowerTest] {
            let replayed = session.run(&test, mode).unwrap();
            let simulated = session.run_fully_simulated(&test, mode, false).unwrap();
            assert_eq!(replayed, simulated, "4x512 {} {mode:?}", test.name());
        }
    }
}

#[test]
fn replay_kernel_is_exact_with_wider_lookahead() {
    let session = TestSession::new(config(4, 16)).with_options(LpOptions {
        lookahead_columns: 3,
        ..LpOptions::default()
    });
    for test in [library::mats_plus(), library::march_sr()] {
        let replayed = session.run(&test, OperatingMode::LowPowerTest).unwrap();
        let simulated = session
            .run_fully_simulated(&test, OperatingMode::LowPowerTest, false)
            .unwrap();
        assert_eq!(replayed, simulated, "{} lookahead=3", test.name());
    }
}

#[test]
fn hazard_ablation_still_runs_the_full_simulation() {
    // Disabling the restore cycle leaks analog state across rows, so the
    // dispatcher must keep those runs on the cycle-by-cycle path — the
    // hazard demonstration depends on it.
    let session = TestSession::new(config(8, 32)).with_options(LpOptions {
        row_transition_restore: false,
        ..LpOptions::default()
    });
    let outcome = session
        .run_with_background(&library::march_c_minus(), OperatingMode::LowPowerTest, true)
        .unwrap();
    assert!(
        outcome.faulty_swaps > 0,
        "the Figure 7 hazard must still reproduce"
    );
}

#[test]
fn parallel_table1_is_byte_identical_to_serial() {
    let config = config(16, 32);
    let parallel = reproduce_table1(&config).unwrap();
    let serial = reproduce_table1_serial(&config).unwrap();
    // PartialEq on Table1Row compares every f64 exactly — same rows, same
    // order, same bits.
    assert_eq!(parallel, serial);
    assert_eq!(parallel.len(), 5);
    let names: Vec<&str> = parallel.iter().map(|row| row.algorithm.as_str()).collect();
    assert_eq!(
        names,
        ["March C-", "March SS", "MATS+", "March SR", "March G"],
        "parallel fan-out must preserve row order"
    );
}

#[test]
fn replayed_sessions_still_save_power() {
    // End-to-end sanity on top of exactness: the replayed comparison must
    // keep the seed's acceptance property — a genuine, positive PRR (the
    // magnitude grows with the column count; 64 columns sit near 9 %).
    let session = TestSession::new(config(32, 64));
    let record = session.compare(&library::march_c_minus()).unwrap();
    assert!(record.prr > 0.0 && record.prr < 1.0, "prr = {}", record.prr);
    assert!(
        record.functional.average_power > record.low_power.average_power,
        "the low-power mode must draw less power"
    );
}
