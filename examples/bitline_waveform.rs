//! Figure 6 / Figure 7 scenario: floating bit-line discharge and the faulty
//! swap at a row transition.
//!
//! The example reproduces the paper's Spice experiment of Figure 5/6 with
//! the `transient` solver (a cell discharging a floating bit line over ≈ 9
//! clock cycles), then runs the cycle-accurate simulator across a row
//! transition twice — once without the restore cycle (the cell of the next
//! row is corrupted) and once with it (the data survives).
//!
//! ```text
//! cargo run --release --example bitline_waveform
//! ```

use sram_test_power::lp_precharge::prelude::*;
use sram_test_power::march_test::library;
use sram_test_power::sram_model::config::{ArrayOrganization, SramConfig};
use sram_test_power::sram_model::error::SramError;
use sram_test_power::transient::prelude::*;

fn main() -> Result<(), SramError> {
    let technology = sram_test_power::sram_model::config::TechnologyParams::default_013um();

    // --- Figure 6: floating bit line discharged by a selected cell -------
    println!("== floating bit-line discharge (Figure 6) ==");
    let clock = technology.clock_period;
    let per_cycle = technology.floating_discharge_per_cycle();
    let mut waveform = Waveform::new("BL (floating, cell stores 0)");
    let mut v = technology.vdd;
    for cycle in 0..12u32 {
        waveform.push(Seconds(clock.value() * f64::from(cycle)), v);
        v = (v - per_cycle).max(Volts::ZERO);
    }
    println!("{}", waveform.to_ascii(48, 12));
    let crossing = waveform
        .first_crossing(technology.logic_threshold, true)
        .map(|t| t.value() / clock.value())
        .unwrap_or(f64::NAN);
    println!(
        "BL crosses the logic threshold after ~{crossing:.1} cycles; full discharge in ~{:.1} cycles (paper: \"nearly nine clock cycles\")",
        technology.floating_discharge_cycles()
    );

    // The same scenario with the netlist solver: a 256 fF bit line, the
    // cell's pull-down path, and the word line as a switch.
    let mut netlist = Netlist::new();
    let gnd = netlist.add_source("GND", Volts::ZERO);
    let bl = netlist.add_node("BL", technology.bitline_capacitance, technology.vdd);
    let wl = netlist.add_switch("WL", true);
    // Effective pull-down resistance chosen to match the cell read current
    // at VDD.
    let r_cell = technology.vdd.value() / technology.cell_read_current.value();
    netlist.add_gated_resistor(bl, gnd, Ohms(r_cell), wl);
    let mut solver = TransientSolver::new(netlist);
    let result = solver.run(SolverConfig::for_duration(Seconds(clock.value() * 12.0)));
    println!(
        "netlist solver: BL after 12 cycles = {:.2} V (RC model of the same path)",
        result.final_voltage(bl).value()
    );
    println!();

    // --- Figure 7: the faulty swap and its fix ---------------------------
    println!("== faulty swap at the row transition (Figure 7) ==");
    let config = SramConfig::builder()
        .organization(ArrayOrganization::new(16, 32)?)
        .build()?;

    // Without the row-transition restore: corrupted cells appear.
    let broken = TestSession::new(config)
        .with_options(LpOptions {
            row_transition_restore: false,
            ..LpOptions::default()
        })
        .run_with_background(&library::march_c_minus(), OperatingMode::LowPowerTest, true)?;
    println!(
        "without the restore cycle: {} faulty swaps, {} read mismatches",
        broken.faulty_swaps, broken.read_mismatches
    );

    // With the paper's fix: none.
    let fixed = TestSession::new(config).run_with_background(
        &library::march_c_minus(),
        OperatingMode::LowPowerTest,
        true,
    )?;
    println!(
        "with the restore cycle:    {} faulty swaps, {} read mismatches",
        fixed.faulty_swaps, fixed.read_mismatches
    );
    println!(
        "stressed cells per cycle in low-power mode (alpha): {:.1}",
        fixed.stress.stressed_cells_per_cycle()
    );
    Ok(())
}
