//! Quickstart: run one March test in both modes and print the power saving.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sram_test_power::lp_precharge::prelude::*;
use sram_test_power::march_test::library;
use sram_test_power::sram_model::config::{ArrayOrganization, SramConfig};
use sram_test_power::sram_model::error::SramError;

fn main() -> Result<(), SramError> {
    // A 64×64 array keeps the example instant even in debug builds; switch
    // to `SramConfig::paper_default()` for the paper's 512×512 experiment.
    let config = SramConfig::builder()
        .organization(ArrayOrganization::new(64, 64)?)
        .build()?;

    let session = TestSession::new(config);
    let test = library::march_c_minus();

    println!("algorithm: {test}");
    println!(
        "array: {} x {} cells, {:.1} ns cycle, {:.1} V",
        config.organization().rows(),
        config.organization().cols(),
        config.technology().clock_period.to_nanoseconds(),
        config.technology().vdd.value()
    );

    let functional = session.run(&test, OperatingMode::Functional)?;
    let low_power = session.run(&test, OperatingMode::LowPowerTest)?;

    println!();
    println!("functional mode:");
    println!(
        "  {} cycles, {:.3} mW average, pre-charge share {:.1} %",
        functional.report.cycles,
        functional.report.average_power.to_milliwatts(),
        functional.report.precharge_fraction * 100.0
    );
    println!("low-power test mode:");
    println!(
        "  {} cycles, {:.3} mW average, pre-charge share {:.1} %",
        low_power.report.cycles,
        low_power.report.average_power.to_milliwatts(),
        low_power.report.precharge_fraction * 100.0
    );
    println!(
        "  faulty swaps: {}, read mismatches: {}",
        low_power.faulty_swaps, low_power.read_mismatches
    );

    let record = session.compare(&test)?;
    println!();
    println!("power reduction ratio (PRR): {:.1} %", record.prr_percent());
    println!();
    println!("low-power mode energy breakdown:");
    println!("{}", low_power.breakdown);
    Ok(())
}
