//! SoC-integration scenario: how much test power does the technique save
//! across the memory shapes found in an embedded design?
//!
//! The paper motivates the work with the ITRS projection that memories
//! dominate SoC area. An integrator deciding whether to adopt the modified
//! pre-charge control wants to know the saving for each macro shape in the
//! design and for word-oriented organisations. This example sweeps array
//! organisations and word widths with the analytic model (instant) and
//! cross-checks two points with the cycle-accurate simulator.
//!
//! ```text
//! cargo run --release --example embedded_memory_sweep
//! ```

use sram_test_power::lp_precharge::prelude::*;
use sram_test_power::march_test::library;
use sram_test_power::power_model::analytic::AnalyticPowerModel;
use sram_test_power::power_model::calibration::CalibratedParameters;
use sram_test_power::sram_model::config::{ArrayOrganization, SramConfig, TechnologyParams};
use sram_test_power::sram_model::error::SramError;

fn main() -> Result<(), SramError> {
    let technology = TechnologyParams::default_013um();
    let test = library::march_c_minus();

    println!("analytic PRR for March C- across array organisations (bit-oriented):");
    println!("{:>10} {:>10} {:>10}", "#rows", "#cols", "PRR");
    for &(rows, cols) in &[
        (64u32, 64u32),
        (128, 128),
        (256, 256),
        (512, 256),
        (512, 512),
        (256, 1024),
        (512, 1024),
    ] {
        let organization = ArrayOrganization::new(rows, cols)?;
        let model =
            AnalyticPowerModel::new(CalibratedParameters::derive(&technology, &organization));
        println!(
            "{:>10} {:>10} {:>9.1}%",
            rows,
            cols,
            model.power_reduction_ratio(&test, &organization) * 100.0
        );
    }

    println!();
    println!("word-oriented extension on the 512x512 array (future work of the paper):");
    println!("{:>12} {:>10}", "word width", "PRR");
    let organization = ArrayOrganization::paper_512x512();
    let parameters = CalibratedParameters::derive(&technology, &organization);
    for width in [1u32, 4, 8, 16, 32] {
        let extension = WordOrientedExtension::new(parameters, width);
        println!(
            "{:>12} {:>9.1}%",
            width,
            extension.power_reduction_ratio(&test, &organization) * 100.0
        );
    }

    println!();
    println!("cycle-accurate cross-check (smaller arrays, March C-):");
    for &(rows, cols) in &[(32u32, 64u32), (32, 128)] {
        let config = SramConfig::builder()
            .organization(ArrayOrganization::new(rows, cols)?)
            .build()?;
        let record = TestSession::new(config).compare(&test)?;
        let model = AnalyticPowerModel::new(CalibratedParameters::derive(
            &technology,
            config.organization(),
        ));
        println!(
            "  {rows:>4} x {cols:<4}  simulated {:>5.1}%   analytic {:>5.1}%",
            record.prr_percent(),
            model.power_reduction_ratio(&test, config.organization()) * 100.0
        );
    }

    println!();
    println!("hardware overhead of the modified control logic:");
    let controller = ModifiedPrechargeController::new(512);
    println!(
        "  {} transistors total ({} per column), {:.2}% of the cell-array transistors",
        controller.total_transistors(),
        PrechargeControlElement::new().transistor_count(),
        controller.area_overhead_fraction(512) * 100.0
    );
    let timing = TimingImpact::with_defaults(&technology);
    println!(
        "  added pre-charge path delay: {:.1} ps ({:.3}% of the clock period) — negligible: {}",
        timing.added_delay.to_picoseconds(),
        timing.cycle_fraction * 100.0,
        timing.is_negligible()
    );
    Ok(())
}
