//! Reproduce the paper's Table 1: PRR for the five March algorithms.
//!
//! By default the survey runs on a 128×128 array so it completes quickly
//! even in a debug build. Pass `--paper` to use the full 512×512
//! configuration of the paper (use `--release` for that one):
//!
//! ```text
//! cargo run --release --example table1_survey -- --paper
//! ```

use sram_test_power::lp_precharge::report::{paper_table1_reference, reproduce_table1};
use sram_test_power::power_model::report::format_table1;
use sram_test_power::sram_model::config::{ArrayOrganization, SramConfig};
use sram_test_power::sram_model::error::SramError;

fn main() -> Result<(), SramError> {
    let full = std::env::args().any(|a| a == "--paper");
    let config = if full {
        SramConfig::paper_default()
    } else {
        SramConfig::builder()
            .organization(ArrayOrganization::new(128, 128)?)
            .build()?
    };

    println!(
        "Table 1 reproduction on a {}x{} array ({})",
        config.organization().rows(),
        config.organization().cols(),
        if full {
            "the paper's configuration"
        } else {
            "reduced size; pass --paper for 512x512"
        }
    );
    println!();

    let rows = reproduce_table1(&config)?;
    println!("{}", format_table1(&rows));

    println!("paper reference values:");
    for (name, prr) in paper_table1_reference() {
        println!("  {name:<10} {prr:.1} %");
    }
    if !full {
        println!();
        println!(
            "note: the PRR grows with the number of columns (the savings scale with\n\
             #col - 2); the ~50 % figures of the paper correspond to the 512-column array."
        );
    }
    Ok(())
}
