//! Degree-of-freedom experiment: fixing the address order does not change
//! fault coverage.
//!
//! The paper's technique requires the "word line after word line" address
//! order. This example simulates the standard fault list under three
//! different address orders for every Table 1 algorithm and shows that the
//! set of detected faults is identical — the experimental form of March
//! degree of freedom #1.
//!
//! ```text
//! cargo run --release --example fault_coverage_dof
//! ```

use sram_test_power::march_test::address_order::{
    AddressOrder, ColumnMajor, WordLineAfterWordLine,
};
use sram_test_power::march_test::coverage::{evaluate_coverage_on_walk, SweepOptions};
use sram_test_power::march_test::dof::{verify_order_independence, DegreeOfFreedom};
use sram_test_power::march_test::executor::MarchWalk;
use sram_test_power::march_test::faults::static_fault_list;
use sram_test_power::march_test::library;
use sram_test_power::sram_model::config::ArrayOrganization;
use sram_test_power::sram_model::error::SramError;

fn main() -> Result<(), SramError> {
    println!("The six degrees of freedom of March tests:");
    for (i, dof) in DegreeOfFreedom::all().iter().enumerate() {
        println!("  {}. {}", i + 1, dof.statement());
    }
    println!();

    let organization = ArrayOrganization::new(8, 8)?;
    let faults = static_fault_list(&organization);
    println!(
        "fault list: {} static fault instances on an {}x{} array",
        faults.len(),
        organization.rows(),
        organization.cols()
    );
    println!();

    let orders: Vec<&dyn AddressOrder> = vec![&WordLineAfterWordLine, &ColumnMajor];
    println!(
        "{:<10} {:>22} {:>14} {:>18}",
        "algorithm", "coverage (row-major)", "coverage (col)", "order independent"
    );
    // Each sweep shares one precomputed walk across the whole fault list
    // and runs early-exit simulations in parallel (SweepOptions::fast) —
    // the throughput kernel the `fault_sim_bench` binary measures.
    for test in library::table1_algorithms() {
        let row_walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
        let col_walk = MarchWalk::new(&test, &ColumnMajor, &organization);
        let row_major = evaluate_coverage_on_walk(&row_walk, &faults, SweepOptions::fast());
        let col_major = evaluate_coverage_on_walk(&col_walk, &faults, SweepOptions::fast());
        let report = verify_order_independence(&test, &orders, &organization, &faults);
        println!(
            "{:<10} {:>21.1}% {:>13.1}% {:>18}",
            test.name(),
            row_major.coverage() * 100.0,
            col_major.coverage() * 100.0,
            if report.coverage_is_order_independent() {
                "yes"
            } else {
                "NO"
            }
        );
    }

    println!();
    println!("per-kind detail for March SS under the paper's address order:");
    let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
    let report = evaluate_coverage_on_walk(&walk, &faults, SweepOptions::fast());
    for (kind, (detected, total)) in report.by_kind() {
        println!("  {kind:<5} {detected}/{total}");
    }
    Ok(())
}
