#!/usr/bin/env bash
# Offline markdown link check over the repo's documentation: the root
# README, docs/*.md and every crate README. Each relative link target
# must exist on disk, and each `#anchor` must match a heading of its
# target file (GitHub's heading-to-anchor slug rule). External links
# (http/https/mailto) are skipped — CI has no business depending on the
# network to validate in-repo docs.
#
# Usage: tools/check_doc_links.sh
# Exit:  0 when every link resolves, 1 otherwise (broken links listed).
set -u
cd "$(dirname "$0")/.."

errors=$(mktemp)
trap 'rm -f "$errors"' EXIT

# GitHub's slug rule: lowercase, strip everything but alphanumerics,
# spaces, hyphens and underscores, then turn spaces into hyphens.
slug() {
    printf '%s\n' "$1" |
        tr '[:upper:]' '[:lower:]' |
        sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

# Every heading of a markdown file, as anchor slugs, one per line.
anchors_of() {
    grep -E '^#{1,6} ' "$1" | sed -E 's/^#+ +//' | while IFS= read -r heading; do
        slug "$heading"
    done
}

check_file() {
    file=$1
    dir=$(dirname "$file")
    # Inline links only: `[text](target)`. Reference-style `[name]`
    # brackets (rustdoc idiom in module-doc excerpts) have no target to
    # resolve and are left alone.
    grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//' |
        while IFS= read -r target; do
            case "$target" in
            http://* | https://* | mailto:*) continue ;;
            esac
            path=${target%%#*}
            anchor=""
            case "$target" in
            *'#'*) anchor=${target#*#} ;;
            esac
            if [ -n "$path" ]; then
                resolved="$dir/$path"
                if [ ! -e "$resolved" ]; then
                    echo "$file: broken link ($target): no such path $resolved" >>"$errors"
                    continue
                fi
                link_target=$resolved
            else
                link_target=$file
            fi
            if [ -n "$anchor" ]; then
                case "$link_target" in
                *.md)
                    if ! anchors_of "$link_target" | grep -qxF "$anchor"; then
                        echo "$file: broken anchor ($target): #$anchor is not a heading of $link_target" >>"$errors"
                    fi
                    ;;
                esac
            fi
        done
}

checked=0
for file in README.md docs/*.md crates/*/README.md; do
    [ -f "$file" ] || continue
    check_file "$file"
    checked=$((checked + 1))
done

if [ -s "$errors" ]; then
    echo "doc link check FAILED:" >&2
    cat "$errors" >&2
    exit 1
fi
echo "doc link check passed ($checked files)"
