//! # sram-test-power
//!
//! A full reproduction of *"Minimizing Test Power in SRAM through Reduction
//! of Pre-charge Activity"* (Dilillo, Rosinger, Al-Hashimi, Girard —
//! DATE 2006) as a Rust workspace.
//!
//! The facade crate re-exports the five member crates so applications can
//! depend on a single package:
//!
//! * [`transient`] — the first-order analog substrate (RC decay, charge
//!   sharing, a small netlist solver) used in place of Spice;
//! * [`sram_model`] — the cycle-accurate 512×512 SRAM array simulator
//!   (cells, bit lines, pre-charge circuits, decoders, sense amplifiers);
//! * [`march_test`] — the March test engine (algorithm library, address
//!   orders, fault models, fault simulation and coverage);
//! * [`power_model`] — power metering, per-source breakdown and the
//!   paper's analytic `P_F`/`P_LPT`/`PRR` model;
//! * [`lp_precharge`] — the paper's contribution: the modified pre-charge
//!   control logic, the word-line-after-word-line low-power schedule, the
//!   test-session engine and the verification harness.
//!
//! # Quickstart
//!
//! ```
//! use sram_test_power::lp_precharge::prelude::*;
//! use sram_test_power::march_test::library;
//! use sram_test_power::sram_model::config::SramConfig;
//!
//! // Use a small array so the doctest is fast; the paper's experiments use
//! // the 512×512 default (`SramConfig::paper_default()`).
//! let session = TestSession::new(SramConfig::small_for_tests(16, 32)?);
//! let record = session.compare(&library::march_c_minus())?;
//! println!(
//!     "March C-: functional {:.3} mW, low-power {:.3} mW, PRR {:.1} %",
//!     record.functional.average_power.to_milliwatts(),
//!     record.low_power.average_power.to_milliwatts(),
//!     record.prr_percent()
//! );
//! assert!(record.prr > 0.0);
//! # Ok::<(), sram_test_power::sram_model::error::SramError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lp_precharge;
pub use march_test;
pub use power_model;
pub use sram_model;
pub use transient;

/// The five March algorithms of the paper's Table 1, re-exported for
/// convenience.
pub fn table1_algorithms() -> Vec<march_test::algorithm::MarchTest> {
    march_test::library::table1_algorithms()
}

/// The paper's experimental memory configuration: a 512×512 bit-oriented
/// array at the calibrated 0.13 µm / 1.6 V / 3 ns operating point.
pub fn paper_configuration() -> sram_model::config::SramConfig {
    sram_model::config::SramConfig::paper_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_are_consistent() {
        assert_eq!(table1_algorithms().len(), 5);
        let config = paper_configuration();
        assert_eq!(config.organization().rows(), 512);
        assert_eq!(config.organization().cols(), 512);
        assert_eq!(config.technology().vdd, transient::units::Volts(1.6));
    }
}
