//! Deterministic fork-join parallelism for fault sweeps.
//!
//! The build environment cannot fetch `rayon`, so the parallel coverage
//! and degree-of-freedom sweeps use this small scoped-thread fork-join
//! helper instead. It deliberately mirrors the property that makes
//! `rayon`'s ordered collects safe to use in experiments: **the output
//! order is the input order**, regardless of how the work was scheduled,
//! so parallel sweeps produce byte-identical reports to serial ones.
//!
//! Work is split into one contiguous chunk per worker (fault simulations
//! in a sweep have similar cost, so static partitioning is within a few
//! percent of work stealing here and keeps the code free of `unsafe`).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Number of worker threads a sweep may use: the machine's available
/// parallelism, or `1` when it cannot be queried.
pub fn max_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps contiguous chunks of `items` across worker threads and
/// concatenates the per-chunk outputs **in input order**.
///
/// `map_chunk` is called once per chunk and must return one output per
/// input item, in order; the chunking is how workers amortise per-thread
/// setup (e.g. one scratch memory per worker instead of one per fault).
/// With one item, one worker, or an empty input the call degenerates to
/// `map_chunk(items)` on the current thread.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated) or if `map_chunk`
/// returns a different number of outputs than inputs for some chunk.
pub fn par_chunk_map<T, R, F>(items: &[T], threads: usize, map_chunk: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let results = par_chunk_flat_map(items, threads, map_chunk);
    assert_eq!(results.len(), items.len(), "map_chunk must be 1:1");
    results
}

/// Like [`par_chunk_map`], but each chunk may produce any number of
/// outputs: the per-chunk output vectors are concatenated **in input
/// order** without the 1:1 requirement.
///
/// This is the fan-out primitive of the lane-batched fault sweeps, where
/// the work items are fault *cohorts* rather than single faults: one
/// cohort of up to sixty-four faults yields one outcome per member, so a
/// chunk's output length is the sum of its cohorts' sizes.
pub fn par_chunk_flat_map<T, R, F>(items: &[T], threads: usize, map_chunk: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        return map_chunk(items);
    }
    let chunk_size = items.len().div_ceil(workers);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(|| map_chunk(chunk)))
            .collect();
        let mut results = Vec::with_capacity(items.len());
        for handle in handles {
            let part = handle.join().expect("sweep worker panicked");
            results.extend(part);
        }
        results
    })
}

/// Chunk oversubscription factor of [`par_chunk_flat_map_balanced`]: the
/// item list is split into up to this many chunks per worker, so workers
/// that draw cheap chunks claim more instead of idling.
const CHUNKS_PER_WORKER: usize = 8;

/// Like [`par_chunk_flat_map`], but with dynamic load balancing: the
/// items are split into more chunks than workers and a shared cursor
/// hands chunks to whichever worker frees up first. Output order is
/// still **input order** — per-chunk outputs are written into indexed
/// write-once slots ([`OnceLock`], no mutex anywhere in the fan-out) and
/// concatenated in chunk order at the end.
///
/// This is the fan-out primitive for generated fault populations, whose
/// cohorts have very uneven costs (64-lane cohorts that early-exit at
/// different depths, interleaved with serial singletons): a static
/// one-chunk-per-worker split can leave most workers idle behind one
/// expensive chunk, which never happens to the near-uniform standard
/// list.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated by the scope).
pub fn par_chunk_flat_map_balanced<T, R, F>(items: &[T], threads: usize, map_chunk: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        return map_chunk(items);
    }
    let chunk_count = (workers * CHUNKS_PER_WORKER).min(items.len());
    let chunk_size = items.len().div_ceil(chunk_count);
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    let next = AtomicUsize::new(0);
    // Each chunk's output slot is written exactly once, by the worker
    // that claimed the chunk off the cursor — `OnceLock::set` is a plain
    // atomic publish, so the whole fan-out is lock-free.
    let slots: Vec<OnceLock<Vec<R>>> = chunks.iter().map(|_| OnceLock::new()).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let claim = next.fetch_add(1, Ordering::Relaxed);
                let Some(chunk) = chunks.get(claim) else {
                    break;
                };
                let out = map_chunk(chunk);
                slots[claim]
                    .set(out)
                    .unwrap_or_else(|_| unreachable!("chunk claimed twice"));
            });
        }
    });
    let mut results = Vec::with_capacity(items.len());
    for slot in slots {
        results.extend(slot.into_inner().expect("claimed chunks publish results"));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u32> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let out = par_chunk_map(&items, threads, |chunk| {
                chunk.iter().map(|&x| u64::from(x) * 3).collect()
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = par_chunk_map(&[] as &[u8], 8, |chunk| chunk.to_vec());
        assert!(out.is_empty());
    }

    #[test]
    fn max_threads_is_at_least_one() {
        assert!(max_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "1:1")]
    fn lossy_map_chunk_is_rejected() {
        let _ = par_chunk_map(&[1, 2, 3], 1, |_| Vec::<u32>::new());
    }

    #[test]
    fn balanced_flat_map_preserves_input_order_under_any_thread_count() {
        // Items of wildly different cost (cohort-like expansion) must
        // still concatenate in input order regardless of which worker
        // claimed which chunk.
        let items: Vec<u32> = (0..517).map(|i| i % 97).collect();
        let expected: Vec<u32> = items
            .iter()
            .flat_map(|&x| std::iter::repeat_n(x, (x % 3) as usize))
            .collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let out = par_chunk_flat_map_balanced(&items, threads, |chunk| {
                chunk
                    .iter()
                    .flat_map(|&x| std::iter::repeat_n(x, (x % 3) as usize))
                    .collect()
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn balanced_flat_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = par_chunk_flat_map_balanced(&[] as &[u8], 8, |chunk| chunk.to_vec());
        assert!(empty.is_empty());
        let one = par_chunk_flat_map_balanced(&[7u8], 8, |chunk| chunk.to_vec());
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn flat_map_concatenates_variable_length_outputs_in_input_order() {
        // Each item expands to `item` copies of itself, like a cohort
        // expanding to one outcome per member fault.
        let items: Vec<u32> = vec![3, 0, 1, 4, 2];
        let expected: Vec<u32> = items
            .iter()
            .flat_map(|&x| std::iter::repeat_n(x, x as usize))
            .collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_chunk_flat_map(&items, threads, |chunk| {
                chunk
                    .iter()
                    .flat_map(|&x| std::iter::repeat_n(x, x as usize))
                    .collect()
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
    }
}
