//! Deterministic fork-join parallelism for fault sweeps.
//!
//! The build environment cannot fetch `rayon`, so the parallel coverage
//! and degree-of-freedom sweeps use the workspace's [`sched`] worker pool
//! through these order-preserving wrappers. They keep the property that
//! makes `rayon`'s ordered collects safe to use in experiments: **the
//! output order is the input order**, regardless of how the work was
//! scheduled, so parallel sweeps produce byte-identical reports to serial
//! ones.
//!
//! Every fan-out below reaches the pool as [`sched::WorkKind::FaultSweep`]
//! work items; each pool worker owns a [`WorkerScratch`] for its whole
//! lifetime, which the `_scratch` variants expose to the chunk closure so
//! the lane-batched hot path can reuse its dispatch buffers across chunks
//! instead of reallocating per cohort.

use std::num::NonZeroUsize;
use std::thread;

use sched::WorkKind;
pub use sched::WorkerScratch;

/// Number of worker threads a sweep may use: the machine's available
/// parallelism, or `1` when it cannot be queried.
pub fn max_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps contiguous chunks of `items` across the worker pool and
/// concatenates the per-chunk outputs **in input order**.
///
/// `map_chunk` is called once per chunk and must return one output per
/// input item, in order; the chunking is how workers amortise per-thread
/// setup (e.g. one scratch memory per worker instead of one per fault).
/// With one item, one worker, or an empty input the call degenerates to
/// `map_chunk(items)` on the current thread.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated) or if `map_chunk`
/// returns a different number of outputs than inputs for some chunk.
pub fn par_chunk_map<T, R, F>(items: &[T], threads: usize, map_chunk: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let results = par_chunk_flat_map(items, threads, map_chunk);
    assert_eq!(results.len(), items.len(), "map_chunk must be 1:1");
    results
}

/// Like [`par_chunk_map`], but each chunk may produce any number of
/// outputs: the per-chunk output vectors are concatenated **in input
/// order** without the 1:1 requirement.
///
/// The items are split into one contiguous chunk per worker — fault
/// simulations in the standard list have near-uniform cost, so static
/// partitioning is within a few percent of stealing here.
pub fn par_chunk_flat_map<T, R, F>(items: &[T], threads: usize, map_chunk: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    sched::map_chunks(WorkKind::FaultSweep, items, workers, workers, |chunk, _| {
        map_chunk(chunk)
    })
}

/// Chunk oversubscription factor of [`par_chunk_flat_map_balanced`]: the
/// item list is split into up to this many chunks per worker, so workers
/// that draw cheap chunks claim (steal) more instead of idling.
const CHUNKS_PER_WORKER: usize = 8;

/// Like [`par_chunk_flat_map`], but with dynamic load balancing: the
/// items are split into more chunks than workers and the pool's shared
/// cursor hands chunks to whichever worker frees up first. Output order
/// is still **input order** — per-chunk outputs are written into indexed
/// write-once slots and concatenated in chunk order at the end.
///
/// This is the fan-out primitive for generated fault populations, whose
/// cohorts have very uneven costs (64-lane cohorts that early-exit at
/// different depths, interleaved with serial singletons): a static
/// one-chunk-per-worker split can leave most workers idle behind one
/// expensive chunk, which never happens to the near-uniform standard
/// list.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated by the pool).
pub fn par_chunk_flat_map_balanced<T, R, F>(items: &[T], threads: usize, map_chunk: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&[T]) -> Vec<R> + Sync,
{
    par_chunk_flat_map_balanced_scratch(items, threads, |chunk, _| map_chunk(chunk))
}

/// [`par_chunk_flat_map_balanced`] with access to the claiming worker's
/// [`WorkerScratch`]: the lane-batched sweep keeps its dispatch buffers
/// (lane memory backing stores, merged schedules, ownership masks) in the
/// scratch so consecutive chunks on one worker reuse the allocations.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated by the pool).
pub fn par_chunk_flat_map_balanced_scratch<T, R, F>(
    items: &[T],
    threads: usize,
    map_chunk: F,
) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&[T], &mut WorkerScratch) -> Vec<R> + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    let chunk_count = (workers * CHUNKS_PER_WORKER).min(items.len().max(1));
    sched::map_chunks(WorkKind::FaultSweep, items, workers, chunk_count, map_chunk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u32> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let out = par_chunk_map(&items, threads, |chunk| {
                chunk.iter().map(|&x| u64::from(x) * 3).collect()
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = par_chunk_map(&[] as &[u8], 8, |chunk| chunk.to_vec());
        assert!(out.is_empty());
    }

    #[test]
    fn max_threads_is_at_least_one() {
        assert!(max_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "1:1")]
    fn lossy_map_chunk_is_rejected() {
        let _ = par_chunk_map(&[1, 2, 3], 1, |_| Vec::<u32>::new());
    }

    #[test]
    fn balanced_flat_map_preserves_input_order_under_any_thread_count() {
        // Items of wildly different cost (cohort-like expansion) must
        // still concatenate in input order regardless of which worker
        // claimed which chunk.
        let items: Vec<u32> = (0..517).map(|i| i % 97).collect();
        let expected: Vec<u32> = items
            .iter()
            .flat_map(|&x| std::iter::repeat_n(x, (x % 3) as usize))
            .collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let out = par_chunk_flat_map_balanced(&items, threads, |chunk| {
                chunk
                    .iter()
                    .flat_map(|&x| std::iter::repeat_n(x, (x % 3) as usize))
                    .collect()
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn balanced_flat_map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = par_chunk_flat_map_balanced(&[] as &[u8], 8, |chunk| chunk.to_vec());
        assert!(empty.is_empty());
        let one = par_chunk_flat_map_balanced(&[7u8], 8, |chunk| chunk.to_vec());
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn flat_map_concatenates_variable_length_outputs_in_input_order() {
        // Each item expands to `item` copies of itself, like a cohort
        // expanding to one outcome per member fault.
        let items: Vec<u32> = vec![3, 0, 1, 4, 2];
        let expected: Vec<u32> = items
            .iter()
            .flat_map(|&x| std::iter::repeat_n(x, x as usize))
            .collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_chunk_flat_map(&items, threads, |chunk| {
                chunk
                    .iter()
                    .flat_map(|&x| std::iter::repeat_n(x, x as usize))
                    .collect()
            });
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_variant_reuses_worker_state_across_chunks() {
        // With one worker every chunk lands on the same scratch, so an
        // allocation made by the first chunk is visible to all of them.
        let items: Vec<u32> = (0..64).collect();
        let out = par_chunk_flat_map_balanced_scratch(&items, 1, |chunk, scratch| {
            let buffer: &mut Vec<u32> = scratch.get_or_insert_with(Vec::new);
            buffer.extend_from_slice(chunk);
            vec![buffer.len() as u32]
        });
        // One worker degenerates to a single whole-slice chunk.
        assert_eq!(out, vec![64]);
    }
}
