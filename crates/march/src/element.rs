//! March elements.
//!
//! A March element is an address direction (ascending ⇑, descending ⇓ or
//! don't-care ⇕) together with a short sequence of [`MarchOp`]s applied to
//! each cell before moving to the next address.

use crate::operation::MarchOp;
use std::fmt;

/// The address direction of a March element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressDirection {
    /// ⇑ — the chosen ascending order.
    Ascending,
    /// ⇓ — the exact reverse of the ascending order.
    Descending,
    /// ⇕ — either order is acceptable.
    Either,
}

impl fmt::Display for AddressDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddressDirection::Ascending => "⇑",
            AddressDirection::Descending => "⇓",
            AddressDirection::Either => "⇕",
        };
        f.write_str(s)
    }
}

/// One March element: a direction plus the operations applied per cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MarchElement {
    direction: AddressDirection,
    ops: Vec<MarchOp>,
}

impl MarchElement {
    /// Creates an element.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty — an empty March element is meaningless and
    /// always indicates a construction bug.
    pub fn new(direction: AddressDirection, ops: Vec<MarchOp>) -> Self {
        assert!(
            !ops.is_empty(),
            "a march element must contain at least one operation"
        );
        Self { direction, ops }
    }

    /// Shorthand for an ascending element.
    pub fn ascending(ops: Vec<MarchOp>) -> Self {
        Self::new(AddressDirection::Ascending, ops)
    }

    /// Shorthand for a descending element.
    pub fn descending(ops: Vec<MarchOp>) -> Self {
        Self::new(AddressDirection::Descending, ops)
    }

    /// Shorthand for a direction-agnostic element.
    pub fn either(ops: Vec<MarchOp>) -> Self {
        Self::new(AddressDirection::Either, ops)
    }

    /// The address direction.
    pub fn direction(&self) -> AddressDirection {
        self.direction
    }

    /// The per-cell operation sequence.
    pub fn ops(&self) -> &[MarchOp] {
        &self.ops
    }

    /// Number of operations applied to each cell.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of reads applied to each cell.
    pub fn read_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_read()).count()
    }

    /// Number of writes applied to each cell.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_write()).count()
    }

    /// The element with every operation's data complemented (degree of
    /// freedom #5: data backgrounds).
    pub fn complemented(&self) -> Self {
        Self {
            direction: self.direction,
            ops: self.ops.iter().map(|op| op.complemented()).collect(),
        }
    }
}

impl fmt::Display for MarchElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.direction)?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_accessors() {
        let e = MarchElement::ascending(vec![MarchOp::R0, MarchOp::W1, MarchOp::R1]);
        assert_eq!(e.direction(), AddressDirection::Ascending);
        assert_eq!(e.op_count(), 3);
        assert_eq!(e.read_count(), 2);
        assert_eq!(e.write_count(), 1);
        assert_eq!(e.ops()[1], MarchOp::W1);
    }

    #[test]
    fn display_uses_standard_notation() {
        let e = MarchElement::descending(vec![MarchOp::R1, MarchOp::W0]);
        assert_eq!(format!("{e}"), "⇓(r1,w0)");
        let e = MarchElement::either(vec![MarchOp::W0]);
        assert_eq!(format!("{e}"), "⇕(w0)");
        assert_eq!(format!("{}", AddressDirection::Ascending), "⇑");
    }

    #[test]
    fn complement_swaps_data() {
        let e = MarchElement::ascending(vec![MarchOp::R0, MarchOp::W1]);
        let c = e.complemented();
        assert_eq!(c.ops(), &[MarchOp::R1, MarchOp::W0]);
        assert_eq!(c.direction(), AddressDirection::Ascending);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn empty_element_is_rejected() {
        let _ = MarchElement::ascending(vec![]);
    }
}
