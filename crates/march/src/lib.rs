//! March memory-test engine.
//!
//! March tests are the de-facto standard algorithms for testing random
//! access memories: a *March test* is a sequence of *March elements*, each
//! of which applies a short sequence of read/write operations to every cell
//! of the memory in a prescribed address order. This crate provides:
//!
//! * the test description types ([`operation::MarchOp`],
//!   [`element::MarchElement`], [`algorithm::MarchTest`]) and a
//!   [`library`] of the published algorithms used by the paper's Table 1
//!   (MATS+, March C-, March SS, March SR, March G) plus several other
//!   classics,
//! * [`address_order`] implementations of the first March degree of
//!   freedom: the *word-line-after-word-line* (row-major) order exploited
//!   by the paper, the column-major order, plain linear order and a seeded
//!   pseudo-random permutation,
//! * a behavioural [`memory`] model and a library of functional
//!   [`faults`] (stuck-at, transition, coupling, read-destructive,
//!   stuck-open, write-disturb, address-decoder, …),
//! * the [`executor`] that applies a March test to any memory model, and
//!   the [`fault_sim`]/[`coverage`] layers that measure which faults each
//!   algorithm detects — used to demonstrate that fixing the address order
//!   (the paper's prerequisite) does not change fault coverage
//!   ([`dof`]).
//!
//! # Example
//!
//! ```
//! use march_test::prelude::*;
//! use sram_model::config::ArrayOrganization;
//!
//! let organization = ArrayOrganization::new(8, 8)?;
//! let test = library::march_c_minus();
//! assert_eq!(test.operation_count(), 10);
//!
//! // Run it on a fault-free memory: no failures.
//! let order = WordLineAfterWordLine;
//! let mut memory = GoodMemory::new(organization.capacity());
//! let result = run_march(&test, &order, &organization, &mut memory);
//! assert!(result.passed());
//! # Ok::<(), sram_model::error::SramError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address_order;
pub mod algorithm;
pub mod background;
pub mod coverage;
pub mod dof;
pub mod element;
pub mod executor;
pub mod fault_sim;
pub mod faults;
pub mod library;
pub mod memory;
pub mod operation;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::address_order::{
        AddressOrder, ColumnMajor, PseudoRandomOrder, WordLineAfterWordLine,
    };
    pub use crate::algorithm::MarchTest;
    pub use crate::background::DataBackground;
    pub use crate::coverage::{evaluate_coverage, CoverageReport};
    pub use crate::element::{AddressDirection, MarchElement};
    pub use crate::executor::{run_march, MarchResult, MarchStep};
    pub use crate::fault_sim::{simulate_fault, FaultSimOutcome};
    pub use crate::faults::{standard_fault_list, Fault};
    pub use crate::library;
    pub use crate::memory::{GoodMemory, MemoryModel};
    pub use crate::operation::MarchOp;
}
