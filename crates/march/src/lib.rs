//! March memory-test engine.
//!
//! March tests are the de-facto standard algorithms for testing random
//! access memories: a *March test* is a sequence of *March elements*, each
//! of which applies a short sequence of read/write operations to every cell
//! of the memory in a prescribed address order. This crate provides:
//!
//! * the test description types ([`operation::MarchOp`],
//!   [`element::MarchElement`], [`algorithm::MarchTest`]) and a
//!   [`library`] of the published algorithms used by the paper's Table 1
//!   (MATS+, March C-, March SS, March SR, March G) plus several other
//!   classics,
//! * [`address_order`] implementations of the first March degree of
//!   freedom: the *word-line-after-word-line* (row-major) order exploited
//!   by the paper, the column-major order, plain linear order and a seeded
//!   pseudo-random permutation,
//! * a behavioural [`memory`] model and a library of functional
//!   [`faults`] (stuck-at, transition, coupling, read-destructive,
//!   stuck-open, write-disturb, address-decoder, …),
//! * the [`executor`] that applies a March test to any memory model, and
//!   the [`fault_sim`]/[`coverage`] layers that measure which faults each
//!   algorithm detects — used to demonstrate that fixing the address order
//!   (the paper's prerequisite) does not change fault coverage
//!   ([`dof`]).
//!
//! # The fault-simulation kernel
//!
//! Coverage and degree-of-freedom experiments exhaustively simulate a
//! fault list under every March test × address order × array size — an
//! `O(faults × operations)` workload that dominates the repo's runtime.
//! The hot path is organised as a measured kernel with five ingredients:
//!
//! 1. **Walk caching** ([`executor::MarchWalk`], [`executor::AddressPlan`])
//!    — the `(test, order, organization)` traversal is flattened once into
//!    a compact 8-byte-per-step array and shared, read-only, across every
//!    fault of a sweep; the ⇑ address permutation is materialised once and
//!    serves ⇓ by index arithmetic. Nothing allocates per fault.
//! 2. **Bit-packed memory** ([`memory::GoodMemory`]) — cells live in
//!    `u64` words (64 per word) and [`memory::GoodMemory::fill`] resets the
//!    array with a few word stores, so one scratch allocation serves an
//!    entire fault list.
//! 3. **Early exit** ([`executor::run_march_until_detected`],
//!    [`fault_sim::DetectionMode::FirstMismatch`]) — sweeps that only need
//!    the detected/missed bit stop each simulation at the first
//!    mismatching read instead of finishing the walk.
//! 4. **Parallel sweeps** ([`coverage::SweepOptions`], [`parallel`]) —
//!    the sweep work fans out across scoped worker threads, one scratch
//!    memory per worker, with outcomes reassembled in fault-list order so
//!    parallel reports are byte-identical to serial ones.
//! 5. **Lane batching** ([`batch::FaultBatch`], [`memory::LaneMemory`],
//!    [`executor::run_march_lanes`]) — up to sixty-four independent
//!    faults ride *one* walk dispatch, each owning a bit lane of a
//!    sparse lane-parallel store whose fills and compares stay whole-word
//!    `u64` operations; detection is lane-wise with mask popcounts
//!    driving the per-lane early exit. Lane forms are stored **inline**
//!    as [`faults::LaneFaultKind`] enum values (cohorts are
//!    `Vec<LaneFaultKind>`, dispatched by a monomorphized match — no
//!    per-owner `Box<dyn …>` pointer chase; the boxed
//!    [`faults::Fault::lane_form`] survives as the extensibility escape
//!    hatch for external fault types), and sweeps execute in **packed
//!    order** with one streaming permutation for probes and outcomes, so
//!    shuffled populations sweep at generation-ordered speed. Coverage
//!    sweeps ride this backend by default and keep the per-fault path as
//!    the golden reference.
//! 6. **Address-aware cohort packing** ([`batch::CohortPlanner`]) —
//!    cohorts are packed so faults sharing involved addresses land in the
//!    same walk dispatch, shrinking each cohort's merged step schedule on
//!    the dense populations synthesized by [`faultgen::FaultGen`]
//!    (per-row/per-column victims, neighbourhood coupling sets, mixed
//!    profiles of 100k+ faults); the list-order greedy planner is kept as
//!    the measured baseline.
//!
//! The `bench` crate's `fault_sim_throughput` benchmark measures the
//! kernel in faults/second against a frozen replica of the original
//! (per-fault allocating, always-full-walk, serial) implementation, and
//! the batched backend against the per-fault kernel.
//!
//! # Example
//!
//! ```
//! use march_test::prelude::*;
//! use sram_model::config::ArrayOrganization;
//!
//! let organization = ArrayOrganization::new(8, 8)?;
//! let test = library::march_c_minus();
//! assert_eq!(test.operation_count(), 10);
//!
//! // Run it on a fault-free memory: no failures.
//! let order = WordLineAfterWordLine;
//! let mut memory = GoodMemory::new(organization.capacity());
//! let result = run_march(&test, &order, &organization, &mut memory);
//! assert!(result.passed());
//!
//! // Sweep a fault list with the shared-walk kernel: early-exit
//! // detection, parallel across the list.
//! let faults = standard_fault_list(&organization);
//! let report = evaluate_coverage_with(
//!     &test,
//!     &order,
//!     &organization,
//!     &faults,
//!     SweepOptions::fast(),
//! );
//! assert!(report.coverage() > 0.5);
//! # Ok::<(), sram_model::error::SramError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address_order;
pub mod algorithm;
pub mod background;
pub mod batch;
pub mod coverage;
pub mod dof;
pub mod element;
pub mod executor;
pub mod fault_sim;
pub mod faultgen;
pub mod faults;
pub mod intern;
pub mod library;
pub mod memory;
pub mod operation;
pub mod parallel;
pub mod rng;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::address_order::{
        order_by_name, AddressOrder, ColumnMajor, PseudoRandomOrder, WordLineAfterWordLine,
    };
    pub use crate::algorithm::MarchTest;
    pub use crate::background::DataBackground;
    pub use crate::batch::{Cohort, CohortPlanner, FaultBatch};
    pub use crate::coverage::{
        evaluate_coverage, evaluate_coverage_caught, evaluate_coverage_on_walk,
        evaluate_coverage_with, panic_message, CoverageReport, SweepBackend, SweepOptions,
        SweepPanic,
    };
    pub use crate::element::{AddressDirection, MarchElement};
    pub use crate::executor::{
        run_march, run_march_until_detected, run_march_walk, AddressPlan, MarchResult, MarchStep,
        MarchWalk,
    };
    pub use crate::fault_sim::{
        simulate_fault, simulate_fault_on_walk, DetectionMode, FaultSimOutcome,
    };
    pub use crate::faultgen::{FaultGen, FaultGenError, FaultPopulation};
    pub use crate::faults::{standard_fault_list, Fault, LaneFault, LaneFaultKind};
    pub use crate::library;
    pub use crate::library::algorithm_by_name;
    pub use crate::memory::{GoodMemory, LaneMemory, MemoryModel};
    pub use crate::operation::MarchOp;
    pub use crate::rng::{Fnv1a, SplitMix64};
}
