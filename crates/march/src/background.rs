//! Data backgrounds — the fifth March degree of freedom.
//!
//! A March test may be applied under any *data background*: the pattern of
//! values considered to be "0" for each cell. Physically adjacent cells can
//! then hold opposite values (checkerboard, row/column stripes), which is
//! what exposes certain coupling and leakage mechanisms. The paper's
//! low-power technique explicitly preserves data-background independence
//! (the row-transition restore works for any stored pattern), so the
//! verification harness sweeps the backgrounds defined here.

use sram_model::address::Address;
use sram_model::config::ArrayOrganization;
use std::fmt;

use crate::memory::GoodMemory;

/// A classic data background pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataBackground {
    /// Every cell holds the same value (`false` = all zeros).
    Solid(bool),
    /// Cells alternate in both directions: `(row + col) % 2`.
    Checkerboard,
    /// Rows alternate: even rows hold `0`, odd rows hold `1`.
    RowStripe,
    /// Columns alternate: even columns hold `0`, odd columns hold `1`.
    ColumnStripe,
}

impl DataBackground {
    /// The conventional set of backgrounds used in memory test practice.
    pub fn all() -> [DataBackground; 5] {
        [
            DataBackground::Solid(false),
            DataBackground::Solid(true),
            DataBackground::Checkerboard,
            DataBackground::RowStripe,
            DataBackground::ColumnStripe,
        ]
    }

    /// The value this background assigns to `address` under `organization`.
    pub fn value_at(&self, address: Address, organization: &ArrayOrganization) -> bool {
        let row = address.row(organization).value();
        let col = address.col(organization).value();
        match self {
            DataBackground::Solid(value) => *value,
            DataBackground::Checkerboard => (row + col) % 2 == 1,
            DataBackground::RowStripe => row % 2 == 1,
            DataBackground::ColumnStripe => col % 2 == 1,
        }
    }

    /// The complemented background (degree of freedom #5 pairs each
    /// background with its complement).
    pub fn complemented(&self) -> DataBackground {
        match self {
            DataBackground::Solid(value) => DataBackground::Solid(!value),
            // The alternating patterns are their own complement up to a
            // one-cell shift; we keep the same pattern type.
            other => *other,
        }
    }

    /// Builds a [`GoodMemory`] initialised with this background.
    pub fn build_memory(&self, organization: &ArrayOrganization) -> GoodMemory {
        let mut memory = GoodMemory::new(organization.capacity());
        for raw in 0..organization.capacity() {
            let address = Address::new(raw);
            memory.set(address, self.value_at(address, organization));
        }
        memory
    }

    /// Fraction of cells holding `1` under this background (0.5 for all the
    /// alternating patterns on even-sized arrays).
    pub fn ones_fraction(&self, organization: &ArrayOrganization) -> f64 {
        let ones = (0..organization.capacity())
            .filter(|&raw| self.value_at(Address::new(raw), organization))
            .count();
        ones as f64 / organization.capacity() as f64
    }
}

impl fmt::Display for DataBackground {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataBackground::Solid(false) => f.write_str("solid 0"),
            DataBackground::Solid(true) => f.write_str("solid 1"),
            DataBackground::Checkerboard => f.write_str("checkerboard"),
            DataBackground::RowStripe => f.write_str("row stripe"),
            DataBackground::ColumnStripe => f.write_str("column stripe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_model::address::{ColIndex, RowIndex};

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 4).unwrap()
    }

    fn at(bg: DataBackground, row: u32, col: u32) -> bool {
        let organization = org();
        bg.value_at(
            Address::from_row_col(RowIndex(row), ColIndex(col), &organization),
            &organization,
        )
    }

    #[test]
    fn solid_backgrounds() {
        assert!(!at(DataBackground::Solid(false), 2, 3));
        assert!(at(DataBackground::Solid(true), 0, 0));
        assert_eq!(DataBackground::Solid(false).ones_fraction(&org()), 0.0);
        assert_eq!(DataBackground::Solid(true).ones_fraction(&org()), 1.0);
    }

    #[test]
    fn checkerboard_alternates_in_both_directions() {
        assert!(!at(DataBackground::Checkerboard, 0, 0));
        assert!(at(DataBackground::Checkerboard, 0, 1));
        assert!(at(DataBackground::Checkerboard, 1, 0));
        assert!(!at(DataBackground::Checkerboard, 1, 1));
        assert!((DataBackground::Checkerboard.ones_fraction(&org()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stripes_alternate_in_one_direction_only() {
        assert!(!at(DataBackground::RowStripe, 0, 3));
        assert!(at(DataBackground::RowStripe, 1, 3));
        assert!(!at(DataBackground::ColumnStripe, 3, 0));
        assert!(at(DataBackground::ColumnStripe, 3, 1));
    }

    #[test]
    fn build_memory_matches_value_at() {
        let organization = org();
        for bg in DataBackground::all() {
            let memory = bg.build_memory(&organization);
            for raw in 0..organization.capacity() {
                let address = Address::new(raw);
                assert_eq!(memory.get(address), bg.value_at(address, &organization));
            }
        }
    }

    #[test]
    fn complement_and_display() {
        assert_eq!(
            DataBackground::Solid(false).complemented(),
            DataBackground::Solid(true)
        );
        assert_eq!(
            DataBackground::Checkerboard.complemented(),
            DataBackground::Checkerboard
        );
        assert_eq!(DataBackground::Checkerboard.to_string(), "checkerboard");
        assert_eq!(DataBackground::Solid(true).to_string(), "solid 1");
        assert_eq!(DataBackground::all().len(), 5);
    }
}
