//! Complete March tests and their statistics.
//!
//! A [`MarchTest`] is a named sequence of [`MarchElement`]s. The statistics
//! exposed here (element count, operation count, read/write split) are the
//! ones the paper's Table 1 lists for each algorithm, and they drive the
//! analytic power model (`P_F` depends on the read/write mix, the
//! row-transition overhead on the element/operation ratio).

use crate::element::MarchElement;
use crate::operation::MarchOp;
use std::fmt;

/// A complete March algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchTest {
    name: String,
    elements: Vec<MarchElement>,
}

impl MarchTest {
    /// Creates a named test from its elements.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is empty.
    pub fn new(name: impl Into<String>, elements: Vec<MarchElement>) -> Self {
        assert!(
            !elements.is_empty(),
            "a march test must contain at least one element"
        );
        Self {
            name: name.into(),
            elements,
        }
    }

    /// The algorithm name (e.g. `"March C-"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The March elements in application order.
    pub fn elements(&self) -> &[MarchElement] {
        &self.elements
    }

    /// Number of March elements (the `#elm` column of Table 1).
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Total number of operations applied per cell over the whole test (the
    /// `#oper` column of Table 1). The test length is this number times the
    /// number of cells.
    pub fn operation_count(&self) -> usize {
        self.elements.iter().map(|e| e.op_count()).sum()
    }

    /// Number of read operations per cell (the `#read` column of Table 1).
    pub fn read_count(&self) -> usize {
        self.elements.iter().map(|e| e.read_count()).sum()
    }

    /// Number of write operations per cell (the `#write` column of Table 1).
    pub fn write_count(&self) -> usize {
        self.elements.iter().map(|e| e.write_count()).sum()
    }

    /// The complexity in the conventional `k·N` notation, i.e. the value of
    /// `k` (equal to [`Self::operation_count`]).
    pub fn complexity_factor(&self) -> usize {
        self.operation_count()
    }

    /// Total number of clock cycles needed to run the test on a memory of
    /// `cells` cells (one operation per cycle).
    pub fn total_operations(&self, cells: u64) -> u64 {
        self.operation_count() as u64 * cells
    }

    /// Average number of operations per element, used by the paper's
    /// row-transition frequency formula
    /// `F(row transition) = 1 / (#ops-per-element · #columns)`.
    pub fn mean_ops_per_element(&self) -> f64 {
        self.operation_count() as f64 / self.element_count() as f64
    }

    /// The test with every operation's data complemented (degree of freedom
    /// #5).
    pub fn complemented(&self) -> Self {
        Self {
            name: format!("{} (complemented)", self.name),
            elements: self.elements.iter().map(|e| e.complemented()).collect(),
        }
    }

    /// Returns `true` if the test begins with an unconditional write to
    /// every cell (needed so that later read expectations are defined
    /// regardless of the initial memory contents).
    pub fn initializes_memory(&self) -> bool {
        self.elements
            .first()
            .map(|e| matches!(e.ops().first(), Some(MarchOp::W0 | MarchOp::W1)))
            .unwrap_or(false)
    }
}

impl fmt::Display for MarchTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {{", self.name)?;
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::MarchElement;
    use crate::operation::MarchOp::*;

    fn sample() -> MarchTest {
        MarchTest::new(
            "sample",
            vec![
                MarchElement::either(vec![W0]),
                MarchElement::ascending(vec![R0, W1]),
                MarchElement::descending(vec![R1, W0]),
            ],
        )
    }

    #[test]
    fn statistics() {
        let t = sample();
        assert_eq!(t.name(), "sample");
        assert_eq!(t.element_count(), 3);
        assert_eq!(t.operation_count(), 5);
        assert_eq!(t.read_count(), 2);
        assert_eq!(t.write_count(), 3);
        assert_eq!(t.complexity_factor(), 5);
        assert_eq!(t.total_operations(100), 500);
        assert!((t.mean_ops_per_element() - 5.0 / 3.0).abs() < 1e-12);
        assert!(t.initializes_memory());
    }

    #[test]
    fn display_is_standard_notation() {
        let t = sample();
        assert_eq!(format!("{t}"), "sample: {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}");
    }

    #[test]
    fn complemented_test_swaps_all_data() {
        let t = sample().complemented();
        assert_eq!(t.elements()[0].ops(), &[W1]);
        assert_eq!(t.elements()[1].ops(), &[R1, W0]);
        assert!(t.name().contains("complemented"));
    }

    #[test]
    fn non_initializing_test_detected() {
        let t = MarchTest::new("reads-first", vec![MarchElement::ascending(vec![R0])]);
        assert!(!t.initializes_memory());
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_test_rejected() {
        let _ = MarchTest::new("empty", vec![]);
    }
}
