//! Address orders — the first March degree of freedom.
//!
//! A March ⇑ sequence may be *any* fixed ordering of the cell addresses, as
//! long as every address occurs exactly once and ⇓ is its exact reverse;
//! fault coverage does not depend on the choice. The paper exploits this
//! freedom by fixing the order to "word line after word line" (all columns
//! of row 0, then all columns of row 1, …), which is what makes the next
//! column to be accessed predictable and lets the pre-charge of every other
//! column be switched off.

use sram_model::address::{Address, ColIndex, RowIndex};
use sram_model::config::ArrayOrganization;

use crate::element::AddressDirection;
use crate::rng::SplitMix64;

/// An address ordering over a memory array.
///
/// Implementations must produce a permutation of all addresses for
/// [`AddressOrder::ascending`]; [`AddressOrder::descending`] is its exact
/// reverse (provided by the default method), as required by the March test
/// definition.
pub trait AddressOrder {
    /// Human-readable name of the order.
    fn name(&self) -> &'static str;

    /// The ⇑ sequence: a permutation of all `organization.capacity()`
    /// addresses.
    fn ascending(&self, organization: &ArrayOrganization) -> Vec<Address>;

    /// The ⇓ sequence: the exact reverse of [`Self::ascending`].
    fn descending(&self, organization: &ArrayOrganization) -> Vec<Address> {
        let mut addresses = self.ascending(organization);
        addresses.reverse();
        addresses
    }

    /// The sequence for an arbitrary element direction (⇕ uses ⇑).
    fn sequence(
        &self,
        organization: &ArrayOrganization,
        direction: AddressDirection,
    ) -> Vec<Address> {
        match direction {
            AddressDirection::Ascending | AddressDirection::Either => self.ascending(organization),
            AddressDirection::Descending => self.descending(organization),
        }
    }
}

/// The paper's order: all columns of a word line before moving to the next
/// word line (row-major, column index changing fastest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WordLineAfterWordLine;

impl AddressOrder for WordLineAfterWordLine {
    fn name(&self) -> &'static str {
        "word line after word line"
    }

    fn ascending(&self, organization: &ArrayOrganization) -> Vec<Address> {
        let mut addresses = Vec::with_capacity(organization.capacity() as usize);
        for row in 0..organization.rows() {
            for col in 0..organization.cols() {
                addresses.push(Address::from_row_col(
                    RowIndex(row),
                    ColIndex(col),
                    organization,
                ));
            }
        }
        addresses
    }
}

/// Column-major order: all rows of a column before moving to the next
/// column (the "fast row" order, the usual worst case for the paper's
/// technique because consecutive accesses change column as slowly as
/// possible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnMajor;

impl AddressOrder for ColumnMajor {
    fn name(&self) -> &'static str {
        "column major"
    }

    fn ascending(&self, organization: &ArrayOrganization) -> Vec<Address> {
        let mut addresses = Vec::with_capacity(organization.capacity() as usize);
        for col in 0..organization.cols() {
            for row in 0..organization.rows() {
                addresses.push(Address::from_row_col(
                    RowIndex(row),
                    ColIndex(col),
                    organization,
                ));
            }
        }
        addresses
    }
}

/// Plain linear order over the raw address value. With the row-major
/// address map used by this workspace it coincides with
/// [`WordLineAfterWordLine`]; it is kept as a separate type so experiments
/// can state which abstraction they rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinearOrder;

impl AddressOrder for LinearOrder {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn ascending(&self, organization: &ArrayOrganization) -> Vec<Address> {
        (0..organization.capacity()).map(Address::new).collect()
    }
}

/// A reproducible pseudo-random permutation of the address space — a stand
/// in for the "unpredictable" functional-mode access pattern and a stress
/// test for the degree-of-freedom argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PseudoRandomOrder {
    seed: u64,
}

impl PseudoRandomOrder {
    /// Creates an order from a seed; the same seed always produces the same
    /// permutation.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for PseudoRandomOrder {
    fn default() -> Self {
        Self::new(0x5eed_cafe)
    }
}

impl AddressOrder for PseudoRandomOrder {
    fn name(&self) -> &'static str {
        "pseudo-random"
    }

    fn ascending(&self, organization: &ArrayOrganization) -> Vec<Address> {
        let mut addresses: Vec<Address> = (0..organization.capacity()).map(Address::new).collect();
        SplitMix64::new(self.seed).shuffle(&mut addresses);
        addresses
    }
}

/// The address-complement order: each address is immediately followed by its
/// bitwise complement (within the address width of the array). This order is
/// popular for exposing address-decoder faults because consecutive accesses
/// flip every address bit at once; it is also the *worst* case for the
/// paper's technique because consecutive accesses land in maximally distant
/// columns, which is precisely why the paper fixes the order to
/// word-line-after-word-line instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AddressComplementOrder;

impl AddressOrder for AddressComplementOrder {
    fn name(&self) -> &'static str {
        "address complement"
    }

    fn ascending(&self, organization: &ArrayOrganization) -> Vec<Address> {
        let capacity = organization.capacity();
        // Number of address bits needed for the array.
        let bits = (capacity.max(2) as f64).log2().ceil() as u32;
        let mask = if bits >= 32 {
            u32::MAX
        } else {
            (1 << bits) - 1
        };
        let mut addresses = Vec::with_capacity(capacity as usize);
        let mut seen = vec![false; capacity as usize];
        for raw in 0..capacity {
            if seen[raw as usize] {
                continue;
            }
            seen[raw as usize] = true;
            addresses.push(Address::new(raw));
            let complement = (!raw) & mask;
            if complement < capacity && !seen[complement as usize] {
                seen[complement as usize] = true;
                addresses.push(Address::new(complement));
            }
        }
        addresses
    }
}

/// Looks an address order up by its [`AddressOrder::name`] string — the
/// job-level entry point campaign queues and CLIs resolve order fields
/// through. `seed` only matters for `"pseudo-random"`, which is the one
/// parameterised order; the rest ignore it. Returns `None` for unknown
/// names.
pub fn order_by_name(name: &str, seed: u64) -> Option<Box<dyn AddressOrder + Send + Sync>> {
    match name {
        "word line after word line" => Some(Box::new(WordLineAfterWordLine)),
        "column major" => Some(Box::new(ColumnMajor)),
        "linear" => Some(Box::new(LinearOrder)),
        "pseudo-random" => Some(Box::new(PseudoRandomOrder::new(seed))),
        "address complement" => Some(Box::new(AddressComplementOrder)),
        _ => None,
    }
}

/// Checks that an order is a valid ⇑ sequence for `organization`: every
/// address occurs exactly once.
pub fn is_valid_permutation(order: &dyn AddressOrder, organization: &ArrayOrganization) -> bool {
    let addresses = order.ascending(organization);
    if addresses.len() != organization.capacity() as usize {
        return false;
    }
    let mut seen = vec![false; organization.capacity() as usize];
    for a in addresses {
        let idx = a.value() as usize;
        if idx >= seen.len() || seen[idx] {
            return false;
        }
        seen[idx] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 8).unwrap()
    }

    #[test]
    fn word_line_after_word_line_walks_columns_first() {
        let organization = org();
        let seq = WordLineAfterWordLine.ascending(&organization);
        assert_eq!(seq.len(), 32);
        // First 8 addresses stay in row 0 with increasing columns.
        for (i, a) in seq.iter().take(8).enumerate() {
            assert_eq!(a.row(&organization), RowIndex(0));
            assert_eq!(a.col(&organization), ColIndex(i as u32));
        }
        assert_eq!(seq[8].row(&organization), RowIndex(1));
    }

    #[test]
    fn column_major_walks_rows_first() {
        let organization = org();
        let seq = ColumnMajor.ascending(&organization);
        for (i, a) in seq.iter().take(4).enumerate() {
            assert_eq!(a.col(&organization), ColIndex(0));
            assert_eq!(a.row(&organization), RowIndex(i as u32));
        }
        assert_eq!(seq[4].col(&organization), ColIndex(1));
    }

    #[test]
    fn all_orders_are_valid_permutations() {
        let organization = org();
        let orders: Vec<Box<dyn AddressOrder>> = vec![
            Box::new(WordLineAfterWordLine),
            Box::new(ColumnMajor),
            Box::new(LinearOrder),
            Box::new(PseudoRandomOrder::new(7)),
            Box::new(AddressComplementOrder),
        ];
        for order in &orders {
            assert!(
                is_valid_permutation(order.as_ref(), &organization),
                "{} is not a permutation",
                order.name()
            );
        }
    }

    #[test]
    fn descending_is_exact_reverse() {
        let organization = org();
        let up = WordLineAfterWordLine.ascending(&organization);
        let mut down = WordLineAfterWordLine.descending(&organization);
        down.reverse();
        assert_eq!(up, down);
    }

    #[test]
    fn sequence_respects_direction() {
        let organization = org();
        let order = WordLineAfterWordLine;
        assert_eq!(
            order.sequence(&organization, AddressDirection::Ascending)[0],
            Address::new(0)
        );
        assert_eq!(
            order.sequence(&organization, AddressDirection::Either)[0],
            Address::new(0)
        );
        assert_eq!(
            order.sequence(&organization, AddressDirection::Descending)[0],
            Address::new(31)
        );
    }

    #[test]
    fn linear_equals_word_line_after_word_line_under_row_major_map() {
        let organization = org();
        assert_eq!(
            LinearOrder.ascending(&organization),
            WordLineAfterWordLine.ascending(&organization)
        );
    }

    #[test]
    fn address_complement_pairs_each_address_with_its_complement() {
        let organization = ArrayOrganization::new(4, 4).unwrap(); // 16 cells, 4 bits
        let seq = AddressComplementOrder.ascending(&organization);
        assert_eq!(seq.len(), 16);
        // The first pair is 0 and its 4-bit complement 15.
        assert_eq!(seq[0], Address::new(0));
        assert_eq!(seq[1], Address::new(15));
        assert_eq!(seq[2], Address::new(1));
        assert_eq!(seq[3], Address::new(14));
        assert!(is_valid_permutation(&AddressComplementOrder, &organization));
        // Also valid when the capacity is not a power of two times itself.
        let odd = ArrayOrganization::new(3, 5).unwrap();
        assert!(is_valid_permutation(&AddressComplementOrder, &odd));
    }

    #[test]
    fn orders_resolve_by_name() {
        let organization = org();
        for name in [
            "word line after word line",
            "column major",
            "linear",
            "pseudo-random",
            "address complement",
        ] {
            let order = order_by_name(name, 7).expect("every published order name resolves");
            assert_eq!(order.name(), name);
            assert!(is_valid_permutation(order.as_ref(), &organization));
        }
        // The seed only changes the pseudo-random order.
        let a = order_by_name("pseudo-random", 1)
            .unwrap()
            .ascending(&organization);
        let b = order_by_name("pseudo-random", 2)
            .unwrap()
            .ascending(&organization);
        assert_ne!(a, b);
        assert!(order_by_name("zigzag", 0).is_none());
    }

    #[test]
    fn pseudo_random_is_deterministic_per_seed() {
        let organization = org();
        let a = PseudoRandomOrder::new(42).ascending(&organization);
        let b = PseudoRandomOrder::new(42).ascending(&organization);
        let c = PseudoRandomOrder::new(43).ascending(&organization);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // And it genuinely permutes (not the identity) for this size.
        assert_ne!(a, LinearOrder.ascending(&organization));
    }
}
