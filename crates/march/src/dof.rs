//! The six degrees of freedom (DOF) of March tests.
//!
//! The paper's technique rests entirely on DOF #1: *any* address sequence
//! may serve as the ⇑ order, as long as every address occurs exactly once
//! and ⇓ is its exact reverse — fault coverage does not depend on the
//! choice. This module documents the six DOFs and provides the
//! experimental check used in the reproduction: simulating a fault list
//! under several address orders and verifying that exactly the same faults
//! are detected.

use sram_model::config::ArrayOrganization;

use crate::address_order::AddressOrder;
use crate::algorithm::MarchTest;
use crate::coverage::{evaluate_coverage_with, CoverageReport, SweepOptions};
use crate::faults::FaultFactory;

/// The six degrees of freedom of March tests, as enumerated in the memory
/// testing literature and recalled by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegreeOfFreedom {
    /// DOF 1 — the ⇑ address sequence is arbitrary (⇓ is its reverse).
    AddressSequence,
    /// DOF 2 — ⇕ elements may use either direction.
    EitherDirectionElements,
    /// DOF 3 — the address sequence may differ between elements as long as
    /// each element uses a consistent ⇑/⇓ pair.
    PerElementSequence,
    /// DOF 4 — the mapping between logical and physical addresses is free.
    LogicalToPhysicalMapping,
    /// DOF 5 — the data background (all-0, all-1, checkerboard, …) is free.
    DataBackground,
    /// DOF 6 — elements may be merged or split when the per-cell operation
    /// sequence is preserved.
    ElementComposition,
}

impl DegreeOfFreedom {
    /// All six degrees of freedom in conventional numbering order.
    pub fn all() -> [DegreeOfFreedom; 6] {
        [
            DegreeOfFreedom::AddressSequence,
            DegreeOfFreedom::EitherDirectionElements,
            DegreeOfFreedom::PerElementSequence,
            DegreeOfFreedom::LogicalToPhysicalMapping,
            DegreeOfFreedom::DataBackground,
            DegreeOfFreedom::ElementComposition,
        ]
    }

    /// Human-readable statement of the degree of freedom.
    pub fn statement(&self) -> &'static str {
        match self {
            DegreeOfFreedom::AddressSequence => {
                "any address sequence may be defined as the ⇑ order, provided every \
                 address occurs exactly once and ⇓ is its exact reverse"
            }
            DegreeOfFreedom::EitherDirectionElements => {
                "elements marked ⇕ may be applied in either direction"
            }
            DegreeOfFreedom::PerElementSequence => {
                "different elements may use different (valid) address sequences"
            }
            DegreeOfFreedom::LogicalToPhysicalMapping => {
                "the logical-to-physical address mapping is unconstrained"
            }
            DegreeOfFreedom::DataBackground => {
                "the data background may be chosen freely (and complemented)"
            }
            DegreeOfFreedom::ElementComposition => {
                "elements may be merged or split while preserving the per-cell sequence"
            }
        }
    }
}

/// Result of comparing coverage across several address orders.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderIndependenceReport {
    /// Name of the March test compared.
    pub test_name: String,
    /// One coverage report per address order, in the order they were given.
    pub reports: Vec<CoverageReport>,
}

impl OrderIndependenceReport {
    /// `true` when every order detected exactly the same set of faults —
    /// the experimental confirmation of DOF #1 for this test and fault
    /// list.
    pub fn coverage_is_order_independent(&self) -> bool {
        let Some(first) = self.reports.first() else {
            return true;
        };
        let reference = first.detected_fault_names();
        self.reports
            .iter()
            .all(|r| r.detected_fault_names() == reference)
    }

    /// The coverage fraction of the first order (identical to the others
    /// whenever [`Self::coverage_is_order_independent`] holds).
    pub fn coverage(&self) -> f64 {
        self.reports.first().map(|r| r.coverage()).unwrap_or(0.0)
    }

    /// Fault kinds that the first (reference) order detects completely —
    /// the classes the algorithm *guarantees* to cover.
    pub fn fully_covered_kinds(&self) -> Vec<String> {
        let Some(first) = self.reports.first() else {
            return Vec::new();
        };
        first
            .by_kind()
            .into_iter()
            .filter(|(_, (detected, total))| detected == total)
            .map(|(kind, _)| kind)
            .collect()
    }

    /// `true` when every fault kind the reference order covers completely
    /// is also covered completely under every other order.
    ///
    /// This is the precise form of the degree-of-freedom guarantee: a March
    /// algorithm's *guaranteed* coverage does not depend on the address
    /// sequence. Faults outside an algorithm's target classes may still be
    /// caught "by accident", and whether a particular accidental detection
    /// happens can legitimately depend on the order — compare with
    /// [`Self::coverage_is_order_independent`], which demands the exact
    /// same detected set.
    pub fn guaranteed_coverage_preserved(&self) -> bool {
        let guaranteed = self.fully_covered_kinds();
        self.reports.iter().all(|report| {
            let by_kind = report.by_kind();
            guaranteed.iter().all(|kind| {
                by_kind
                    .get(kind)
                    .map(|(detected, total)| detected == total)
                    .unwrap_or(false)
            })
        })
    }
}

/// Evaluates `test` over `faults` under each of `orders` with explicit
/// sweep options and packages the comparison. One [`crate::executor::MarchWalk`]
/// is precomputed per order and shared across the whole fault list.
pub fn verify_order_independence_with(
    test: &MarchTest,
    orders: &[&dyn AddressOrder],
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
    options: SweepOptions,
) -> OrderIndependenceReport {
    let reports = orders
        .iter()
        .map(|order| evaluate_coverage_with(test, *order, organization, faults, options))
        .collect();
    OrderIndependenceReport {
        test_name: test.name().to_string(),
        reports,
    }
}

/// Evaluates `test` over `faults` under each of `orders` and packages the
/// comparison.
///
/// The degree-of-freedom experiment only needs the detected/missed bit per
/// fault, so this uses the throughput sweep configuration
/// ([`SweepOptions::fast`]: early-exit simulations, parallel across the
/// fault list). Use [`verify_order_independence_with`] to control the
/// sweep explicitly.
pub fn verify_order_independence(
    test: &MarchTest,
    orders: &[&dyn AddressOrder],
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
) -> OrderIndependenceReport {
    verify_order_independence_with(test, orders, organization, faults, SweepOptions::fast())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_order::{ColumnMajor, LinearOrder, WordLineAfterWordLine};
    use crate::faults::standard_fault_list;
    use crate::library;

    #[test]
    fn six_degrees_of_freedom_are_enumerated() {
        let all = DegreeOfFreedom::all();
        assert_eq!(all.len(), 6);
        assert!(all[0].statement().contains("address sequence"));
        assert!(all[4].statement().contains("data background"));
    }

    #[test]
    fn dof1_holds_on_generated_per_row_and_per_column_populations() {
        use crate::address_order::PseudoRandomOrder;
        use crate::faultgen::FaultGen;

        // Single-cell SAF/TF detection depends only on the per-cell
        // operation sequence, so the exact detected set must survive any
        // address order — now verified on a generated population covering
        // every row and column instead of the three standard victims.
        let organization = ArrayOrganization::new(8, 8).unwrap();
        let mut gen = FaultGen::new(organization, 4);
        let mut faults = gen.stuck_at_per_row(2);
        faults.extend(gen.transitions_per_column(2));
        gen.shuffle(&mut faults);
        let random = PseudoRandomOrder::new(9);
        let orders: Vec<&dyn AddressOrder> =
            vec![&WordLineAfterWordLine, &ColumnMajor, &LinearOrder, &random];
        for test in [library::march_c_minus(), library::march_ss()] {
            let report = verify_order_independence(&test, &orders, &organization, &faults);
            assert!(
                report.coverage_is_order_independent(),
                "{} coverage changed with the address order on a generated population",
                test.name()
            );
            assert_eq!(report.reports[0].total(), faults.len());
            assert!(report.coverage() > 0.9, "{}", test.name());
        }
    }

    #[test]
    fn dof1_coverage_is_identical_across_orders_for_table1_tests() {
        let organization = ArrayOrganization::new(4, 4).unwrap();
        let faults = standard_fault_list(&organization);
        let orders: Vec<&dyn AddressOrder> =
            vec![&WordLineAfterWordLine, &ColumnMajor, &LinearOrder];
        for test in library::table1_algorithms() {
            let report = verify_order_independence(&test, &orders, &organization, &faults);
            assert!(
                report.coverage_is_order_independent(),
                "{} coverage changed with the address order",
                test.name()
            );
            assert!(report.guaranteed_coverage_preserved());
            assert!(report.coverage() > 0.0);
            assert_eq!(report.test_name, test.name());
            assert!(report.fully_covered_kinds().contains(&"SAF".to_string()));
        }
    }
}
