//! Behavioural memory models for fault simulation.
//!
//! Fault simulation does not need the electrical detail of the
//! `sram-model` crate — it needs a functional view: an array of bits whose
//! read/write behaviour can be perturbed by an injected fault. The
//! [`MemoryModel`] trait is that view; [`GoodMemory`] is the fault-free
//! implementation, and [`crate::faults::FaultyMemory`] wraps it with a
//! fault's behaviour.
//!
//! [`GoodMemory`] is bit-packed: cells live in `u64` words, sixty-four per
//! word, so a 512×512 array costs 32 KiB instead of the 256 KiB a
//! `Vec<bool>` would need, and [`GoodMemory::fill`] resets the whole array
//! with a handful of word stores. Coverage sweeps exploit that by
//! allocating one memory and refilling it for every fault in the list
//! instead of allocating per fault.

use sram_model::address::Address;

/// A functional single-bit-per-address memory.
pub trait MemoryModel {
    /// Number of addressable cells.
    fn capacity(&self) -> u32;

    /// Reads the cell at `address`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `address` is outside `0..capacity()`.
    fn read(&mut self, address: Address) -> bool;

    /// Writes `value` into the cell at `address`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `address` is outside `0..capacity()`.
    fn write(&mut self, address: Address, value: bool);
}

const WORD_BITS: u32 = u64::BITS;

/// A fault-free memory backed by a bit-packed `u64`-word store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoodMemory {
    capacity: u32,
    words: Vec<u64>,
}

impl GoodMemory {
    /// Creates a memory of `capacity` cells, all holding `0`.
    pub fn new(capacity: u32) -> Self {
        let words = capacity.div_ceil(WORD_BITS) as usize;
        Self {
            capacity,
            words: vec![0; words],
        }
    }

    /// Creates a memory with every cell holding `value`.
    pub fn filled(capacity: u32, value: bool) -> Self {
        let mut memory = Self::new(capacity);
        memory.fill(value);
        memory
    }

    /// Resets every cell to `value` without reallocating — the fast path
    /// that lets one allocation serve a whole fault-list sweep.
    ///
    /// Bits beyond `capacity` in the last word are kept at `0` so that two
    /// memories with equal cell contents always compare equal.
    pub fn fill(&mut self, value: bool) {
        self.words.fill(if value { u64::MAX } else { 0 });
        if value {
            let tail = self.capacity % WORD_BITS;
            if tail != 0 {
                if let Some(last) = self.words.last_mut() {
                    *last = (1u64 << tail) - 1;
                }
            }
        }
    }

    #[inline]
    fn index(address: Address) -> (usize, u32) {
        let raw = address.value();
        ((raw / WORD_BITS) as usize, raw % WORD_BITS)
    }

    /// Direct, non-faulty access to a cell (used by fault wrappers to reach
    /// the underlying state).
    #[inline]
    pub fn get(&self, address: Address) -> bool {
        assert!(address.value() < self.capacity, "address out of range");
        let (word, bit) = Self::index(address);
        (self.words[word] >> bit) & 1 == 1
    }

    /// Direct, non-faulty modification of a cell.
    #[inline]
    pub fn set(&mut self, address: Address, value: bool) {
        assert!(address.value() < self.capacity, "address out of range");
        let (word, bit) = Self::index(address);
        if value {
            self.words[word] |= 1u64 << bit;
        } else {
            self.words[word] &= !(1u64 << bit);
        }
    }

    /// Iterates over all stored values in address order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.capacity).map(|raw| self.get(Address::new(raw)))
    }

    /// The backing words (sixty-four cells per word, LSB first; unused
    /// bits of the last word are `0`). Exposed for tests and diagnostics.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl MemoryModel for GoodMemory {
    fn capacity(&self) -> u32 {
        self.capacity
    }

    #[inline]
    fn read(&mut self, address: Address) -> bool {
        self.get(address)
    }

    #[inline]
    fn write(&mut self, address: Address, value: bool) {
        self.set(address, value);
    }
}

/// A lane-parallel memory: up to [`LaneMemory::LANES`] independent faulty
/// universes of the same cell array share one store, one bit lane each.
///
/// Where [`GoodMemory`] packs sixty-four *cells* into each `u64` word,
/// `LaneMemory` packs sixty-four *universes* of one cell: the word stored
/// for an address holds that cell's value in every lane, so a fill or a
/// read-compare against an expected value covers all lanes in a single
/// `u64` operation. This is the substrate of the batched multi-fault
/// kernel ([`crate::executor::run_march_lanes`]): each lane carries one
/// injected fault, and sixty-four faults ride one walk.
///
/// The store is sparse over the array: only the addresses the simulated
/// cohort involves are tracked, because the batched kernel never
/// dispatches steps outside them. A cohort therefore costs
/// `O(involved addresses)` memory and fill time regardless of the array
/// capacity — crucial once sweeps reach 1024×1024.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneMemory {
    capacity: u32,
    /// Tracked addresses, ascending and deduplicated.
    addresses: Vec<u32>,
    /// One word per tracked address; bit `l` is the cell value in lane `l`.
    words: Vec<u64>,
    /// Open-addressed address→slot index: each non-zero entry packs
    /// `(address + 1) << 32 | slot`. Every read/write of the batched
    /// kernel — including each lane fault's own cell accesses — resolves
    /// a slot, so the lookup is O(1) with one expected probe instead of a
    /// binary search over the union (whose dependent loads dominated
    /// dense cohorts).
    index: Vec<u64>,
    /// Bit mask of the power-of-two index size.
    index_mask: usize,
}

#[inline]
fn index_hash(address: u32) -> usize {
    // Fibonacci multiplicative hash: adjacent addresses (the common
    // cluster shape) scatter across the table.
    address.wrapping_mul(0x9E37_79B9) as usize
}

impl LaneMemory {
    /// Number of independent universes a `LaneMemory` word carries.
    pub const LANES: usize = u64::BITS as usize;

    /// Creates a memory of `capacity` cells tracking only `involved`
    /// addresses (in any order, duplicates allowed), all cells `0` in all
    /// lanes.
    ///
    /// # Panics
    ///
    /// Panics if an involved address is outside `0..capacity`.
    pub fn new(capacity: u32, involved: &[Address]) -> Self {
        let mut addresses: Vec<u32> = involved.iter().map(|a| a.value()).collect();
        addresses.sort_unstable();
        addresses.dedup();
        Self::from_sorted_raw(capacity, addresses)
    }

    /// Like [`LaneMemory::new`], but for an `involved` set that is already
    /// sorted and deduplicated — the cohort kernel holds exactly that
    /// union and skips the redundant re-sort on every cohort dispatch.
    ///
    /// # Panics
    ///
    /// Panics if an involved address is outside `0..capacity` or the set
    /// is not strictly ascending.
    pub fn from_sorted(capacity: u32, involved: &[Address]) -> Self {
        assert!(
            involved.windows(2).all(|pair| pair[0] < pair[1]),
            "involved addresses must be strictly ascending"
        );
        Self::from_sorted_raw(capacity, involved.iter().map(|a| a.value()).collect())
    }

    fn from_sorted_raw(capacity: u32, addresses: Vec<u32>) -> Self {
        let mut memory = Self {
            capacity: 0,
            addresses,
            words: Vec::new(),
            index: Vec::new(),
            index_mask: 0,
        };
        let tracked = std::mem::take(&mut memory.addresses);
        memory.rebuild(capacity, tracked);
        memory
    }

    /// Retargets this memory at a new `capacity` and tracked set without
    /// discarding its backing stores: the address, word and index vectors
    /// are truncated and regrown in place, so a scratch `LaneMemory`
    /// reused across cohorts only allocates when a cohort needs more room
    /// than any before it. All cells come back `0` in all lanes, exactly
    /// as from [`LaneMemory::from_sorted`].
    ///
    /// `involved` must be strictly ascending (sorted and deduplicated),
    /// like [`LaneMemory::from_sorted`]'s.
    ///
    /// # Panics
    ///
    /// Panics if an involved address is outside `0..capacity` or the set
    /// is not strictly ascending.
    pub fn reset_sorted(&mut self, capacity: u32, involved: &[Address]) {
        assert!(
            involved.windows(2).all(|pair| pair[0] < pair[1]),
            "involved addresses must be strictly ascending"
        );
        let mut tracked = std::mem::take(&mut self.addresses);
        tracked.clear();
        tracked.extend(involved.iter().map(|a| a.value()));
        self.rebuild(capacity, tracked);
    }

    /// Shared body of the constructors and [`LaneMemory::reset_sorted`]:
    /// installs an already sorted/deduplicated tracked set, resizing the
    /// word store and rebuilding the open-addressed index in place.
    fn rebuild(&mut self, capacity: u32, addresses: Vec<u32>) {
        if let Some(&last) = addresses.last() {
            assert!(last < capacity, "involved address out of range");
        }
        self.capacity = capacity;
        self.words.clear();
        self.words.resize(addresses.len(), 0);
        // Load factor ≤ 0.5 keeps expected probes at ~1.
        let index_size = (addresses.len() * 2).next_power_of_two().max(4);
        self.index_mask = index_size - 1;
        self.index.clear();
        self.index.resize(index_size, 0);
        for (slot, &address) in addresses.iter().enumerate() {
            let mut probe = index_hash(address) & self.index_mask;
            while self.index[probe] != 0 {
                probe = (probe + 1) & self.index_mask;
            }
            self.index[probe] = (u64::from(address) + 1) << 32 | slot as u64;
        }
        self.addresses = addresses;
    }

    /// Number of addressable cells of the array this memory models.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of tracked addresses.
    pub fn tracked(&self) -> usize {
        self.addresses.len()
    }

    /// Resets every tracked cell to `value` in every lane — a handful of
    /// word stores, the batched analogue of [`GoodMemory::fill`].
    pub fn fill(&mut self, value: bool) {
        self.words.fill(if value { u64::MAX } else { 0 });
    }

    #[inline]
    fn slot(&self, address: Address) -> usize {
        let key = u64::from(address.value()) + 1;
        let mut probe = index_hash(address.value()) & self.index_mask;
        loop {
            let entry = self.index[probe];
            if entry >> 32 == key {
                return entry as u32 as usize;
            }
            assert!(
                entry != 0,
                "address {address} is not tracked by this lane memory"
            );
            probe = (probe + 1) & self.index_mask;
        }
    }

    /// The union slot of `address` (its rank among the tracked
    /// addresses), for callers that dispatch many operations on the same
    /// cell and want to resolve it once.
    ///
    /// # Panics
    ///
    /// Panics if `address` is not tracked.
    #[inline]
    pub fn slot_of(&self, address: Address) -> usize {
        self.slot(address)
    }

    /// All lanes' values of the cell at union slot `slot` — the
    /// slot-direct form of [`LaneMemory::word`] used by the batched
    /// kernel, whose schedule already carries resolved slots.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn word_at(&self, slot: usize) -> u64 {
        self.words[slot]
    }

    /// Slot-direct form of [`LaneMemory::write_word`]: writes `value`
    /// into every lane except those set in `skip_lanes` at union slot
    /// `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[inline]
    pub fn write_word_at(&mut self, slot: usize, value: bool, skip_lanes: u64) {
        let splat = if value { u64::MAX } else { 0 };
        self.words[slot] = (self.words[slot] & skip_lanes) | (splat & !skip_lanes);
    }

    /// All lanes' values of the cell at `address` (bit `l` = lane `l`).
    ///
    /// # Panics
    ///
    /// Panics if `address` is not tracked.
    #[inline]
    pub fn word(&self, address: Address) -> u64 {
        self.words[self.slot(address)]
    }

    /// The cell value at `address` in lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `address` is not tracked or `lane` is out of range.
    #[inline]
    pub fn get_lane(&self, address: Address, lane: u32) -> bool {
        assert!((lane as usize) < Self::LANES, "lane out of range");
        self.words[self.slot(address)] >> lane & 1 == 1
    }

    /// Sets the cell at `address` to `value` in lane `lane` only.
    ///
    /// # Panics
    ///
    /// Panics if `address` is not tracked or `lane` is out of range.
    #[inline]
    pub fn set_lane(&mut self, address: Address, lane: u32, value: bool) {
        assert!((lane as usize) < Self::LANES, "lane out of range");
        let slot = self.slot(address);
        if value {
            self.words[slot] |= 1u64 << lane;
        } else {
            self.words[slot] &= !(1u64 << lane);
        }
    }

    /// Writes `value` into the cell at `address` in every lane *except*
    /// those set in `skip_lanes` — the fault-free whole-word write of the
    /// batched kernel, with the lanes owned by a fault at this address
    /// kept for their own faulty writes.
    ///
    /// # Panics
    ///
    /// Panics if `address` is not tracked.
    #[inline]
    pub fn write_word(&mut self, address: Address, value: bool, skip_lanes: u64) {
        self.write_word_at(self.slot(address), value, skip_lanes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn good_memory_read_write() {
        let mut m = GoodMemory::new(16);
        assert_eq!(m.capacity(), 16);
        assert!(!m.read(Address::new(3)));
        m.write(Address::new(3), true);
        assert!(m.read(Address::new(3)));
        assert!(m.get(Address::new(3)));
        m.set(Address::new(3), false);
        assert!(!m.read(Address::new(3)));
    }

    #[test]
    fn filled_memory() {
        let m = GoodMemory::filled(8, true);
        assert!(m.iter().all(|v| v));
        assert_eq!(m.iter().count(), 8);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        let mut m = GoodMemory::new(4);
        let _ = m.read(Address::new(4));
    }

    #[test]
    fn fill_matches_filled_and_keeps_tail_bits_clear() {
        // Non-multiple-of-64 capacity exercises the tail-word mask.
        for capacity in [1u32, 63, 64, 65, 100, 128, 130] {
            let mut m = GoodMemory::new(capacity);
            m.fill(true);
            assert_eq!(m, GoodMemory::filled(capacity, true), "capacity {capacity}");
            assert!(m.iter().all(|v| v));
            // Writing every cell individually must give an identical store,
            // including the unused tail bits.
            let mut written = GoodMemory::new(capacity);
            for raw in 0..capacity {
                written.set(Address::new(raw), true);
            }
            assert_eq!(m, written, "capacity {capacity}");
            m.fill(false);
            assert_eq!(m, GoodMemory::new(capacity));
        }
    }

    #[test]
    fn lane_memory_tracks_only_involved_addresses() {
        let involved = [Address::new(9), Address::new(2), Address::new(2)];
        let mut m = LaneMemory::new(1024 * 1024, &involved);
        assert_eq!(m.capacity(), 1024 * 1024);
        assert_eq!(m.tracked(), 2, "duplicates collapse");
        assert_eq!(m.word(Address::new(2)), 0);
        m.set_lane(Address::new(2), 5, true);
        assert!(m.get_lane(Address::new(2), 5));
        assert!(!m.get_lane(Address::new(2), 4));
        assert_eq!(m.word(Address::new(2)), 1 << 5);
        m.fill(true);
        assert_eq!(m.word(Address::new(9)), u64::MAX);
        m.fill(false);
        assert_eq!(m.word(Address::new(9)), 0);
    }

    #[test]
    fn lane_memory_whole_word_write_skips_owned_lanes() {
        let a = Address::new(3);
        let mut m = LaneMemory::new(8, &[a]);
        m.set_lane(a, 0, true);
        m.set_lane(a, 7, true);
        // Write 0 everywhere except lanes 0 and 7.
        m.write_word(a, false, (1 << 0) | (1 << 7));
        assert_eq!(m.word(a), (1 << 0) | (1 << 7));
        // Write 1 everywhere except lane 0.
        m.write_word(a, true, 1 << 0);
        assert_eq!(m.word(a), u64::MAX);
    }

    #[test]
    fn lane_memory_slot_lookup_matches_sorted_rank_on_large_unions() {
        // The open-addressed index must agree with the sorted-rank
        // contract for clustered and scattered address sets alike.
        let mut rng = SplitMix64::new(0x51_07);
        for tracked in [1usize, 2, 7, 64, 191, 500] {
            let involved: Vec<Address> = (0..tracked)
                .map(|_| Address::new(rng.next_below(1 << 20) as u32))
                .collect();
            let mut memory = LaneMemory::new(1 << 20, &involved);
            let mut sorted: Vec<u32> = involved.iter().map(|a| a.value()).collect();
            sorted.sort_unstable();
            sorted.dedup();
            for (rank, &address) in sorted.iter().enumerate() {
                assert_eq!(memory.slot_of(Address::new(address)), rank);
            }
            // Slot-direct accessors agree with the address-based ones.
            let probe = Address::new(sorted[tracked / 2]);
            let slot = memory.slot_of(probe);
            memory.set_lane(probe, 11, true);
            assert_eq!(memory.word_at(slot), memory.word(probe));
            memory.write_word_at(slot, true, 1 << 11);
            assert_eq!(memory.word(probe), u64::MAX);
        }
    }

    #[test]
    fn reset_sorted_is_indistinguishable_from_a_fresh_construction() {
        // A reused memory must behave exactly like a freshly built one,
        // whether the new cohort is larger, smaller, or differently
        // shaped than the previous tenant — and leak no old state.
        let mut rng = SplitMix64::new(0x0002_E5E7);
        let mut reused = LaneMemory::new(4, &[Address::new(1)]);
        reused.fill(true);
        for tracked in [3usize, 500, 7, 64, 1, 191] {
            let involved: Vec<Address> = (0..tracked)
                .map(|_| Address::new(rng.next_below(1 << 20) as u32))
                .collect();
            let mut sorted: Vec<u32> = involved.iter().map(|a| a.value()).collect();
            sorted.sort_unstable();
            sorted.dedup();
            let sorted: Vec<Address> = sorted.into_iter().map(Address::new).collect();
            reused.reset_sorted(1 << 20, &sorted);
            let fresh = LaneMemory::from_sorted(1 << 20, &sorted);
            assert_eq!(reused, fresh, "tracked {tracked}");
            // Dirty the reused store so the next round must clean it.
            reused.fill(true);
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn reset_sorted_rejects_unsorted_sets() {
        let mut m = LaneMemory::new(8, &[Address::new(1)]);
        m.reset_sorted(8, &[Address::new(3), Address::new(1)]);
    }

    #[test]
    fn from_sorted_matches_the_sorting_constructor() {
        let involved = [Address::new(2), Address::new(9), Address::new(40)];
        let via_new = LaneMemory::new(64, &involved);
        let via_sorted = LaneMemory::from_sorted(64, &involved);
        assert_eq!(via_new, via_sorted);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_sorted_rejects_unsorted_sets() {
        let _ = LaneMemory::from_sorted(8, &[Address::new(3), Address::new(1)]);
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn lane_memory_rejects_untracked_addresses() {
        let m = LaneMemory::new(8, &[Address::new(1)]);
        let _ = m.word(Address::new(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_memory_rejects_out_of_range_involved() {
        let _ = LaneMemory::new(4, &[Address::new(4)]);
    }

    /// Plain `Vec<bool>` memory — the seed implementation, kept as the
    /// differential-testing oracle for the bit-packed store.
    struct ReferenceMemory {
        cells: Vec<bool>,
    }

    impl ReferenceMemory {
        fn new(capacity: u32) -> Self {
            Self {
                cells: vec![false; capacity as usize],
            }
        }
    }

    impl MemoryModel for ReferenceMemory {
        fn capacity(&self) -> u32 {
            self.cells.len() as u32
        }
        fn read(&mut self, address: Address) -> bool {
            self.cells[address.value() as usize]
        }
        fn write(&mut self, address: Address, value: bool) {
            self.cells[address.value() as usize] = value;
        }
    }

    #[test]
    fn packed_store_matches_vec_bool_reference_on_random_sequences() {
        let mut rng = SplitMix64::new(0xB17_5707E);
        for capacity in [5u32, 64, 100, 257] {
            let mut packed = GoodMemory::new(capacity);
            let mut reference = ReferenceMemory::new(capacity);
            for step in 0..4_000 {
                let address = Address::new(rng.next_below(u64::from(capacity)) as u32);
                if rng.next_bool() {
                    let value = rng.next_bool();
                    packed.write(address, value);
                    reference.write(address, value);
                } else {
                    assert_eq!(
                        packed.read(address),
                        reference.read(address),
                        "capacity {capacity}, step {step}, address {}",
                        address.value()
                    );
                }
            }
            // Full-state comparison at the end of the sequence.
            for raw in 0..capacity {
                assert_eq!(
                    packed.get(Address::new(raw)),
                    reference.cells[raw as usize],
                    "capacity {capacity}, address {raw}"
                );
            }
        }
    }
}
