//! Behavioural memory models for fault simulation.
//!
//! Fault simulation does not need the electrical detail of the
//! `sram-model` crate — it needs a functional view: an array of bits whose
//! read/write behaviour can be perturbed by an injected fault. The
//! [`MemoryModel`] trait is that view; [`GoodMemory`] is the fault-free
//! implementation, and [`crate::faults::FaultyMemory`] wraps it with a
//! fault's behaviour.
//!
//! [`GoodMemory`] is bit-packed: cells live in `u64` words, sixty-four per
//! word, so a 512×512 array costs 32 KiB instead of the 256 KiB a
//! `Vec<bool>` would need, and [`GoodMemory::fill`] resets the whole array
//! with a handful of word stores. Coverage sweeps exploit that by
//! allocating one memory and refilling it for every fault in the list
//! instead of allocating per fault.

use sram_model::address::Address;

/// A functional single-bit-per-address memory.
pub trait MemoryModel {
    /// Number of addressable cells.
    fn capacity(&self) -> u32;

    /// Reads the cell at `address`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `address` is outside `0..capacity()`.
    fn read(&mut self, address: Address) -> bool;

    /// Writes `value` into the cell at `address`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `address` is outside `0..capacity()`.
    fn write(&mut self, address: Address, value: bool);
}

const WORD_BITS: u32 = u64::BITS;

/// A fault-free memory backed by a bit-packed `u64`-word store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoodMemory {
    capacity: u32,
    words: Vec<u64>,
}

impl GoodMemory {
    /// Creates a memory of `capacity` cells, all holding `0`.
    pub fn new(capacity: u32) -> Self {
        let words = capacity.div_ceil(WORD_BITS) as usize;
        Self {
            capacity,
            words: vec![0; words],
        }
    }

    /// Creates a memory with every cell holding `value`.
    pub fn filled(capacity: u32, value: bool) -> Self {
        let mut memory = Self::new(capacity);
        memory.fill(value);
        memory
    }

    /// Resets every cell to `value` without reallocating — the fast path
    /// that lets one allocation serve a whole fault-list sweep.
    ///
    /// Bits beyond `capacity` in the last word are kept at `0` so that two
    /// memories with equal cell contents always compare equal.
    pub fn fill(&mut self, value: bool) {
        self.words.fill(if value { u64::MAX } else { 0 });
        if value {
            let tail = self.capacity % WORD_BITS;
            if tail != 0 {
                if let Some(last) = self.words.last_mut() {
                    *last = (1u64 << tail) - 1;
                }
            }
        }
    }

    #[inline]
    fn index(address: Address) -> (usize, u32) {
        let raw = address.value();
        ((raw / WORD_BITS) as usize, raw % WORD_BITS)
    }

    /// Direct, non-faulty access to a cell (used by fault wrappers to reach
    /// the underlying state).
    #[inline]
    pub fn get(&self, address: Address) -> bool {
        assert!(address.value() < self.capacity, "address out of range");
        let (word, bit) = Self::index(address);
        (self.words[word] >> bit) & 1 == 1
    }

    /// Direct, non-faulty modification of a cell.
    #[inline]
    pub fn set(&mut self, address: Address, value: bool) {
        assert!(address.value() < self.capacity, "address out of range");
        let (word, bit) = Self::index(address);
        if value {
            self.words[word] |= 1u64 << bit;
        } else {
            self.words[word] &= !(1u64 << bit);
        }
    }

    /// Iterates over all stored values in address order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.capacity).map(|raw| self.get(Address::new(raw)))
    }

    /// The backing words (sixty-four cells per word, LSB first; unused
    /// bits of the last word are `0`). Exposed for tests and diagnostics.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl MemoryModel for GoodMemory {
    fn capacity(&self) -> u32 {
        self.capacity
    }

    #[inline]
    fn read(&mut self, address: Address) -> bool {
        self.get(address)
    }

    #[inline]
    fn write(&mut self, address: Address, value: bool) {
        self.set(address, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn good_memory_read_write() {
        let mut m = GoodMemory::new(16);
        assert_eq!(m.capacity(), 16);
        assert!(!m.read(Address::new(3)));
        m.write(Address::new(3), true);
        assert!(m.read(Address::new(3)));
        assert!(m.get(Address::new(3)));
        m.set(Address::new(3), false);
        assert!(!m.read(Address::new(3)));
    }

    #[test]
    fn filled_memory() {
        let m = GoodMemory::filled(8, true);
        assert!(m.iter().all(|v| v));
        assert_eq!(m.iter().count(), 8);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        let mut m = GoodMemory::new(4);
        let _ = m.read(Address::new(4));
    }

    #[test]
    fn fill_matches_filled_and_keeps_tail_bits_clear() {
        // Non-multiple-of-64 capacity exercises the tail-word mask.
        for capacity in [1u32, 63, 64, 65, 100, 128, 130] {
            let mut m = GoodMemory::new(capacity);
            m.fill(true);
            assert_eq!(m, GoodMemory::filled(capacity, true), "capacity {capacity}");
            assert!(m.iter().all(|v| v));
            // Writing every cell individually must give an identical store,
            // including the unused tail bits.
            let mut written = GoodMemory::new(capacity);
            for raw in 0..capacity {
                written.set(Address::new(raw), true);
            }
            assert_eq!(m, written, "capacity {capacity}");
            m.fill(false);
            assert_eq!(m, GoodMemory::new(capacity));
        }
    }

    /// Plain `Vec<bool>` memory — the seed implementation, kept as the
    /// differential-testing oracle for the bit-packed store.
    struct ReferenceMemory {
        cells: Vec<bool>,
    }

    impl ReferenceMemory {
        fn new(capacity: u32) -> Self {
            Self {
                cells: vec![false; capacity as usize],
            }
        }
    }

    impl MemoryModel for ReferenceMemory {
        fn capacity(&self) -> u32 {
            self.cells.len() as u32
        }
        fn read(&mut self, address: Address) -> bool {
            self.cells[address.value() as usize]
        }
        fn write(&mut self, address: Address, value: bool) {
            self.cells[address.value() as usize] = value;
        }
    }

    #[test]
    fn packed_store_matches_vec_bool_reference_on_random_sequences() {
        let mut rng = SplitMix64::new(0xB17_5707E);
        for capacity in [5u32, 64, 100, 257] {
            let mut packed = GoodMemory::new(capacity);
            let mut reference = ReferenceMemory::new(capacity);
            for step in 0..4_000 {
                let address = Address::new(rng.next_below(u64::from(capacity)) as u32);
                if rng.next_bool() {
                    let value = rng.next_bool();
                    packed.write(address, value);
                    reference.write(address, value);
                } else {
                    assert_eq!(
                        packed.read(address),
                        reference.read(address),
                        "capacity {capacity}, step {step}, address {}",
                        address.value()
                    );
                }
            }
            // Full-state comparison at the end of the sequence.
            for raw in 0..capacity {
                assert_eq!(
                    packed.get(Address::new(raw)),
                    reference.cells[raw as usize],
                    "capacity {capacity}, address {raw}"
                );
            }
        }
    }
}
