//! Behavioural memory models for fault simulation.
//!
//! Fault simulation does not need the electrical detail of the
//! `sram-model` crate — it needs a functional view: an array of bits whose
//! read/write behaviour can be perturbed by an injected fault. The
//! [`MemoryModel`] trait is that view; [`GoodMemory`] is the fault-free
//! implementation, and [`crate::faults::FaultyMemory`] wraps it with a
//! fault's behaviour.

use sram_model::address::Address;

/// A functional single-bit-per-address memory.
pub trait MemoryModel {
    /// Number of addressable cells.
    fn capacity(&self) -> u32;

    /// Reads the cell at `address`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `address` is outside `0..capacity()`.
    fn read(&mut self, address: Address) -> bool;

    /// Writes `value` into the cell at `address`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `address` is outside `0..capacity()`.
    fn write(&mut self, address: Address, value: bool);
}

/// A fault-free memory backed by a plain bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoodMemory {
    cells: Vec<bool>,
}

impl GoodMemory {
    /// Creates a memory of `capacity` cells, all holding `0`.
    pub fn new(capacity: u32) -> Self {
        Self {
            cells: vec![false; capacity as usize],
        }
    }

    /// Creates a memory with every cell holding `value`.
    pub fn filled(capacity: u32, value: bool) -> Self {
        Self {
            cells: vec![value; capacity as usize],
        }
    }

    /// Direct, non-faulty access to a cell (used by fault wrappers to reach
    /// the underlying state).
    pub fn get(&self, address: Address) -> bool {
        self.cells[address.value() as usize]
    }

    /// Direct, non-faulty modification of a cell.
    pub fn set(&mut self, address: Address, value: bool) {
        self.cells[address.value() as usize] = value;
    }

    /// Iterates over all stored values in address order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.cells.iter().copied()
    }
}

impl MemoryModel for GoodMemory {
    fn capacity(&self) -> u32 {
        self.cells.len() as u32
    }

    fn read(&mut self, address: Address) -> bool {
        self.cells[address.value() as usize]
    }

    fn write(&mut self, address: Address, value: bool) {
        self.cells[address.value() as usize] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_memory_read_write() {
        let mut m = GoodMemory::new(16);
        assert_eq!(m.capacity(), 16);
        assert!(!m.read(Address::new(3)));
        m.write(Address::new(3), true);
        assert!(m.read(Address::new(3)));
        assert!(m.get(Address::new(3)));
        m.set(Address::new(3), false);
        assert!(!m.read(Address::new(3)));
    }

    #[test]
    fn filled_memory() {
        let m = GoodMemory::filled(8, true);
        assert!(m.iter().all(|v| v));
        assert_eq!(m.iter().count(), 8);
    }

    #[test]
    #[should_panic]
    fn out_of_range_read_panics() {
        let mut m = GoodMemory::new(4);
        let _ = m.read(Address::new(4));
    }
}
