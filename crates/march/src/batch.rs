//! Lane-batched multi-fault simulation: the [`FaultBatch`] planner and
//! cohort sweep driver.
//!
//! The per-fault kernel ([`crate::fault_sim::simulate_fault_on_walk`])
//! pays one walk dispatch — and one scratch-memory refill proportional to
//! the array capacity — per injected fault. The bit-packed store already
//! holds sixty-four cells per word, and the batched backend turns that
//! around: sixty-four *independent* faults ride one walk by giving each
//! bit lane of a [`LaneMemory`] its own faulty universe
//! ([`crate::executor::run_march_lanes`]).
//!
//! [`FaultBatch::plan`] partitions a fault list into dispatchable
//! [`Cohort`]s under these rules, in fault-list order:
//!
//! * a fault joins a lane cohort when the walk is
//!   [`MarchWalk::locality_safe`] and the fault provides a
//!   [`Fault::lane_form`] — its behaviour confined to the lane form's
//!   involved addresses;
//! * lane cohorts close at [`LaneMemory::LANES`] (64) members and their
//!   involved-step slices are merged into one dispatch schedule by the
//!   cohort kernel;
//! * everything else (no lane form, or a non-locality-safe walk) becomes
//!   a serial singleton that runs the per-fault golden path.
//!
//! [`sweep_batched`] executes a plan — serial or fanned out across
//! threads with whole cohorts as the unit of work — and reassembles the
//! outcomes in fault-list order, so batched sweeps are byte-identical to
//! per-fault ones.

use crate::executor::{run_march_lanes, MarchWalk};
use crate::fault_sim::{simulate_fault_on_walk, DetectionMode, FaultSimOutcome};
use crate::faults::{Fault, FaultFactory, LaneFault};
use crate::memory::{GoodMemory, LaneMemory};
use crate::parallel::par_chunk_flat_map;

/// One unit of sweep work produced by the [`FaultBatch`] planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cohort {
    /// Up to [`LaneMemory::LANES`] lane-compatible faults simulated in one
    /// walk dispatch; the values are indices into the planned fault list,
    /// and each fault's lane is its position in the vector.
    Lanes(Vec<usize>),
    /// A fault that must run the per-fault path: its index in the planned
    /// fault list.
    Serial(usize),
}

impl Cohort {
    /// Number of faults this cohort simulates.
    pub fn len(&self) -> usize {
        match self {
            Cohort::Lanes(indices) => indices.len(),
            Cohort::Serial(_) => 1,
        }
    }

    /// `true` when the cohort simulates no faults (never produced by the
    /// planner).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A fault list partitioned into ≤64-lane cohorts for one walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultBatch {
    cohorts: Vec<Cohort>,
    faults: usize,
}

impl FaultBatch {
    /// Plans the cohorts of `faults` over `walk` (see the module docs for
    /// the grouping rules). Planning instantiates one probe fault per
    /// factory to query its lane form.
    pub fn plan(walk: &MarchWalk, faults: &[FaultFactory]) -> Self {
        let mut cohorts = Vec::new();
        let mut pending: Vec<usize> = Vec::new();
        for (index, factory) in faults.iter().enumerate() {
            let lane_capable = walk.locality_safe() && factory().lane_form().is_some();
            if lane_capable {
                pending.push(index);
                if pending.len() == LaneMemory::LANES {
                    cohorts.push(Cohort::Lanes(std::mem::take(&mut pending)));
                }
            } else {
                cohorts.push(Cohort::Serial(index));
            }
        }
        if !pending.is_empty() {
            cohorts.push(Cohort::Lanes(pending));
        }
        Self {
            cohorts,
            faults: faults.len(),
        }
    }

    /// The planned cohorts. Lane cohorts appear in fault-list order of
    /// their members; serial singletons are interleaved where their fault
    /// sits in the list.
    pub fn cohorts(&self) -> &[Cohort] {
        &self.cohorts
    }

    /// Number of faults the plan covers.
    pub fn fault_count(&self) -> usize {
        self.faults
    }

    /// Number of faults that ride lane cohorts (the rest run serially).
    pub fn lane_fault_count(&self) -> usize {
        self.cohorts
            .iter()
            .map(|cohort| match cohort {
                Cohort::Lanes(indices) => indices.len(),
                Cohort::Serial(_) => 0,
            })
            .sum()
    }
}

/// Runs one cohort of `batch`-planned work and tags each outcome with its
/// fault-list index. `scratch` serves the serial singletons and is only
/// allocated when the first one is met — an all-lane plan (the common
/// case) never pays for a capacity-sized memory; lane cohorts use their
/// own sparse [`LaneMemory`] instead.
///
/// # Panics
///
/// Panics if a pre-allocated `scratch` does not match the walk's capacity
/// or a planned lane fault no longer provides a lane form.
pub fn run_cohort(
    walk: &MarchWalk,
    faults: &[FaultFactory],
    cohort: &Cohort,
    scratch: &mut Option<GoodMemory>,
    background: bool,
    mode: DetectionMode,
) -> Vec<(usize, FaultSimOutcome)> {
    match cohort {
        Cohort::Serial(index) => {
            let scratch = scratch.get_or_insert_with(|| GoodMemory::new(walk.capacity()));
            let outcome = simulate_fault_on_walk(walk, scratch, faults[*index](), background, mode);
            vec![(*index, outcome)]
        }
        Cohort::Lanes(indices) => {
            let instances: Vec<Box<dyn Fault>> = indices.iter().map(|&i| faults[i]()).collect();
            let mut lanes: Vec<Box<dyn LaneFault>> = instances
                .iter()
                .map(|fault| {
                    fault
                        .lane_form()
                        .expect("planned lane faults have lane forms")
                })
                .collect();
            let detections = run_march_lanes(walk, &mut lanes, background, mode);
            indices
                .iter()
                .zip(&instances)
                .zip(detections)
                .map(|((&index, fault), detection)| {
                    (
                        index,
                        FaultSimOutcome {
                            fault_name: fault.name(),
                            fault_kind: fault.kind(),
                            test_name: walk.test_name().to_string(),
                            order_name: walk.order_name().to_string(),
                            detected: detection.detected,
                            mismatches: detection.mismatches,
                        },
                    )
                })
                .collect()
        }
    }
}

/// Simulates every fault in `faults` over `walk` through the lane-batched
/// backend, returning outcomes in fault-list order.
///
/// The fault list is planned into cohorts once, the cohorts are executed
/// — fanned out across `threads` worker threads with whole cohorts as the
/// unit of work when `threads > 1` — and the tagged outcomes are
/// scattered back into list order, so the result is identical to the
/// per-fault path regardless of scheduling.
pub fn sweep_batched(
    walk: &MarchWalk,
    faults: &[FaultFactory],
    background: bool,
    mode: DetectionMode,
    threads: usize,
) -> Vec<FaultSimOutcome> {
    let plan = FaultBatch::plan(walk, faults);
    let tagged = par_chunk_flat_map(plan.cohorts(), threads, |chunk| {
        // One scratch memory per worker, allocated lazily by the first
        // serial singleton of the chunk (if any).
        let mut scratch = None;
        chunk
            .iter()
            .flat_map(|cohort| run_cohort(walk, faults, cohort, &mut scratch, background, mode))
            .collect()
    });
    let mut outcomes: Vec<Option<FaultSimOutcome>> = (0..faults.len()).map(|_| None).collect();
    for (index, outcome) in tagged {
        debug_assert!(outcomes[index].is_none(), "each fault simulated once");
        outcomes[index] = Some(outcome);
    }
    outcomes
        .into_iter()
        .map(|outcome| outcome.expect("plan covers every fault"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_order::WordLineAfterWordLine;
    use crate::algorithm::MarchTest;
    use crate::element::MarchElement;
    use crate::faults::{standard_fault_list, StuckAtFault};
    use crate::library;
    use crate::operation::MarchOp;
    use sram_model::address::Address;
    use sram_model::config::ArrayOrganization;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 4).unwrap()
    }

    fn saf_list(count: u32) -> Vec<FaultFactory> {
        (0..count)
            .map(|v| {
                let factory: FaultFactory =
                    Box::new(move || Box::new(StuckAtFault::new(Address::new(v), v % 2 == 0)));
                factory
            })
            .collect()
    }

    #[test]
    fn plan_groups_the_standard_library_into_one_cohort() {
        let organization = org();
        let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        let faults = standard_fault_list(&organization);
        let plan = FaultBatch::plan(&walk, &faults);
        // Every standard fault — including the stuck-open family — has a
        // lane form, and the list fits into one 64-lane cohort.
        assert_eq!(plan.fault_count(), faults.len());
        assert_eq!(plan.lane_fault_count(), faults.len());
        assert_eq!(plan.cohorts().len(), 1);
        assert_eq!(plan.cohorts()[0].len(), faults.len());
        assert!(!plan.cohorts()[0].is_empty());
    }

    #[test]
    fn plan_splits_at_sixty_four_lanes() {
        let organization = ArrayOrganization::new(16, 8).unwrap();
        let walk = MarchWalk::new(&library::mats_plus(), &WordLineAfterWordLine, &organization);
        for (count, expected) in [
            (1usize, vec![1]),
            (63, vec![63]),
            (64, vec![64]),
            (65, vec![64, 1]),
        ] {
            let faults = saf_list(count as u32);
            let plan = FaultBatch::plan(&walk, &faults);
            let sizes: Vec<usize> = plan.cohorts().iter().map(Cohort::len).collect();
            assert_eq!(sizes, expected, "count {count}");
        }
    }

    #[test]
    fn non_locality_safe_walks_plan_serial_singletons() {
        let organization = org();
        let reads_first = MarchTest::new(
            "reads-first",
            vec![MarchElement::ascending(vec![MarchOp::R1])],
        );
        let walk = MarchWalk::new(&reads_first, &WordLineAfterWordLine, &organization);
        assert!(!walk.locality_safe());
        let faults = saf_list(4);
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.lane_fault_count(), 0);
        assert_eq!(plan.cohorts().len(), 4);
        assert!(plan
            .cohorts()
            .iter()
            .all(|cohort| matches!(cohort, Cohort::Serial(_))));
        // The serial fallback still yields outcomes in list order.
        let outcomes = sweep_batched(&walk, &faults, false, DetectionMode::Full, 1);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[3].fault_name, "SAF0@3");
    }

    #[test]
    fn faults_without_a_lane_form_fall_back_to_the_serial_path() {
        /// A fault that keeps the default `lane_form` of `None`.
        #[derive(Debug)]
        struct Opaque;
        impl Fault for Opaque {
            fn name(&self) -> String {
                "OPAQUE".into()
            }
            fn kind(&self) -> crate::faults::FaultKind {
                crate::faults::FaultKind::StuckAt
            }
            fn write(&mut self, memory: &mut GoodMemory, address: Address, _value: bool) {
                memory.set(address, true);
            }
            fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
                memory.get(address)
            }
        }
        let organization = org();
        let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        let mut faults = saf_list(2);
        faults.insert(1, Box::new(|| Box::new(Opaque)));
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.lane_fault_count(), 2);
        assert_eq!(
            plan.cohorts().len(),
            2,
            "one serial singleton + one lane cohort"
        );
        let outcomes = sweep_batched(&walk, &faults, false, DetectionMode::FirstMismatch, 1);
        assert_eq!(outcomes[1].fault_name, "OPAQUE");
        assert!(outcomes[1].detected, "stuck-at-1-everything is detected");
    }

    #[test]
    fn batched_sweep_is_identical_serial_and_parallel() {
        let organization = org();
        let walk = MarchWalk::new(
            &library::march_c_minus(),
            &WordLineAfterWordLine,
            &organization,
        );
        let faults = standard_fault_list(&organization);
        for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
            let serial = sweep_batched(&walk, &faults, false, mode, 1);
            let parallel = sweep_batched(&walk, &faults, false, mode, 8);
            assert_eq!(serial, parallel, "{mode:?}");
        }
    }
}
