//! Lane-batched multi-fault simulation: the [`FaultBatch`] planner and
//! cohort sweep driver.
//!
//! The per-fault kernel ([`crate::fault_sim::simulate_fault_on_walk`])
//! pays one walk dispatch — and one scratch-memory refill proportional to
//! the array capacity — per injected fault. The bit-packed store already
//! holds sixty-four cells per word, and the batched backend turns that
//! around: sixty-four *independent* faults ride one walk by giving each
//! bit lane of a [`LaneMemory`] its own faulty universe
//! ([`crate::executor::run_march_lanes`]).
//!
//! # Cohort lifecycle
//!
//! Every sweep runs the same five stages, in order; sequential passes are
//! marked `→`, the only permuted hop `⇢`:
//!
//! ```text
//!  fault list (factories, list order)
//!      │  probe: one instantiation per factory → lane kind (inline
//!      │         LaneFaultKind) | boxed lane form | neither, plus the
//!      ▼         involved addresses with their walk step counts
//!  probes (list order)
//!      │  plan: classify into lane / boxed / serial candidates, then
//!      │        group the lane candidates (CohortPlanner) into ≤64-lane
//!      ▼        cohorts closed at the kernel's address budget
//!  cohorts: Lanes(…) …, BoxedLanes(…) …, Serial(…) …
//!      │  pack: concatenate the lane cohorts' members into one
//!      ⇢        contiguous Vec<LaneFaultKind> — **packed order**, the
//!      │        kernel's native order — recording the fault→packed-slot
//!      ▼        inverse permutation as it goes
//!  packed lane array + per-cohort (start, len) ranges
//!      │  execute: one run_march_lanes dispatch per cohort over its
//!      │           slice of the packed array; detections land in
//!      ▼           packed-order flat arrays (sequential writes)
//!  packed detections  +  parked outcomes (boxed/serial, rare)
//!      │  scatter: one list-order assembly pass reads each fault's
//!      │           detection through the inverse permutation and its
//!      ▼           name/kind from the sequential probe array
//!  outcomes (fault-list order — byte-identical to the per-fault path)
//! ```
//!
//! Shuffled populations therefore cost exactly one permutation hop (the
//! pack stage's 16-byte `Copy` moves and the assembly's indexed reads)
//! instead of scattering every probe access and every outcome write, which
//! is what used to make address-scattered populations sweep ~1.5× slower
//! than generation-ordered ones.
//!
//! # Planning rules
//!
//! [`FaultBatch::plan_with`] partitions a fault list into dispatchable
//! [`Cohort`]s:
//!
//! * a fault joins an **enum lane cohort** ([`Cohort::Lanes`]) when the
//!   walk is [`MarchWalk::locality_safe`] and the fault provides a
//!   [`Fault::lane_kind`] — its lane form stored inline, dispatched by a
//!   match on plain data with no per-owner pointer chase;
//! * a fault with no inline kind but a boxed [`Fault::lane_form`] (the
//!   extensibility escape hatch for external fault types) joins a
//!   **boxed cohort** ([`Cohort::BoxedLanes`]), which runs the same
//!   generic kernel through virtual dispatch;
//! * lane cohorts close at [`LaneMemory::LANES`] (64) members or at the
//!   kernel's [`crate::executor::COHORT_ADDRESS_BUDGET`];
//! * everything else (no lane form at all, an over-budget involved set,
//!   or a non-locality-safe walk) becomes a serial singleton that runs
//!   the per-fault golden path.
//!
//! *Which* faults share a cohort is the [`CohortPlanner`]'s choice, and
//! it decides how much walk each cohort dispatches: a cohort's schedule
//! is the union of its members' involved-step slices, so packing faults
//! that **share addresses** into the same cohort shrinks the union. The
//! default [`CohortPlanner::AddressAware`] packer clusters by involved
//! addresses (kind-homogeneous within an address group, which keeps the
//! kernel's per-owner match running the same arm in long runs) and never
//! plans a worse total schedule than list order — it keeps whichever
//! grouping dispatches fewer steps; [`CohortPlanner::ListOrderGreedy`] is
//! the PR 3 baseline, kept for comparison benchmarks. Because the
//! address-signature clustering is insensitive to the input order, a
//! shuffled copy of a population packs into cohorts with identical
//! merged schedules (up to cohort order) as the generation-ordered
//! original.
//!
//! Cohort membership never changes *results*: lanes are independent
//! universes and [`sweep_batched`] reassembles outcomes in fault-list
//! order, so batched sweeps are byte-identical to per-fault ones under
//! every planner (the randomized differential harness in
//! `tests/dense_population_differential.rs` proves it seed by seed,
//! including shuffled-permutation seeds).

use sram_model::address::Address;

use crate::executor::{run_march_lanes_scratch, LaneScratch, MarchWalk};
use crate::fault_sim::{simulate_fault_counts_on_walk, DetectionMode, FaultSimOutcome};
use crate::faults::{Fault, FaultFactory, FaultKind, LaneFault, LaneFaultKind};
use crate::memory::{GoodMemory, LaneMemory};
use crate::parallel::par_chunk_flat_map_balanced_scratch;

/// One unit of sweep work produced by the [`FaultBatch`] planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cohort {
    /// Up to [`LaneMemory::LANES`] lane-compatible faults with inline
    /// [`LaneFaultKind`] forms, simulated in one walk dispatch off the
    /// packed cohort array; the values are indices into the planned fault
    /// list, and each fault's lane is its position in the vector.
    Lanes(Vec<usize>),
    /// Up to [`LaneMemory::LANES`] faults whose lane form is only
    /// available boxed ([`Fault::lane_form`] — the external-fault escape
    /// hatch); same kernel, virtual dispatch.
    BoxedLanes(Vec<usize>),
    /// A fault that must run the per-fault path: its index in the planned
    /// fault list.
    Serial(usize),
}

impl Cohort {
    /// Number of faults this cohort simulates.
    pub fn len(&self) -> usize {
        match self {
            Cohort::Lanes(indices) | Cohort::BoxedLanes(indices) => indices.len(),
            Cohort::Serial(_) => 1,
        }
    }

    /// `true` when the cohort simulates no faults (never produced by the
    /// planner).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The cohort-grouping strategy of a [`FaultBatch`] plan.
///
/// Every planner obeys the hard rules (lane-capable faults only, cohorts
/// close at [`LaneMemory::LANES`] members, each fault in exactly one
/// cohort); they differ only in *which* lane-capable faults share a
/// dispatch, which decides each cohort's merged-schedule size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CohortPlanner {
    /// Lane-capable faults are chunked in fault-list order — the PR 3
    /// baseline the address-aware packer is measured against.
    ListOrderGreedy,
    /// Lane-capable faults are sorted by their **victim-major**
    /// involved-address signature (the cell the fault is observed at
    /// leads the key, so a victim's single-cell models and its coupling
    /// pairs cluster together; fault kind is the tie-break, so cohorts
    /// also come out kind-homogeneous) before chunking: faults sharing
    /// victims land in the same cohort and their involved-step slices
    /// deduplicate inside the union. The packer then keeps whichever
    /// grouping — clustered or list-order — yields the smaller total
    /// merged schedule, so it is never worse than the greedy baseline.
    /// The signature sort does not depend on list positions (beyond
    /// final tie-breaking), which is what makes packed schedules
    /// invariant under population shuffles. The default.
    #[default]
    AddressAware,
}

/// A fault list partitioned into ≤64-lane cohorts for one walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultBatch {
    cohorts: Vec<Cohort>,
    faults: usize,
    planner: CohortPlanner,
    schedule_steps: u64,
}

/// Total walk steps the union of the given involved sets dispatches:
/// per-address step counts summed over the deduplicated union.
fn union_schedule_steps(walk: &MarchWalk, sets: &[&[Address]]) -> u64 {
    let mut union: Vec<Address> = sets.iter().flat_map(|set| set.iter().copied()).collect();
    union.sort_unstable();
    union.dedup();
    union
        .iter()
        .map(|&address| walk.steps_touching(address).len() as u64)
        .sum()
}

/// Probed faults in struct-of-arrays layout: the instances, the inline
/// lane kinds (when the walk admits them), the boxed escape-hatch lane
/// forms (only probed when there is no kind) and a CSR of the sorted
/// involved addresses, each paired with its walk step count.
///
/// Probing happens in fault-list order, once, and serves planning,
/// packing and outcome assembly — re-instantiating 100k faults per phase
/// (and re-reading the walk's cold CSR offsets per grouping evaluation)
/// is measurable at dense-population scale. The arrays are deliberately
/// *dense* (16 bytes per kind, 8 bytes per involved entry, no per-fault
/// heap spill): the packer visits them in clustered order and the pack
/// stage gathers through the packing permutation, and on shuffled
/// populations those permuted passes are what the sweep's throughput
/// hinges on.
struct ProbeSet {
    /// `None` once a boxed cohort or serial singleton consumed the
    /// instance (its outcome is then parked, name included, so the slot
    /// is never read again).
    faults: Vec<Option<Box<dyn Fault>>>,
    /// The inline lane forms — `Copy`, so the pack stage moves them into
    /// the packed cohort array without touching the heap.
    kinds: Vec<Option<LaneFaultKind>>,
    /// The boxed escape-hatch lane forms, probed only when the kind is
    /// `None`.
    boxed: Vec<Option<Box<dyn LaneFault>>>,
    /// `(address, steps touching it)` involved entries, ascending by
    /// address within each fault, concatenated in fault-list order.
    entries: Vec<(u32, u32)>,
    /// CSR offsets into `entries`: fault `i` owns
    /// `entries[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Clustering signature of each *kind-capable* fault (`0` otherwise):
    /// the semantic primary address — the victim, the cell the fault is
    /// observed at, which is the **last** entry of the model's
    /// [`LaneFaultKind::involved`] order — in the high half, the
    /// secondary address (or `u32::MAX` for single-cell faults) in the
    /// low half. Keying on the victim keeps a victim's single-cell
    /// models and its coupling pairs adjacent under the address-aware
    /// sort, matching the locality a generation-ordered qualification
    /// flow emits; a min-address key would strand half the pairs under
    /// their aggressors.
    sigs: Vec<u64>,
}

impl ProbeSet {
    fn len(&self) -> usize {
        self.faults.len()
    }

    /// The involved `(address, steps)` entries of fault `index`.
    fn involved(&self, index: usize) -> &[(u32, u32)] {
        &self.entries[self.offsets[index] as usize..self.offsets[index + 1] as usize]
    }
}

/// Sorts, deduplicates and step-annotates an involved address set into
/// the probe CSR.
fn push_involved_steps(walk: &MarchWalk, addresses: &[Address], entries: &mut Vec<(u32, u32)>) {
    let start = entries.len();
    entries.extend(addresses.iter().map(|a| (a.value(), 0)));
    entries[start..].sort_unstable_by_key(|entry| entry.0);
    // Deduplicate the freshly pushed tail only (never across the CSR
    // boundary into the previous fault's entries).
    let mut write = start;
    for read in start..entries.len() {
        if write == start || entries[write - 1].0 != entries[read].0 {
            entries[write] = entries[read];
            write += 1;
        }
    }
    entries.truncate(write);
    for entry in &mut entries[start..] {
        entry.1 = walk.steps_touching(Address::new(entry.0)).len() as u32;
    }
}

/// Sequentially probes every factory of `faults` over `walk`.
fn probe_faults(walk: &MarchWalk, faults: &[FaultFactory]) -> ProbeSet {
    let locality_safe = walk.locality_safe();
    let mut probes = ProbeSet {
        faults: Vec::with_capacity(faults.len()),
        kinds: Vec::with_capacity(faults.len()),
        boxed: Vec::with_capacity(faults.len()),
        entries: Vec::with_capacity(faults.len()),
        offsets: Vec::with_capacity(faults.len() + 1),
        sigs: Vec::with_capacity(faults.len()),
    };
    probes.offsets.push(0);
    for factory in faults {
        let fault = factory();
        let (kind, boxed) = if locality_safe {
            match fault.lane_kind() {
                Some(kind) => (Some(kind), None),
                None => (None, fault.lane_form()),
            }
        } else {
            (None, None)
        };
        let mut sig = 0u64;
        match (&kind, &boxed) {
            (Some(kind), _) => {
                let involved = kind.involved();
                sig = match *involved {
                    [only] => u64::from(only.value()) << 32 | u64::from(u32::MAX),
                    [secondary, victim] => {
                        u64::from(victim.value()) << 32 | u64::from(secondary.value())
                    }
                    _ => unreachable!("enum lane kinds involve one or two cells"),
                };
                push_involved_steps(walk, &involved, &mut probes.entries);
            }
            (None, Some(form)) => push_involved_steps(walk, &form.involved(), &mut probes.entries),
            _ => {}
        }
        probes.offsets.push(probes.entries.len() as u32);
        probes.faults.push(Some(fault));
        probes.kinds.push(kind);
        probes.boxed.push(boxed);
        probes.sigs.push(sig);
    }
    probes
}

/// Sentinel of the fault→packed-slot inverse permutation: the fault does
/// not ride an enum lane cohort (boxed or serial — its outcome parks
/// instead).
const UNPACKED: u32 = u32::MAX;

/// One clustered-sort entry of the address-aware packer: the victim-major
/// signature, kind rank and fault index form the sort key, and the entry
/// also carries everything the post-sort pass needs — per-address step
/// counts for the union cost, the inline lane form for direct packed
/// emission — so that pass never touches the permuted probe tables.
#[derive(Debug, Clone, Copy)]
struct ClusterKey {
    sig: u64,
    rank: u8,
    index: u32,
    steps: (u32, u32),
    kind: LaneFaultKind,
}

/// The pack-stage output when the planner could emit it directly from
/// its clustered pass: the contiguous lane-form array in packed
/// (execution) order, the fault→packed-slot inverse permutation and the
/// per-cohort `(start, len)` ranges. Producing this inside the planner
/// means a shuffled population pays exactly one permuted store per fault
/// (the `of_fault` write) for the whole instantiation side.
struct PackedLanes {
    lanes: Vec<LaneFaultKind>,
    of_fault: Vec<u32>,
    ranges: Vec<(u32, u32)>,
}

/// Sorts, deduplicates and sums a cohort union accumulated in `scratch`,
/// clearing it for the next cohort.
fn close_union(scratch: &mut Vec<(u32, u32)>) -> u64 {
    scratch.sort_unstable();
    scratch.dedup_by_key(|entry| entry.0);
    let steps = scratch.iter().map(|&(_, s)| u64::from(s)).sum();
    scratch.clear();
    steps
}

/// Chunks `positions` (indices into `involved`) into cohorts — closing at
/// 64 lanes or when the summed involved sets (an upper bound on the union
/// size) would exceed the kernel's address budget; today's ≤2-address
/// faults never trigger the latter, but the planner must not hand the
/// kernel a cohort it would reject — and computes the grouping's total
/// merged-schedule steps in the same pass, so a clustered evaluation
/// visits the (possibly permuted) involved slices exactly once.
fn chunk_and_cost(
    involved: &[&[(u32, u32)]],
    positions: &[usize],
    scratch: &mut Vec<(u32, u32)>,
) -> (Vec<Vec<usize>>, u64) {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut pending: Vec<usize> = Vec::new();
    let mut total = 0u64;
    scratch.clear();
    for &position in positions {
        let set = involved[position];
        if !pending.is_empty()
            && (pending.len() == LaneMemory::LANES
                || scratch.len() + set.len() > crate::executor::COHORT_ADDRESS_BUDGET)
        {
            total += close_union(scratch);
            groups.push(std::mem::take(&mut pending));
        }
        pending.push(position);
        scratch.extend_from_slice(set);
    }
    if !pending.is_empty() {
        total += close_union(scratch);
        groups.push(pending);
    }
    (groups, total)
}

/// Stable, order-invariant rank of a fault kind for the address-aware
/// tie-break (clusters same-kind faults adjacently inside an address
/// group so the kernel's owner-dispatch match runs the same arm in long
/// runs).
fn kind_rank(kind: FaultKind) -> u8 {
    match kind {
        FaultKind::StuckAt => 0,
        FaultKind::Transition => 1,
        FaultKind::CouplingInversion => 2,
        FaultKind::CouplingIdempotent => 3,
        FaultKind::CouplingState => 4,
        FaultKind::ReadDestructive => 5,
        FaultKind::DeceptiveReadDestructive => 6,
        FaultKind::IncorrectRead => 7,
        FaultKind::StuckOpen => 8,
        FaultKind::WriteDisturb => 9,
        FaultKind::AddressDecoder => 10,
    }
}

impl FaultBatch {
    /// Plans the cohorts of `faults` over `walk` with the default
    /// [`CohortPlanner::AddressAware`] packer. Planning instantiates one
    /// probe fault per factory to query its lane form and involved
    /// addresses.
    pub fn plan(walk: &MarchWalk, faults: &[FaultFactory]) -> Self {
        Self::plan_with(walk, faults, CohortPlanner::default())
    }

    /// Plans the cohorts of `faults` over `walk` under an explicit
    /// `planner` (see the module docs for the grouping rules).
    ///
    /// # Examples
    ///
    /// ```
    /// use march_test::batch::{CohortPlanner, FaultBatch};
    /// use march_test::executor::MarchWalk;
    /// use march_test::faults::standard_fault_list;
    /// use march_test::prelude::WordLineAfterWordLine;
    /// use march_test::library;
    /// use sram_model::config::ArrayOrganization;
    ///
    /// let organization = ArrayOrganization::new(8, 8)?;
    /// let walk = MarchWalk::new(
    ///     &library::march_ss(),
    ///     &WordLineAfterWordLine,
    ///     &organization,
    /// );
    /// let faults = standard_fault_list(&organization);
    ///
    /// let greedy = FaultBatch::plan_with(&walk, &faults, CohortPlanner::ListOrderGreedy);
    /// let packed = FaultBatch::plan_with(&walk, &faults, CohortPlanner::AddressAware);
    ///
    /// // Both plans cover every fault; the address-aware packer keeps
    /// // whichever grouping dispatches fewer merged walk steps, so it is
    /// // never worse than the list-order baseline.
    /// assert_eq!(greedy.fault_count(), faults.len());
    /// assert_eq!(packed.fault_count(), faults.len());
    /// assert!(packed.merged_schedule_steps() <= greedy.merged_schedule_steps());
    /// # Ok::<(), sram_model::error::SramError>(())
    /// ```
    pub fn plan_with(walk: &MarchWalk, faults: &[FaultFactory], planner: CohortPlanner) -> Self {
        Self::plan_probed(walk, &probe_faults(walk, faults), planner, false).0
    }

    /// Plans from already-probed faults — the shared core of
    /// [`FaultBatch::plan_with`] and the sweep driver, which probes once
    /// and reuses the instances for packing and execution. With
    /// `want_packed`, the address-aware clustered pass also emits the
    /// packed lane array directly (see [`PackedLanes`]) — the kinds are
    /// already in hand there, in packed order, so the sweep skips a
    /// separate permuted gather; `None` comes back when the greedy
    /// grouping won (or was requested) and the sweep must pack by
    /// gathering.
    fn plan_probed(
        walk: &MarchWalk,
        probes: &ProbeSet,
        planner: CohortPlanner,
        want_packed: bool,
    ) -> (Self, Option<PackedLanes>) {
        let locality_safe = walk.locality_safe();
        // Candidate indices are kept as `u32` (half the bytes of `usize`)
        // because cohort assembly below gathers them in the planner's
        // clustered order — a permuted pass on shuffled populations.
        let mut lane_indices: Vec<u32> = Vec::new();
        let mut lane_kinds: Vec<u8> = Vec::new();
        let mut lane_kind_values: Vec<LaneFaultKind> = Vec::new();
        let mut lane_sigs: Vec<u64> = Vec::new();
        let mut involved: Vec<&[(u32, u32)]> = Vec::new();
        let mut boxed_indices: Vec<u32> = Vec::new();
        let mut boxed_involved: Vec<&[(u32, u32)]> = Vec::new();
        let mut serial: Vec<usize> = Vec::new();
        let mut serial_steps = 0u64;
        for index in 0..probes.len() {
            let set = probes.involved(index);
            // A lane form whose involved set alone exceeds the kernel's
            // address budget can never share (or even fill) a cohort the
            // kernel would accept — it runs the per-fault path instead.
            let within_budget = set.len() <= crate::executor::COHORT_ADDRESS_BUDGET;
            if let Some(kind) = probes.kinds[index].filter(|_| within_budget) {
                lane_indices.push(index as u32);
                lane_kinds.push(kind_rank(kind.kind()));
                lane_kind_values.push(kind);
                lane_sigs.push(probes.sigs[index]);
                involved.push(set);
            } else if probes.boxed[index].is_some() && within_budget {
                boxed_indices.push(index as u32);
                boxed_involved.push(set);
            } else {
                let fault = probes.faults[index]
                    .as_ref()
                    .expect("fresh probes hold their fault");
                serial_steps += match fault.involved_addresses().filter(|_| locality_safe) {
                    Some(addresses) => union_schedule_steps(walk, &[&addresses]),
                    None => walk.len() as u64,
                };
                serial.push(index);
            }
        }

        let mut scratch: Vec<(u32, u32)> = Vec::new();
        let list_order: Vec<usize> = (0..lane_indices.len()).collect();
        let (greedy, greedy_steps) = chunk_and_cost(&involved, &list_order, &mut scratch);
        // Greedy groups hold candidate positions; resolve them to fault
        // indices (a sequential pass — greedy positions are in candidate
        // order).
        let greedy_to_indices = |groups: Vec<Vec<usize>>| -> Vec<Vec<usize>> {
            groups
                .into_iter()
                .map(|members| {
                    members
                        .into_iter()
                        .map(|position| lane_indices[position] as usize)
                        .collect()
                })
                .collect()
        };
        let mut packed_lanes: Option<PackedLanes> = None;
        let (lane_groups, lane_steps) = match planner {
            CohortPlanner::ListOrderGreedy => (greedy_to_indices(greedy), greedy_steps),
            CohortPlanner::AddressAware => {
                // Cluster by the victim-major involved-address signature
                // (see `ProbeSet::sigs`): a victim's single-cell models
                // and its coupling pairs sort adjacently (kind rank,
                // then fault index, break the remaining ties
                // deterministically — candidate positions are ascending
                // in fault index, so the two tie-breaks order
                // identically), and chunking the sorted order packs
                // overlapping faults into shared cohorts. Each key also
                // carries the fault index, the lane form and the
                // per-address step counts, so after the sort the
                // chunk-and-cost pass below builds fault-index cohorts
                // (and, on request, the packed lane array) from the keys
                // *sequentially*: on a shuffled 100k population it never
                // chases the permuted `involved` slices (or the
                // candidate-index table) at all.
                let mut keyed: Vec<ClusterKey> = involved
                    .iter()
                    .enumerate()
                    .map(|(position, set)| {
                        debug_assert!(set.len() <= 2, "enum lane kinds involve at most two cells");
                        let sig = lane_sigs[position];
                        // Step counts in the signature's (primary,
                        // secondary) order — `set` is sorted by address,
                        // the signature by semantic role.
                        let primary = (sig >> 32) as u32;
                        let steps = if set.len() == 1 {
                            (set[0].1, 0)
                        } else if set[0].0 == primary {
                            (set[0].1, set[1].1)
                        } else {
                            (set[1].1, set[0].1)
                        };
                        ClusterKey {
                            sig,
                            rank: lane_kinds[position],
                            index: lane_indices[position],
                            steps,
                            kind: lane_kind_values[position],
                        }
                    })
                    .collect();
                keyed.sort_unstable_by_key(|key| (key.sig, key.rank, key.index));
                let mut packed: Vec<Vec<usize>> = Vec::new();
                let mut pending: Vec<usize> = Vec::new();
                let mut packed_steps = 0u64;
                // The clustered order *is* packed execution order, so
                // when the caller wants the packed array this single
                // sequential pass emits it — lane forms in order, the
                // inverse permutation as the one scattered store.
                let mut emitted = want_packed.then(|| PackedLanes {
                    lanes: Vec::with_capacity(keyed.len()),
                    of_fault: vec![UNPACKED; probes.len()],
                    ranges: Vec::new(),
                });
                scratch.clear();
                for &ClusterKey {
                    sig,
                    index,
                    steps,
                    kind,
                    ..
                } in &keyed
                {
                    // A second address of `u32::MAX` marks a one-cell
                    // involved set (real addresses are `< capacity`).
                    let len = if sig as u32 == u32::MAX { 1 } else { 2 };
                    if !pending.is_empty()
                        && (pending.len() == LaneMemory::LANES
                            || scratch.len() + len > crate::executor::COHORT_ADDRESS_BUDGET)
                    {
                        packed_steps += close_union(&mut scratch);
                        packed.push(std::mem::take(&mut pending));
                    }
                    pending.push(index as usize);
                    if let Some(emitted) = &mut emitted {
                        emitted.of_fault[index as usize] = emitted.lanes.len() as u32;
                        emitted.lanes.push(kind);
                    }
                    scratch.push(((sig >> 32) as u32, steps.0));
                    if len == 2 {
                        scratch.push((sig as u32, steps.1));
                    }
                }
                if !pending.is_empty() {
                    packed_steps += close_union(&mut scratch);
                    packed.push(pending);
                }
                // Keep whichever grouping dispatches less walk: the
                // packer is never worse than the greedy baseline.
                if packed_steps <= greedy_steps {
                    if let Some(emitted) = &mut emitted {
                        let mut start = 0u32;
                        emitted.ranges = packed
                            .iter()
                            .map(|members| {
                                let range = (start, members.len() as u32);
                                start += members.len() as u32;
                                range
                            })
                            .collect();
                    }
                    packed_lanes = emitted;
                    (packed, packed_steps)
                } else {
                    // The greedy grouping won: the emitted clustered pack
                    // does not match it, so the sweep falls back to
                    // gather-packing off the cohort lists.
                    (greedy_to_indices(greedy), greedy_steps)
                }
            }
        };

        // Boxed escape-hatch cohorts are grouped in list order — external
        // fault types are rare by construction, so they take the simple
        // grouping under either planner.
        let boxed_positions: Vec<usize> = (0..boxed_indices.len()).collect();
        let (boxed_groups, boxed_steps) =
            chunk_and_cost(&boxed_involved, &boxed_positions, &mut scratch);

        let mut cohorts: Vec<Cohort> = lane_groups.into_iter().map(Cohort::Lanes).collect();
        cohorts.extend(boxed_groups.into_iter().map(|members| {
            Cohort::BoxedLanes(
                members
                    .into_iter()
                    .map(|position| boxed_indices[position] as usize)
                    .collect(),
            )
        }));
        cohorts.extend(serial.into_iter().map(Cohort::Serial));
        (
            Self {
                cohorts,
                faults: probes.len(),
                planner,
                schedule_steps: lane_steps + boxed_steps + serial_steps,
            },
            packed_lanes,
        )
    }

    /// The planned cohorts: enum lane cohorts first (in the planner's
    /// packing order), then boxed escape-hatch cohorts, then the serial
    /// singletons in fault-list order.
    pub fn cohorts(&self) -> &[Cohort] {
        &self.cohorts
    }

    /// The planner that produced this plan.
    pub fn planner(&self) -> CohortPlanner {
        self.planner
    }

    /// Total walk steps the plan dispatches: each lane cohort's merged
    /// (deduplicated) involved-step schedule plus each serial singleton's
    /// filtered slice — the metric the address-aware packer minimises,
    /// and the `speedup_packed_schedule` ratio the dense benchmark
    /// tracks against the greedy baseline.
    pub fn merged_schedule_steps(&self) -> u64 {
        self.schedule_steps
    }

    /// Number of faults the plan covers.
    pub fn fault_count(&self) -> usize {
        self.faults
    }

    /// Number of faults that ride lane cohorts — inline enum or boxed
    /// escape hatch (the rest run serially).
    pub fn lane_fault_count(&self) -> usize {
        self.cohorts
            .iter()
            .map(|cohort| match cohort {
                Cohort::Lanes(indices) | Cohort::BoxedLanes(indices) => indices.len(),
                Cohort::Serial(_) => 0,
            })
            .sum()
    }
}

/// Simulates every fault in `faults` over `walk` through the lane-batched
/// backend with the default [`CohortPlanner::AddressAware`] packer,
/// returning outcomes in fault-list order. See [`sweep_batched_with`].
pub fn sweep_batched(
    walk: &MarchWalk,
    faults: &[FaultFactory],
    background: bool,
    mode: DetectionMode,
    threads: usize,
) -> Vec<FaultSimOutcome> {
    sweep_batched_with(
        walk,
        faults,
        background,
        mode,
        threads,
        CohortPlanner::default(),
    )
}

fn park_lane_outcome(
    walk: &MarchWalk,
    fault: &dyn Fault,
    detected: bool,
    mismatches: usize,
) -> FaultSimOutcome {
    FaultSimOutcome {
        fault_name: fault.name(),
        fault_kind: fault.kind(),
        test_name: walk.test_name().to_string(),
        order_name: walk.order_name().to_string(),
        detected,
        mismatches,
    }
}

/// Simulates every fault in `faults` over `walk` through the lane-batched
/// backend under an explicit cohort `planner`, returning outcomes in
/// fault-list order.
///
/// Execution follows the packed-order lifecycle described in the module
/// docs: every fault is probed exactly once, in fault-list order; the
/// plan is built from the probes; the lane cohorts' inline (`Copy`)
/// forms are packed into one contiguous array in execution order while
/// the fault→packed-slot inverse permutation is recorded; the cohorts
/// execute off packed slices — serially, or fanned out across `threads`
/// worker threads with whole cohorts as the unit of work, load-balanced
/// because generated populations produce cohorts of very uneven cost.
/// Detections land in packed-order flat arrays (sequential writes), and
/// one final pass assembles outcomes in list order through the inverse
/// permutation, so the result is identical to the per-fault path
/// regardless of population order, scheduling or planner.
///
/// The parallel path holds no locks on the hot path: workers copy each
/// cohort's inline lane forms (16 bytes apiece) out of the shared packed
/// array instead of taking mutex-guarded ownership of boxed forms, and
/// the rare boxed/serial stragglers re-instantiate from the `Sync`
/// factories inside the worker.
pub fn sweep_batched_with(
    walk: &MarchWalk,
    faults: &[FaultFactory],
    background: bool,
    mode: DetectionMode,
    threads: usize,
    planner: CohortPlanner,
) -> Vec<FaultSimOutcome> {
    sweep_batched_assemble(
        walk,
        faults,
        background,
        mode,
        threads,
        planner,
        &|fault, detected, mismatches| park_lane_outcome(walk, fault, detected, mismatches),
    )
}

/// [`sweep_batched_with`], generic over the per-fault outcome assembly:
/// `assemble(fault, detected, mismatches)` renders each fault's result
/// into whatever report entry the caller wants — the full string-bearing
/// [`FaultSimOutcome`] ([`sweep_batched_with`] itself), or the interned
/// [`OutcomeCode`](crate::intern::OutcomeCode) form that skips the
/// three-strings-per-fault allocation
/// ([`crate::coverage::evaluate_coverage_interned`]).
///
/// `assemble` runs once per fault, in no guaranteed order (workers call
/// it for their own cohorts), but the returned vector is always in
/// fault-list order. It must be a pure function of its arguments.
pub fn sweep_batched_assemble<O, A>(
    walk: &MarchWalk,
    faults: &[FaultFactory],
    background: bool,
    mode: DetectionMode,
    threads: usize,
    planner: CohortPlanner,
    assemble: &A,
) -> Vec<O>
where
    O: Send + Sync,
    A: Fn(&dyn Fault, bool, usize) -> O + Sync,
{
    let mut probes = probe_faults(walk, faults);
    let (plan, packed) = FaultBatch::plan_probed(walk, &probes, planner, true);

    // Pack stage: concatenate the lane cohorts' members into the kernel's
    // native execution order. The address-aware planner usually emitted
    // the packed array straight out of its clustered pass (one permuted
    // store per fault, everything else sequential); when it could not
    // (greedy grouping won, or was requested), one streaming pass over
    // the cohort lists gathers each member's inline (`Copy`) lane form
    // from the dense kind array and records the inverse permutation —
    // two independent accesses per fault that pipeline across iterations.
    let PackedLanes {
        lanes: mut packed_lanes,
        of_fault: packed_of_fault,
        ranges: lane_ranges,
    } = packed.unwrap_or_else(|| {
        let mut emitted = PackedLanes {
            lanes: Vec::with_capacity(plan.lane_fault_count()),
            of_fault: vec![UNPACKED; probes.len()],
            ranges: Vec::new(),
        };
        for cohort in plan.cohorts() {
            if let Cohort::Lanes(indices) = cohort {
                emitted
                    .ranges
                    .push((emitted.lanes.len() as u32, indices.len() as u32));
                for &index in indices {
                    emitted.of_fault[index] = emitted.lanes.len() as u32;
                    emitted
                        .lanes
                        .push(probes.kinds[index].expect("planned lane faults have kinds"));
                }
            }
        }
        emitted
    });

    // Per-packed-slot mismatch counts: the kernel's detection flag is
    // exactly `mismatches > 0` (a lane is detected iff at least one of
    // its reads mismatched), so one dense `u32` array carries the whole
    // outcome and the assembly pass gathers four bytes per fault.
    let mut counts_packed = vec![0u32; packed_lanes.len()];
    let mut parked: Vec<(usize, O)> = Vec::new();

    if threads <= 1 {
        let mut scratch: Option<GoodMemory> = None;
        // One set of kernel dispatch buffers serves every cohort of the
        // sweep — the serial analogue of the per-worker scratch reuse of
        // the parallel path below.
        let mut lane_scratch = LaneScratch::new();
        let mut lane_cursor = 0usize;
        for cohort in plan.cohorts() {
            match cohort {
                Cohort::Lanes(_) => {
                    let (start, len) = lane_ranges[lane_cursor];
                    lane_cursor += 1;
                    let (start, len) = (start as usize, len as usize);
                    let detections = run_march_lanes_scratch(
                        walk,
                        &mut packed_lanes[start..start + len],
                        background,
                        mode,
                        &mut lane_scratch,
                    );
                    for (offset, detection) in detections.iter().enumerate() {
                        counts_packed[start + offset] = detection.mismatches as u32;
                    }
                }
                Cohort::BoxedLanes(indices) => {
                    let mut lanes: Vec<Box<dyn LaneFault>> = indices
                        .iter()
                        .map(|&index| {
                            probes.boxed[index]
                                .take()
                                .expect("planned boxed faults have lane forms")
                        })
                        .collect();
                    let detections = run_march_lanes_scratch(
                        walk,
                        &mut lanes,
                        background,
                        mode,
                        &mut lane_scratch,
                    );
                    for (&index, detection) in indices.iter().zip(detections) {
                        let fault = probes.faults[index].take().expect("probe holds its fault");
                        parked.push((
                            index,
                            assemble(fault.as_ref(), detection.detected, detection.mismatches),
                        ));
                    }
                }
                Cohort::Serial(index) => {
                    let scratch = scratch.get_or_insert_with(|| GoodMemory::new(walk.capacity()));
                    let fault = probes.faults[*index].take().expect("probe holds its fault");
                    let (fault, detected, mismatches) =
                        simulate_fault_counts_on_walk(walk, scratch, fault, background, mode);
                    parked.push((*index, assemble(fault.as_ref(), detected, mismatches)));
                }
            }
        }
    } else {
        // Lock-free fan-out: enum cohorts are read-only slices of the
        // packed array, and each worker copies the (Copy, 16-byte) lane
        // forms of a claimed cohort into its own buffer before running
        // the kernel — ownership by copy, no mutexes. Boxed cohorts and
        // serial singletons re-instantiate from their `Sync` factories
        // inside the worker (both are rare by construction).
        enum Work<'a> {
            Lanes {
                start: usize,
                lanes: &'a [LaneFaultKind],
            },
            Boxed(&'a [usize]),
            Serial(usize),
        }
        enum Record<O> {
            Lane { position: usize, mismatches: u32 },
            Parked((usize, O)),
        }
        let mut work: Vec<Work> = Vec::with_capacity(plan.cohorts().len());
        let mut lane_cursor = 0usize;
        for cohort in plan.cohorts() {
            match cohort {
                Cohort::Lanes(_) => {
                    let (start, len) = lane_ranges[lane_cursor];
                    lane_cursor += 1;
                    let (start, len) = (start as usize, len as usize);
                    work.push(Work::Lanes {
                        start,
                        lanes: &packed_lanes[start..start + len],
                    });
                }
                Cohort::BoxedLanes(indices) => work.push(Work::Boxed(indices)),
                Cohort::Serial(index) => work.push(Work::Serial(*index)),
            }
        }
        let tagged = par_chunk_flat_map_balanced_scratch(&work, threads, |chunk, worker| {
            let mut scratch: Option<GoodMemory> = None;
            let mut local: Vec<LaneFaultKind> = Vec::new();
            let mut records: Vec<Record<O>> = Vec::new();
            // The kernel dispatch buffers live in the claiming worker's
            // pool scratch, so every chunk the worker claims — across the
            // whole sweep — reuses one set of allocations.
            let lane_scratch: &mut LaneScratch = worker.get_or_insert_with(LaneScratch::new);
            for item in chunk {
                match item {
                    Work::Lanes { start, lanes } => {
                        local.clear();
                        local.extend_from_slice(lanes);
                        let detections = run_march_lanes_scratch(
                            walk,
                            &mut local,
                            background,
                            mode,
                            lane_scratch,
                        );
                        records.extend(detections.iter().enumerate().map(|(offset, detection)| {
                            Record::Lane {
                                position: start + offset,
                                mismatches: detection.mismatches as u32,
                            }
                        }));
                    }
                    Work::Boxed(indices) => {
                        let mut lanes = Vec::with_capacity(indices.len());
                        let mut instances = Vec::with_capacity(indices.len());
                        for &index in *indices {
                            let fault = faults[index]();
                            lanes.push(
                                fault
                                    .lane_form()
                                    .expect("planned boxed faults have lane forms"),
                            );
                            instances.push(fault);
                        }
                        let detections = run_march_lanes_scratch(
                            walk,
                            &mut lanes,
                            background,
                            mode,
                            lane_scratch,
                        );
                        records.extend(indices.iter().zip(instances).zip(detections).map(
                            |((&index, fault), detection)| {
                                Record::Parked((
                                    index,
                                    assemble(
                                        fault.as_ref(),
                                        detection.detected,
                                        detection.mismatches,
                                    ),
                                ))
                            },
                        ));
                    }
                    Work::Serial(index) => {
                        let scratch =
                            scratch.get_or_insert_with(|| GoodMemory::new(walk.capacity()));
                        let (fault, detected, mismatches) = simulate_fault_counts_on_walk(
                            walk,
                            scratch,
                            faults[*index](),
                            background,
                            mode,
                        );
                        records.push(Record::Parked((
                            *index,
                            assemble(fault.as_ref(), detected, mismatches),
                        )));
                    }
                }
            }
            records
        });
        for record in tagged {
            match record {
                Record::Lane {
                    position,
                    mismatches,
                } => counts_packed[position] = mismatches,
                Record::Parked(entry) => parked.push(entry),
            }
        }
    }

    // Scatter stage: one list-order pass; lane outcomes are read through
    // the inverse permutation, parked (boxed/serial) outcomes merge in by
    // index.
    parked.sort_unstable_by_key(|(index, _)| *index);
    let mut parked = parked.into_iter().peekable();
    (0..probes.len())
        .map(|index| {
            if parked.peek().is_some_and(|(i, _)| *i == index) {
                return parked.next().expect("peeked").1;
            }
            let position = packed_of_fault[index];
            debug_assert_ne!(position, UNPACKED, "non-parked faults ride lane cohorts");
            let fault = probes.faults[index]
                .as_ref()
                .expect("lane probes keep their fault");
            let count = counts_packed[position as usize];
            assemble(fault.as_ref(), count > 0, count as usize)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_order::WordLineAfterWordLine;
    use crate::algorithm::MarchTest;
    use crate::element::MarchElement;
    use crate::faults::{standard_fault_list, StuckAtFault};
    use crate::library;
    use crate::operation::MarchOp;
    use sram_model::address::Address;
    use sram_model::config::ArrayOrganization;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 4).unwrap()
    }

    fn saf_list(count: u32) -> Vec<FaultFactory> {
        (0..count)
            .map(|v| {
                let factory: FaultFactory =
                    Box::new(move || Box::new(StuckAtFault::new(Address::new(v), v % 2 == 0)));
                factory
            })
            .collect()
    }

    /// A delegating wrapper that hides its inner fault's inline lane kind
    /// and only exposes the boxed lane form — the external-fault escape
    /// hatch, as a test double.
    #[derive(Debug)]
    struct BoxedOnly(Box<dyn Fault>);

    impl Fault for BoxedOnly {
        fn name(&self) -> String {
            self.0.name()
        }
        fn kind(&self) -> crate::faults::FaultKind {
            self.0.kind()
        }
        fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
            self.0.write(memory, address, value);
        }
        fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
            self.0.read(memory, address)
        }
        fn involved_addresses(&self) -> Option<Vec<Address>> {
            self.0.involved_addresses()
        }
        fn lane_form(&self) -> Option<Box<dyn LaneFault>> {
            self.0.lane_form()
        }
    }

    #[test]
    fn plan_groups_the_standard_library_into_one_cohort() {
        let organization = org();
        let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        let faults = standard_fault_list(&organization);
        let plan = FaultBatch::plan(&walk, &faults);
        // Every standard fault — including the stuck-open family — has an
        // inline lane kind, and the list fits into one 64-lane cohort.
        assert_eq!(plan.fault_count(), faults.len());
        assert_eq!(plan.lane_fault_count(), faults.len());
        assert_eq!(plan.cohorts().len(), 1);
        assert_eq!(plan.cohorts()[0].len(), faults.len());
        assert!(!plan.cohorts()[0].is_empty());
        assert!(matches!(plan.cohorts()[0], Cohort::Lanes(_)));
    }

    #[test]
    fn plan_splits_at_sixty_four_lanes() {
        let organization = ArrayOrganization::new(16, 8).unwrap();
        let walk = MarchWalk::new(&library::mats_plus(), &WordLineAfterWordLine, &organization);
        for (count, expected) in [
            (1usize, vec![1]),
            (63, vec![63]),
            (64, vec![64]),
            (65, vec![64, 1]),
        ] {
            let faults = saf_list(count as u32);
            let plan = FaultBatch::plan(&walk, &faults);
            let sizes: Vec<usize> = plan.cohorts().iter().map(Cohort::len).collect();
            assert_eq!(sizes, expected, "count {count}");
        }
    }

    #[test]
    fn non_locality_safe_walks_plan_serial_singletons() {
        let organization = org();
        let reads_first = MarchTest::new(
            "reads-first",
            vec![MarchElement::ascending(vec![MarchOp::R1])],
        );
        let walk = MarchWalk::new(&reads_first, &WordLineAfterWordLine, &organization);
        assert!(!walk.locality_safe());
        let faults = saf_list(4);
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.lane_fault_count(), 0);
        assert_eq!(plan.cohorts().len(), 4);
        assert!(plan
            .cohorts()
            .iter()
            .all(|cohort| matches!(cohort, Cohort::Serial(_))));
        // The serial fallback still yields outcomes in list order.
        let outcomes = sweep_batched(&walk, &faults, false, DetectionMode::Full, 1);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[3].fault_name, "SAF0@3");
    }

    #[test]
    fn faults_without_a_lane_form_fall_back_to_the_serial_path() {
        /// A fault that keeps the default `lane_kind`/`lane_form` of
        /// `None`.
        #[derive(Debug)]
        struct Opaque;
        impl Fault for Opaque {
            fn name(&self) -> String {
                "OPAQUE".into()
            }
            fn kind(&self) -> crate::faults::FaultKind {
                crate::faults::FaultKind::StuckAt
            }
            fn write(&mut self, memory: &mut GoodMemory, address: Address, _value: bool) {
                memory.set(address, true);
            }
            fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
                memory.get(address)
            }
        }
        let organization = org();
        let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        let mut faults = saf_list(2);
        faults.insert(1, Box::new(|| Box::new(Opaque)));
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.lane_fault_count(), 2);
        assert_eq!(
            plan.cohorts().len(),
            2,
            "one serial singleton + one lane cohort"
        );
        let outcomes = sweep_batched(&walk, &faults, false, DetectionMode::FirstMismatch, 1);
        assert_eq!(outcomes[1].fault_name, "OPAQUE");
        assert!(outcomes[1].detected, "stuck-at-1-everything is detected");
    }

    #[test]
    fn boxed_escape_hatch_faults_ride_boxed_cohorts_with_identical_results() {
        // Faults that only expose the boxed lane form (external types)
        // batch into `Cohort::BoxedLanes` and produce outcomes identical
        // to the same faults riding inline enum cohorts — serial and
        // parallel.
        let organization = ArrayOrganization::new(8, 8).unwrap();
        let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        let inline: Vec<FaultFactory> = standard_fault_list(&organization);
        let boxed: Vec<FaultFactory> = standard_fault_list(&organization)
            .into_iter()
            .map(|factory| {
                let wrapped: FaultFactory = Box::new(move || Box::new(BoxedOnly(factory())));
                wrapped
            })
            .collect();
        let plan = FaultBatch::plan(&walk, &boxed);
        assert_eq!(plan.lane_fault_count(), boxed.len());
        assert!(plan
            .cohorts()
            .iter()
            .all(|cohort| matches!(cohort, Cohort::BoxedLanes(_))));
        for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
            let reference = sweep_batched(&walk, &inline, false, mode, 1);
            for threads in [1, 4] {
                let via_boxed = sweep_batched(&walk, &boxed, false, mode, threads);
                assert_eq!(reference, via_boxed, "{mode:?} threads={threads}");
            }
        }
    }

    #[test]
    fn address_aware_packing_clusters_shared_victims_and_never_loses_to_greedy() {
        use crate::faultgen::FaultGen;

        let organization = ArrayOrganization::new(16, 16).unwrap();
        let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        // Overlap-heavy and shuffled: the worst case for list-order
        // grouping, the best for address clustering.
        let mut gen = FaultGen::new(organization, 0xC0_FFEE);
        let mut faults = gen.overlapping_clusters(40, 2, 1);
        gen.shuffle(&mut faults);
        let greedy = FaultBatch::plan_with(&walk, &faults, CohortPlanner::ListOrderGreedy);
        let packed = FaultBatch::plan_with(&walk, &faults, CohortPlanner::AddressAware);
        assert_eq!(greedy.planner(), CohortPlanner::ListOrderGreedy);
        assert_eq!(packed.planner(), CohortPlanner::AddressAware);
        assert_eq!(packed.fault_count(), greedy.fault_count());
        assert_eq!(packed.lane_fault_count(), greedy.lane_fault_count());
        assert!(
            packed.merged_schedule_steps() < greedy.merged_schedule_steps(),
            "packed {} must beat greedy {} on an overlap-heavy shuffle",
            packed.merged_schedule_steps(),
            greedy.merged_schedule_steps()
        );
        // Same results either way, in fault-list order.
        for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
            let a = sweep_batched_with(&walk, &faults, false, mode, 1, CohortPlanner::AddressAware);
            let b = sweep_batched_with(
                &walk,
                &faults,
                false,
                mode,
                1,
                CohortPlanner::ListOrderGreedy,
            );
            assert_eq!(a, b, "{mode:?}");
        }
    }

    #[test]
    fn schedule_steps_count_the_planned_dispatch_exactly() {
        // Two SAFs on the same victim + one on another cell: one cohort,
        // union of two addresses.
        let organization = org();
        let walk = MarchWalk::new(&library::mats_plus(), &WordLineAfterWordLine, &organization);
        let victim_steps = walk.steps_touching(Address::new(3)).len() as u64;
        let other_steps = walk.steps_touching(Address::new(7)).len() as u64;
        let faults: Vec<FaultFactory> = vec![
            Box::new(|| Box::new(StuckAtFault::new(Address::new(3), false))),
            Box::new(|| Box::new(StuckAtFault::new(Address::new(3), true))),
            Box::new(|| Box::new(StuckAtFault::new(Address::new(7), true))),
        ];
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.cohorts().len(), 1);
        assert_eq!(plan.merged_schedule_steps(), victim_steps + other_steps);
    }

    #[test]
    fn lane_forms_exceeding_the_address_budget_fall_back_to_the_serial_path() {
        use crate::executor::COHORT_ADDRESS_BUDGET;
        use crate::memory::LaneMemory;

        /// A fault whose lane form claims more involved addresses than
        /// one cohort may span — the planner must not hand it to the
        /// kernel as a lane cohort.
        #[derive(Debug, Clone, Copy)]
        struct WideFault;
        impl Fault for WideFault {
            fn name(&self) -> String {
                "WIDE".into()
            }
            fn kind(&self) -> crate::faults::FaultKind {
                crate::faults::FaultKind::StuckAt
            }
            fn write(&mut self, memory: &mut GoodMemory, address: Address, _value: bool) {
                memory.set(address, true);
            }
            fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
                memory.get(address)
            }
            fn lane_form(&self) -> Option<Box<dyn LaneFault>> {
                Some(Box::new(*self))
            }
        }
        impl LaneFault for WideFault {
            fn involved(&self) -> Vec<Address> {
                (0..COHORT_ADDRESS_BUDGET as u32 + 1)
                    .map(Address::new)
                    .collect()
            }
            fn lane_write(
                &mut self,
                memory: &mut LaneMemory,
                lane: u32,
                address: Address,
                _value: bool,
            ) {
                memory.set_lane(address, lane, true);
            }
            fn lane_read(
                &mut self,
                memory: &mut LaneMemory,
                lane: u32,
                address: Address,
                _sensed: bool,
            ) -> bool {
                memory.get_lane(address, lane)
            }
        }
        let organization = ArrayOrganization::new(32, 16).unwrap();
        let walk = MarchWalk::new(&library::mats_plus(), &WordLineAfterWordLine, &organization);
        let mut faults = saf_list(2);
        faults.insert(1, Box::new(|| Box::new(WideFault)));
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.lane_fault_count(), 2, "the wide fault runs serially");
        assert!(plan
            .cohorts()
            .iter()
            .any(|cohort| matches!(cohort, Cohort::Serial(1))));
        // The sweep still completes (through the per-fault path) and
        // keeps fault-list order.
        let outcomes = sweep_batched(&walk, &faults, false, DetectionMode::Full, 1);
        assert_eq!(outcomes[1].fault_name, "WIDE");
        assert!(outcomes[1].detected, "stuck-at-1-everything is detected");
    }

    #[test]
    fn batched_sweep_is_identical_serial_and_parallel() {
        let organization = org();
        let walk = MarchWalk::new(
            &library::march_c_minus(),
            &WordLineAfterWordLine,
            &organization,
        );
        let faults = standard_fault_list(&organization);
        for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
            let serial = sweep_batched(&walk, &faults, false, mode, 1);
            let parallel = sweep_batched(&walk, &faults, false, mode, 8);
            assert_eq!(serial, parallel, "{mode:?}");
        }
    }
}
