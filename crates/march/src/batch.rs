//! Lane-batched multi-fault simulation: the [`FaultBatch`] planner and
//! cohort sweep driver.
//!
//! The per-fault kernel ([`crate::fault_sim::simulate_fault_on_walk`])
//! pays one walk dispatch — and one scratch-memory refill proportional to
//! the array capacity — per injected fault. The bit-packed store already
//! holds sixty-four cells per word, and the batched backend turns that
//! around: sixty-four *independent* faults ride one walk by giving each
//! bit lane of a [`LaneMemory`] its own faulty universe
//! ([`crate::executor::run_march_lanes`]).
//!
//! [`FaultBatch::plan_with`] partitions a fault list into dispatchable
//! [`Cohort`]s under these rules:
//!
//! * a fault joins a lane cohort when the walk is
//!   [`MarchWalk::locality_safe`] and the fault provides a
//!   [`Fault::lane_form`] — its behaviour confined to the lane form's
//!   involved addresses;
//! * lane cohorts close at [`LaneMemory::LANES`] (64) members and their
//!   involved-step slices are merged into one dispatch schedule by the
//!   cohort kernel;
//! * everything else (no lane form, or a non-locality-safe walk) becomes
//!   a serial singleton that runs the per-fault golden path.
//!
//! *Which* faults share a cohort is the [`CohortPlanner`]'s choice, and
//! it decides how much walk each cohort dispatches: a cohort's schedule
//! is the union of its members' involved-step slices, so packing faults
//! that **share addresses** into the same cohort shrinks the union. The
//! default [`CohortPlanner::AddressAware`] packer clusters by involved
//! addresses (and never plans a worse total schedule than list order —
//! it keeps whichever grouping dispatches fewer steps);
//! [`CohortPlanner::ListOrderGreedy`] is the PR 3 baseline, kept for
//! comparison benchmarks. On the 48-fault standard list the two coincide
//! (one cohort either way); on dense generated populations
//! ([`crate::faultgen`]) the address-aware packing is what keeps the
//! merged schedules — and thus the sweep cost — proportional to the
//! population's address footprint instead of its shuffle order.
//!
//! Cohort membership never changes *results*: lanes are independent
//! universes and [`sweep_batched`] reassembles outcomes in fault-list
//! order, so batched sweeps are byte-identical to per-fault ones under
//! every planner (the randomized differential harness in
//! `tests/dense_population_differential.rs` proves it seed by seed).

use sram_model::address::Address;

use crate::executor::{run_march_lanes, MarchWalk};
use crate::fault_sim::{simulate_fault_on_walk, DetectionMode, FaultSimOutcome};
use crate::faults::{Fault, FaultFactory, LaneFault};
use crate::memory::{GoodMemory, LaneMemory};
use crate::parallel::par_chunk_flat_map_balanced;

/// One unit of sweep work produced by the [`FaultBatch`] planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cohort {
    /// Up to [`LaneMemory::LANES`] lane-compatible faults simulated in one
    /// walk dispatch; the values are indices into the planned fault list,
    /// and each fault's lane is its position in the vector.
    Lanes(Vec<usize>),
    /// A fault that must run the per-fault path: its index in the planned
    /// fault list.
    Serial(usize),
}

impl Cohort {
    /// Number of faults this cohort simulates.
    pub fn len(&self) -> usize {
        match self {
            Cohort::Lanes(indices) => indices.len(),
            Cohort::Serial(_) => 1,
        }
    }

    /// `true` when the cohort simulates no faults (never produced by the
    /// planner).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The cohort-grouping strategy of a [`FaultBatch`] plan.
///
/// Every planner obeys the hard rules (lane-capable faults only, cohorts
/// close at [`LaneMemory::LANES`] members, each fault in exactly one
/// cohort); they differ only in *which* lane-capable faults share a
/// dispatch, which decides each cohort's merged-schedule size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CohortPlanner {
    /// Lane-capable faults are chunked in fault-list order — the PR 3
    /// baseline the address-aware packer is measured against.
    ListOrderGreedy,
    /// Lane-capable faults are sorted by their involved-address
    /// signature before chunking, so faults sharing victims (or sitting
    /// on the same cells) land in the same cohort and their involved-step
    /// slices deduplicate inside the union. The packer then keeps
    /// whichever grouping — clustered or list-order — yields the smaller
    /// total merged schedule, so it is never worse than the greedy
    /// baseline. The default.
    #[default]
    AddressAware,
}

/// A fault list partitioned into ≤64-lane cohorts for one walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultBatch {
    cohorts: Vec<Cohort>,
    faults: usize,
    planner: CohortPlanner,
    schedule_steps: u64,
}

/// Total walk steps the union of the given involved sets dispatches:
/// per-address step counts summed over the deduplicated union.
fn union_schedule_steps(walk: &MarchWalk, sets: &[&[Address]]) -> u64 {
    let mut union: Vec<Address> = sets.iter().flat_map(|set| set.iter().copied()).collect();
    union.sort_unstable();
    union.dedup();
    union
        .iter()
        .map(|&address| walk.steps_touching(address).len() as u64)
        .sum()
}

/// One probed fault: the instance, its lane form (when the walk admits
/// one) and the lane form's sorted involved addresses, each paired with
/// its walk step count. Probing happens in fault-list order, once, and
/// serves both planning and the serial sweep — re-instantiating 100k
/// faults per phase (and re-reading the walk's cold CSR offsets per
/// grouping evaluation) is measurable at dense-population scale.
struct Probe {
    /// `None` once a serial singleton consumed the instance (its outcome
    /// is then parked, name included, so the probe is never read again).
    fault: Option<Box<dyn Fault>>,
    lane: Option<Box<dyn LaneFault>>,
    /// `(address, steps touching it)`, ascending by address.
    involved: Vec<(u32, u32)>,
}

/// Sequentially probes every factory of `faults` over `walk`.
fn probe_faults(walk: &MarchWalk, faults: &[FaultFactory]) -> Vec<Probe> {
    let locality_safe = walk.locality_safe();
    faults
        .iter()
        .map(|factory| {
            let fault = factory();
            let lane = if locality_safe {
                fault.lane_form()
            } else {
                None
            };
            let mut addresses = lane
                .as_ref()
                .map(|lane| lane.involved())
                .unwrap_or_default();
            addresses.sort_unstable();
            addresses.dedup();
            let involved = addresses
                .into_iter()
                .map(|address| (address.value(), walk.steps_touching(address).len() as u32))
                .collect();
            Probe {
                fault: Some(fault),
                lane,
                involved,
            }
        })
        .collect()
}

impl FaultBatch {
    /// Plans the cohorts of `faults` over `walk` with the default
    /// [`CohortPlanner::AddressAware`] packer. Planning instantiates one
    /// probe fault per factory to query its lane form and involved
    /// addresses.
    pub fn plan(walk: &MarchWalk, faults: &[FaultFactory]) -> Self {
        Self::plan_with(walk, faults, CohortPlanner::default())
    }

    /// Plans the cohorts of `faults` over `walk` under an explicit
    /// `planner` (see the module docs for the grouping rules).
    pub fn plan_with(walk: &MarchWalk, faults: &[FaultFactory], planner: CohortPlanner) -> Self {
        Self::plan_probed(walk, &probe_faults(walk, faults), planner)
    }

    /// Plans from already-probed faults — the shared core of
    /// [`FaultBatch::plan_with`] and the serial sweep, which probes once
    /// and reuses the instances for execution.
    fn plan_probed(walk: &MarchWalk, probes: &[Probe], planner: CohortPlanner) -> Self {
        let locality_safe = walk.locality_safe();
        let mut lane_indices: Vec<usize> = Vec::new();
        let mut involved: Vec<&[(u32, u32)]> = Vec::new();
        let mut serial: Vec<usize> = Vec::new();
        let mut serial_steps = 0u64;
        for (index, probe) in probes.iter().enumerate() {
            // A lane form whose involved set alone exceeds the kernel's
            // address budget can never share (or even fill) a cohort the
            // kernel would accept — it runs the per-fault path instead.
            if probe.lane.is_some()
                && probe.involved.len() <= crate::executor::COHORT_ADDRESS_BUDGET
            {
                lane_indices.push(index);
                involved.push(&probe.involved);
            } else {
                let fault = probe.fault.as_ref().expect("fresh probes hold their fault");
                serial_steps += match fault.involved_addresses().filter(|_| locality_safe) {
                    Some(addresses) => union_schedule_steps(walk, &[&addresses]),
                    None => walk.len() as u64,
                };
                serial.push(index);
            }
        }

        // A grouping is a partition of positions into `lane_indices`;
        // its cost is the total merged schedule its cohorts dispatch,
        // computed from the probe-cached per-address step counts (no
        // walk lookups) with one scratch buffer for the unions.
        let mut scratch: Vec<(u32, u32)> = Vec::new();
        let mut grouping_steps = |grouping: &[Vec<usize>]| -> u64 {
            grouping
                .iter()
                .map(|members| {
                    scratch.clear();
                    for &position in members {
                        scratch.extend_from_slice(involved[position]);
                    }
                    scratch.sort_unstable();
                    scratch.dedup_by_key(|entry| entry.0);
                    scratch
                        .iter()
                        .map(|&(_, steps)| u64::from(steps))
                        .sum::<u64>()
                })
                .sum()
        };
        // Cohorts close at 64 lanes or when their summed involved sets
        // (an upper bound on the union size) would exceed the kernel's
        // address budget — today's ≤2-address faults never trigger the
        // latter, but the planner must not hand the kernel a cohort it
        // would reject.
        let chunked = |positions: &[usize]| -> Vec<Vec<usize>> {
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut pending: Vec<usize> = Vec::new();
            let mut pending_addresses = 0usize;
            for &position in positions {
                let addresses = involved[position].len();
                if !pending.is_empty()
                    && (pending.len() == LaneMemory::LANES
                        || pending_addresses + addresses > crate::executor::COHORT_ADDRESS_BUDGET)
                {
                    groups.push(std::mem::take(&mut pending));
                    pending_addresses = 0;
                }
                pending.push(position);
                pending_addresses += addresses;
            }
            if !pending.is_empty() {
                groups.push(pending);
            }
            groups
        };

        let list_order: Vec<usize> = (0..lane_indices.len()).collect();
        let greedy = chunked(&list_order);
        let greedy_steps = grouping_steps(&greedy);
        let (grouping, lane_steps) = match planner {
            CohortPlanner::ListOrderGreedy => (greedy, greedy_steps),
            CohortPlanner::AddressAware => {
                // Cluster by involved-address signature: faults on the
                // same cells sort adjacently (ties broken by list
                // position for determinism), so chunking the sorted
                // order packs overlapping faults into shared cohorts.
                // The signature is packed into one u64 (first two
                // involved addresses — involved sets rarely exceed two)
                // so sorting a 100k-fault population compares integers
                // instead of chasing `Vec<Address>` allocations.
                let mut keyed: Vec<(u64, u32)> = involved
                    .iter()
                    .enumerate()
                    .map(|(position, set)| {
                        let first = set.first().map_or(u32::MAX, |entry| entry.0);
                        let second = set.get(1).map_or(u32::MAX, |entry| entry.0);
                        (u64::from(first) << 32 | u64::from(second), position as u32)
                    })
                    .collect();
                keyed.sort_unstable();
                let clustered: Vec<usize> = keyed
                    .into_iter()
                    .map(|(_, position)| position as usize)
                    .collect();
                drop(list_order);
                let packed = chunked(&clustered);
                let packed_steps = grouping_steps(&packed);
                // Keep whichever grouping dispatches less walk: the
                // packer is never worse than the greedy baseline.
                if packed_steps <= greedy_steps {
                    (packed, packed_steps)
                } else {
                    (greedy, greedy_steps)
                }
            }
        };

        let mut cohorts: Vec<Cohort> = grouping
            .into_iter()
            .map(|members| {
                Cohort::Lanes(
                    members
                        .into_iter()
                        .map(|position| lane_indices[position])
                        .collect(),
                )
            })
            .collect();
        cohorts.extend(serial.into_iter().map(Cohort::Serial));
        Self {
            cohorts,
            faults: probes.len(),
            planner,
            schedule_steps: lane_steps + serial_steps,
        }
    }

    /// The planned cohorts: lane cohorts first (in the planner's packing
    /// order), then the serial singletons in fault-list order.
    pub fn cohorts(&self) -> &[Cohort] {
        &self.cohorts
    }

    /// The planner that produced this plan.
    pub fn planner(&self) -> CohortPlanner {
        self.planner
    }

    /// Total walk steps the plan dispatches: each lane cohort's merged
    /// (deduplicated) involved-step schedule plus each serial singleton's
    /// filtered slice — the metric the address-aware packer minimises,
    /// and the `speedup_packed_schedule` ratio the dense benchmark
    /// tracks against the greedy baseline.
    pub fn merged_schedule_steps(&self) -> u64 {
        self.schedule_steps
    }

    /// Number of faults the plan covers.
    pub fn fault_count(&self) -> usize {
        self.faults
    }

    /// Number of faults that ride lane cohorts (the rest run serially).
    pub fn lane_fault_count(&self) -> usize {
        self.cohorts
            .iter()
            .map(|cohort| match cohort {
                Cohort::Lanes(indices) => indices.len(),
                Cohort::Serial(_) => 0,
            })
            .sum()
    }
}

/// Simulates every fault in `faults` over `walk` through the lane-batched
/// backend with the default [`CohortPlanner::AddressAware`] packer,
/// returning outcomes in fault-list order. See [`sweep_batched_with`].
pub fn sweep_batched(
    walk: &MarchWalk,
    faults: &[FaultFactory],
    background: bool,
    mode: DetectionMode,
    threads: usize,
) -> Vec<FaultSimOutcome> {
    sweep_batched_with(
        walk,
        faults,
        background,
        mode,
        threads,
        CohortPlanner::default(),
    )
}

/// Simulates every fault in `faults` over `walk` through the lane-batched
/// backend under an explicit cohort `planner`, returning outcomes in
/// fault-list order.
///
/// Every fault is probed exactly once, in fault-list order; the plan is
/// built from the probes and the cohorts execute off the probed
/// instances — serially, or fanned out across `threads` worker threads
/// with whole cohorts as the unit of work, load-balanced because
/// generated populations produce cohorts of very uneven cost. Only two
/// flat detection arrays take scattered writes; outcomes are assembled
/// in one sequential list-order pass, so the result is identical to the
/// per-fault path regardless of scheduling or planner. (Dense
/// populations make the naive structure — instantiate per phase, scatter
/// full outcome structs — measurably memory-bound.)
pub fn sweep_batched_with(
    walk: &MarchWalk,
    faults: &[FaultFactory],
    background: bool,
    mode: DetectionMode,
    threads: usize,
    planner: CohortPlanner,
) -> Vec<FaultSimOutcome> {
    let mut probes = probe_faults(walk, faults);
    let plan = FaultBatch::plan_probed(walk, &probes, planner);
    let mut detected = vec![false; probes.len()];
    let mut mismatches = vec![0usize; probes.len()];
    // Serial singletons are rare; their ready-made outcomes park here,
    // in ascending fault order (the planner appends them in list order,
    // and the parallel fan-out preserves input order).
    let mut singleton: Vec<(usize, FaultSimOutcome)> = Vec::new();
    if threads <= 1 {
        let mut scratch: Option<GoodMemory> = None;
        for cohort in plan.cohorts() {
            match cohort {
                Cohort::Serial(index) => {
                    let scratch = scratch.get_or_insert_with(|| GoodMemory::new(walk.capacity()));
                    let fault = probes[*index].fault.take().expect("probe holds its fault");
                    singleton.push((
                        *index,
                        simulate_fault_on_walk(walk, scratch, fault, background, mode),
                    ));
                }
                Cohort::Lanes(indices) => {
                    let mut lanes = take_lane_forms(&mut probes, indices);
                    let detections = run_march_lanes(walk, &mut lanes, background, mode);
                    for (&index, detection) in indices.iter().zip(&detections) {
                        detected[index] = detection.detected;
                        mismatches[index] = detection.mismatches;
                    }
                }
            }
        }
    } else {
        // Workers consume the probed lane forms through per-cohort
        // mutexes (each locked exactly once), so the parallel path pays
        // the same single probe pass as the serial one; singletons
        // re-instantiate from their `Sync` factories inside the worker.
        enum Work<'a> {
            Lanes {
                indices: &'a [usize],
                lanes: Vec<Box<dyn LaneFault>>,
            },
            Serial(usize),
        }
        enum Record {
            Lane { detected: bool, mismatches: usize },
            Singleton(FaultSimOutcome),
        }
        let work: Vec<std::sync::Mutex<Work>> = plan
            .cohorts()
            .iter()
            .map(|cohort| {
                std::sync::Mutex::new(match cohort {
                    Cohort::Lanes(indices) => Work::Lanes {
                        indices,
                        lanes: take_lane_forms(&mut probes, indices),
                    },
                    Cohort::Serial(index) => Work::Serial(*index),
                })
            })
            .collect();
        let tagged = par_chunk_flat_map_balanced(&work, threads, |chunk| {
            let mut scratch: Option<GoodMemory> = None;
            let mut records = Vec::new();
            for item in chunk {
                let mut item = item.lock().expect("cohort work poisoned");
                match &mut *item {
                    Work::Lanes { indices, lanes } => {
                        let detections = run_march_lanes(walk, lanes, background, mode);
                        records.extend(indices.iter().zip(detections).map(
                            |(&index, detection)| {
                                (
                                    index,
                                    Record::Lane {
                                        detected: detection.detected,
                                        mismatches: detection.mismatches,
                                    },
                                )
                            },
                        ));
                    }
                    Work::Serial(index) => {
                        let scratch =
                            scratch.get_or_insert_with(|| GoodMemory::new(walk.capacity()));
                        let outcome = simulate_fault_on_walk(
                            walk,
                            scratch,
                            faults[*index](),
                            background,
                            mode,
                        );
                        records.push((*index, Record::Singleton(outcome)));
                    }
                }
            }
            records
        });
        for (index, record) in tagged {
            match record {
                Record::Lane {
                    detected: hit,
                    mismatches: count,
                } => {
                    detected[index] = hit;
                    mismatches[index] = count;
                }
                Record::Singleton(outcome) => singleton.push((index, outcome)),
            }
        }
    }
    let mut singletons = singleton.into_iter().peekable();
    probes
        .iter()
        .enumerate()
        .map(|(index, probe)| {
            if singletons.peek().is_some_and(|(i, _)| *i == index) {
                return singletons.next().expect("peeked").1;
            }
            let fault = probe.fault.as_ref().expect("lane probes keep their fault");
            FaultSimOutcome {
                fault_name: fault.name(),
                fault_kind: fault.kind(),
                test_name: walk.test_name().to_string(),
                order_name: walk.order_name().to_string(),
                detected: detected[index],
                mismatches: mismatches[index],
            }
        })
        .collect()
}

/// Moves the lane forms of a cohort's members out of their probes.
fn take_lane_forms(probes: &mut [Probe], indices: &[usize]) -> Vec<Box<dyn LaneFault>> {
    indices
        .iter()
        .map(|&index| {
            probes[index]
                .lane
                .take()
                .expect("planned lane faults have lane forms")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_order::WordLineAfterWordLine;
    use crate::algorithm::MarchTest;
    use crate::element::MarchElement;
    use crate::faults::{standard_fault_list, StuckAtFault};
    use crate::library;
    use crate::operation::MarchOp;
    use sram_model::address::Address;
    use sram_model::config::ArrayOrganization;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 4).unwrap()
    }

    fn saf_list(count: u32) -> Vec<FaultFactory> {
        (0..count)
            .map(|v| {
                let factory: FaultFactory =
                    Box::new(move || Box::new(StuckAtFault::new(Address::new(v), v % 2 == 0)));
                factory
            })
            .collect()
    }

    #[test]
    fn plan_groups_the_standard_library_into_one_cohort() {
        let organization = org();
        let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        let faults = standard_fault_list(&organization);
        let plan = FaultBatch::plan(&walk, &faults);
        // Every standard fault — including the stuck-open family — has a
        // lane form, and the list fits into one 64-lane cohort.
        assert_eq!(plan.fault_count(), faults.len());
        assert_eq!(plan.lane_fault_count(), faults.len());
        assert_eq!(plan.cohorts().len(), 1);
        assert_eq!(plan.cohorts()[0].len(), faults.len());
        assert!(!plan.cohorts()[0].is_empty());
    }

    #[test]
    fn plan_splits_at_sixty_four_lanes() {
        let organization = ArrayOrganization::new(16, 8).unwrap();
        let walk = MarchWalk::new(&library::mats_plus(), &WordLineAfterWordLine, &organization);
        for (count, expected) in [
            (1usize, vec![1]),
            (63, vec![63]),
            (64, vec![64]),
            (65, vec![64, 1]),
        ] {
            let faults = saf_list(count as u32);
            let plan = FaultBatch::plan(&walk, &faults);
            let sizes: Vec<usize> = plan.cohorts().iter().map(Cohort::len).collect();
            assert_eq!(sizes, expected, "count {count}");
        }
    }

    #[test]
    fn non_locality_safe_walks_plan_serial_singletons() {
        let organization = org();
        let reads_first = MarchTest::new(
            "reads-first",
            vec![MarchElement::ascending(vec![MarchOp::R1])],
        );
        let walk = MarchWalk::new(&reads_first, &WordLineAfterWordLine, &organization);
        assert!(!walk.locality_safe());
        let faults = saf_list(4);
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.lane_fault_count(), 0);
        assert_eq!(plan.cohorts().len(), 4);
        assert!(plan
            .cohorts()
            .iter()
            .all(|cohort| matches!(cohort, Cohort::Serial(_))));
        // The serial fallback still yields outcomes in list order.
        let outcomes = sweep_batched(&walk, &faults, false, DetectionMode::Full, 1);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(outcomes[3].fault_name, "SAF0@3");
    }

    #[test]
    fn faults_without_a_lane_form_fall_back_to_the_serial_path() {
        /// A fault that keeps the default `lane_form` of `None`.
        #[derive(Debug)]
        struct Opaque;
        impl Fault for Opaque {
            fn name(&self) -> String {
                "OPAQUE".into()
            }
            fn kind(&self) -> crate::faults::FaultKind {
                crate::faults::FaultKind::StuckAt
            }
            fn write(&mut self, memory: &mut GoodMemory, address: Address, _value: bool) {
                memory.set(address, true);
            }
            fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
                memory.get(address)
            }
        }
        let organization = org();
        let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        let mut faults = saf_list(2);
        faults.insert(1, Box::new(|| Box::new(Opaque)));
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.lane_fault_count(), 2);
        assert_eq!(
            plan.cohorts().len(),
            2,
            "one serial singleton + one lane cohort"
        );
        let outcomes = sweep_batched(&walk, &faults, false, DetectionMode::FirstMismatch, 1);
        assert_eq!(outcomes[1].fault_name, "OPAQUE");
        assert!(outcomes[1].detected, "stuck-at-1-everything is detected");
    }

    #[test]
    fn address_aware_packing_clusters_shared_victims_and_never_loses_to_greedy() {
        use crate::faultgen::FaultGen;

        let organization = ArrayOrganization::new(16, 16).unwrap();
        let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        // Overlap-heavy and shuffled: the worst case for list-order
        // grouping, the best for address clustering.
        let mut gen = FaultGen::new(organization, 0xC0_FFEE);
        let mut faults = gen.overlapping_clusters(40, 2, 1);
        gen.shuffle(&mut faults);
        let greedy = FaultBatch::plan_with(&walk, &faults, CohortPlanner::ListOrderGreedy);
        let packed = FaultBatch::plan_with(&walk, &faults, CohortPlanner::AddressAware);
        assert_eq!(greedy.planner(), CohortPlanner::ListOrderGreedy);
        assert_eq!(packed.planner(), CohortPlanner::AddressAware);
        assert_eq!(packed.fault_count(), greedy.fault_count());
        assert_eq!(packed.lane_fault_count(), greedy.lane_fault_count());
        assert!(
            packed.merged_schedule_steps() < greedy.merged_schedule_steps(),
            "packed {} must beat greedy {} on an overlap-heavy shuffle",
            packed.merged_schedule_steps(),
            greedy.merged_schedule_steps()
        );
        // Same results either way, in fault-list order.
        for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
            let a = sweep_batched_with(&walk, &faults, false, mode, 1, CohortPlanner::AddressAware);
            let b = sweep_batched_with(
                &walk,
                &faults,
                false,
                mode,
                1,
                CohortPlanner::ListOrderGreedy,
            );
            assert_eq!(a, b, "{mode:?}");
        }
    }

    #[test]
    fn schedule_steps_count_the_planned_dispatch_exactly() {
        // Two SAFs on the same victim + one on another cell: one cohort,
        // union of two addresses.
        let organization = org();
        let walk = MarchWalk::new(&library::mats_plus(), &WordLineAfterWordLine, &organization);
        let victim_steps = walk.steps_touching(Address::new(3)).len() as u64;
        let other_steps = walk.steps_touching(Address::new(7)).len() as u64;
        let faults: Vec<FaultFactory> = vec![
            Box::new(|| Box::new(StuckAtFault::new(Address::new(3), false))),
            Box::new(|| Box::new(StuckAtFault::new(Address::new(3), true))),
            Box::new(|| Box::new(StuckAtFault::new(Address::new(7), true))),
        ];
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.cohorts().len(), 1);
        assert_eq!(plan.merged_schedule_steps(), victim_steps + other_steps);
    }

    #[test]
    fn lane_forms_exceeding_the_address_budget_fall_back_to_the_serial_path() {
        use crate::executor::COHORT_ADDRESS_BUDGET;
        use crate::memory::LaneMemory;

        /// A fault whose lane form claims more involved addresses than
        /// one cohort may span — the planner must not hand it to the
        /// kernel as a lane cohort.
        #[derive(Debug, Clone, Copy)]
        struct WideFault;
        impl Fault for WideFault {
            fn name(&self) -> String {
                "WIDE".into()
            }
            fn kind(&self) -> crate::faults::FaultKind {
                crate::faults::FaultKind::StuckAt
            }
            fn write(&mut self, memory: &mut GoodMemory, address: Address, _value: bool) {
                memory.set(address, true);
            }
            fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
                memory.get(address)
            }
            fn lane_form(&self) -> Option<Box<dyn LaneFault>> {
                Some(Box::new(*self))
            }
        }
        impl LaneFault for WideFault {
            fn involved(&self) -> Vec<Address> {
                (0..COHORT_ADDRESS_BUDGET as u32 + 1)
                    .map(Address::new)
                    .collect()
            }
            fn lane_write(
                &mut self,
                memory: &mut LaneMemory,
                lane: u32,
                address: Address,
                _value: bool,
            ) {
                memory.set_lane(address, lane, true);
            }
            fn lane_read(
                &mut self,
                memory: &mut LaneMemory,
                lane: u32,
                address: Address,
                _sensed: bool,
            ) -> bool {
                memory.get_lane(address, lane)
            }
        }
        let organization = ArrayOrganization::new(32, 16).unwrap();
        let walk = MarchWalk::new(&library::mats_plus(), &WordLineAfterWordLine, &organization);
        let mut faults = saf_list(2);
        faults.insert(1, Box::new(|| Box::new(WideFault)));
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.lane_fault_count(), 2, "the wide fault runs serially");
        assert!(plan
            .cohorts()
            .iter()
            .any(|cohort| matches!(cohort, Cohort::Serial(1))));
        // The sweep still completes (through the per-fault path) and
        // keeps fault-list order.
        let outcomes = sweep_batched(&walk, &faults, false, DetectionMode::Full, 1);
        assert_eq!(outcomes[1].fault_name, "WIDE");
        assert!(outcomes[1].detected, "stuck-at-1-everything is detected");
    }

    #[test]
    fn batched_sweep_is_identical_serial_and_parallel() {
        let organization = org();
        let walk = MarchWalk::new(
            &library::march_c_minus(),
            &WordLineAfterWordLine,
            &organization,
        );
        let faults = standard_fault_list(&organization);
        for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
            let serial = sweep_batched(&walk, &faults, false, mode, 1);
            let parallel = sweep_batched(&walk, &faults, false, mode, 8);
            assert_eq!(serial, parallel, "{mode:?}");
        }
    }
}
