//! March operations.
//!
//! Each March element is a short sequence of single-cell operations drawn
//! from four primitives: write `0`, write `1`, read expecting `0`, read
//! expecting `1`. The expected value of a read is part of the operation —
//! a March test knows what every cell must contain at every point of the
//! sequence, which is what makes the comparison-based fault detection of
//! [`crate::executor`] possible.

use std::fmt;

/// One single-cell March operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarchOp {
    /// Write `0` into the cell.
    W0,
    /// Write `1` into the cell.
    W1,
    /// Read the cell, expecting `0`.
    R0,
    /// Read the cell, expecting `1`.
    R1,
}

impl MarchOp {
    /// Returns `true` for read operations.
    pub fn is_read(self) -> bool {
        matches!(self, MarchOp::R0 | MarchOp::R1)
    }

    /// Returns `true` for write operations.
    pub fn is_write(self) -> bool {
        matches!(self, MarchOp::W0 | MarchOp::W1)
    }

    /// The value written by a write operation, `None` for reads.
    pub fn write_value(self) -> Option<bool> {
        match self {
            MarchOp::W0 => Some(false),
            MarchOp::W1 => Some(true),
            _ => None,
        }
    }

    /// The value a read operation expects, `None` for writes.
    pub fn expected_value(self) -> Option<bool> {
        match self {
            MarchOp::R0 => Some(false),
            MarchOp::R1 => Some(true),
            _ => None,
        }
    }

    /// The operation with `0` and `1` swapped — used to apply a test under
    /// the complemented data background (March degree of freedom #5).
    pub fn complemented(self) -> Self {
        match self {
            MarchOp::W0 => MarchOp::W1,
            MarchOp::W1 => MarchOp::W0,
            MarchOp::R0 => MarchOp::R1,
            MarchOp::R1 => MarchOp::R0,
        }
    }

    /// Parses the conventional textual notation (`"w0"`, `"w1"`, `"r0"`,
    /// `"r1"`, case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "w0" => Some(MarchOp::W0),
            "w1" => Some(MarchOp::W1),
            "r0" => Some(MarchOp::R0),
            "r1" => Some(MarchOp::R1),
            _ => None,
        }
    }
}

impl fmt::Display for MarchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MarchOp::W0 => "w0",
            MarchOp::W1 => "w1",
            MarchOp::R0 => "r0",
            MarchOp::R1 => "r1",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_and_values() {
        assert!(MarchOp::R0.is_read());
        assert!(MarchOp::R1.is_read());
        assert!(MarchOp::W0.is_write());
        assert!(MarchOp::W1.is_write());
        assert_eq!(MarchOp::W1.write_value(), Some(true));
        assert_eq!(MarchOp::W0.write_value(), Some(false));
        assert_eq!(MarchOp::R1.write_value(), None);
        assert_eq!(MarchOp::R0.expected_value(), Some(false));
        assert_eq!(MarchOp::R1.expected_value(), Some(true));
        assert_eq!(MarchOp::W0.expected_value(), None);
    }

    #[test]
    fn complement_is_an_involution() {
        for op in [MarchOp::W0, MarchOp::W1, MarchOp::R0, MarchOp::R1] {
            assert_eq!(op.complemented().complemented(), op);
            assert_ne!(op.complemented(), op);
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for op in [MarchOp::W0, MarchOp::W1, MarchOp::R0, MarchOp::R1] {
            assert_eq!(MarchOp::parse(&op.to_string()), Some(op));
        }
        assert_eq!(MarchOp::parse("W1"), Some(MarchOp::W1));
        assert_eq!(MarchOp::parse(" r0 "), Some(MarchOp::R0));
        assert_eq!(MarchOp::parse("x1"), None);
    }
}
