//! Interned, index-based sweep reports.
//!
//! The classic [`CoverageReport`] carries
//! three heap strings per outcome — the fault's instance name plus a fresh
//! copy of the test and order names — which dominates outcome-assembly
//! cost once sweeps reach hundreds of thousands of faults and is pure
//! waste for consumers that only want a digest (campaign journals pin a
//! 64-bit fingerprint, not megabytes of outcomes).
//!
//! This module is the allocation-flat alternative: a sweep builds one
//! [`NameTable`] holding every rendered string exactly once, and each
//! fault's result compresses to a 16-byte [`OutcomeCode`] — a `u32` index
//! into the table, the [`FaultKind`], the detection bit and the mismatch
//! count. The [`InternedSweep`] report offers the same aggregate
//! accessors as `CoverageReport`, a [`digest`](InternedSweep::digest)
//! that is **bit-identical** to [`CoverageReport::digest`] on
//! the same results (the equivalence tests pin this), lazy per-outcome
//! [`Display`](std::fmt::Display) rendering, and a
//! [`materialize`](InternedSweep::materialize) escape hatch producing the
//! classic string-bearing report when a consumer really wants one.
//!
//! Sweeps produce it through
//! [`evaluate_coverage_interned`](crate::coverage::evaluate_coverage_interned),
//! which rides the exact same kernel and planner as the string path — only
//! the final assembly differs.

use std::fmt;

use crate::coverage::CoverageReport;
use crate::fault_sim::FaultSimOutcome;
use crate::faults::FaultKind;
use crate::rng::Fnv1a;

/// An append-only string table: each pushed name gets a dense `u32`
/// index, and the bytes live here exactly once.
///
/// Fault instance names are unique by construction (they embed victim
/// addresses), so the hot path is the no-dedup [`NameTable::push`];
/// [`NameTable::intern`] additionally deduplicates and is meant for the
/// handful of shared names (test, order) a report mentions many times.
///
/// # Examples
///
/// ```
/// use march_test::intern::NameTable;
///
/// let mut names = NameTable::new();
///
/// // `intern` deduplicates: the report's test and order names get one
/// // slot no matter how many outcomes mention them.
/// let test = names.intern("March C-");
/// assert_eq!(names.intern("March C-"), test);
///
/// // `push` is the no-dedup hot path for per-fault instance names,
/// // which are unique by construction.
/// let fault = names.push("SAF0 @ (3,7)".to_string());
/// assert_ne!(fault, test);
/// assert_eq!(names.get(fault), "SAF0 @ (3,7)");
/// assert_eq!(names.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameTable {
    strings: Vec<String>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `name` without looking for duplicates and returns its
    /// index — the hot path for per-fault instance names, which are
    /// unique anyway.
    pub fn push(&mut self, name: String) -> u32 {
        let index = u32::try_from(self.strings.len()).expect("name table indices fit u32");
        self.strings.push(name);
        index
    }

    /// Returns the index of `name`, appending it only if no equal string
    /// is present — for the few names shared across outcomes (test and
    /// order names). Linear scan: the dedup set stays tiny by design.
    pub fn intern(&mut self, name: &str) -> u32 {
        match self.strings.iter().position(|existing| existing == name) {
            Some(index) => index as u32,
            None => self.push(name.to_string()),
        }
    }

    /// The string at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` was not returned by this table.
    pub fn get(&self, index: u32) -> &str {
        &self.strings[index as usize]
    }

    /// Number of stored strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` when the table holds no strings.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// One fault's sweep result in interned form: 16 bytes, no owned
/// strings. The name lives in the sweep's [`NameTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeCode {
    /// Index of the fault's instance name in the sweep's [`NameTable`].
    pub name: u32,
    /// Fault class.
    pub kind: FaultKind,
    /// Whether at least one read mismatched.
    pub detected: bool,
    /// Number of read mismatches observed.
    pub mismatches: u32,
}

/// A coverage sweep report with interned names: the index-based
/// equivalent of [`CoverageReport`], built without the three per-fault
/// string allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InternedSweep {
    test: u32,
    order: u32,
    names: NameTable,
    codes: Vec<OutcomeCode>,
    detected: usize,
}

impl InternedSweep {
    /// Builds a report from interned parts, caching the detection count.
    ///
    /// `test` and `order` must be indices into `names`, as must every
    /// code's `name` (enforced lazily: accessors panic on a dangling
    /// index).
    pub fn new(test: u32, order: u32, names: NameTable, codes: Vec<OutcomeCode>) -> Self {
        let detected = codes.iter().filter(|code| code.detected).count();
        Self {
            test,
            order,
            names,
            codes,
            detected,
        }
    }

    /// Name of the March test evaluated.
    pub fn test_name(&self) -> &str {
        self.names.get(self.test)
    }

    /// Name of the address order used.
    pub fn order_name(&self) -> &str {
        self.names.get(self.order)
    }

    /// The intern table backing this report.
    pub fn names(&self) -> &NameTable {
        &self.names
    }

    /// Per-fault outcome codes, in fault-list order.
    pub fn codes(&self) -> &[OutcomeCode] {
        &self.codes
    }

    /// Total number of faults simulated.
    pub fn total(&self) -> usize {
        self.codes.len()
    }

    /// Number of detected faults (cached — no rescan).
    pub fn detected(&self) -> usize {
        self.detected
    }

    /// Fault coverage as a fraction in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.codes.is_empty() {
            return 0.0;
        }
        self.detected as f64 / self.total() as f64
    }

    /// Total read mismatches across every outcome.
    pub fn total_mismatches(&self) -> u64 {
        self.codes
            .iter()
            .map(|code| u64::from(code.mismatches))
            .sum()
    }

    /// A lazily rendered view of outcome `index`: its
    /// [`Display`](std::fmt::Display) writes straight out of the intern
    /// table, so printing a report entry allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn outcome(&self, index: usize) -> InternedOutcome<'_> {
        InternedOutcome {
            sweep: self,
            code: self.codes[index],
        }
    }

    /// A stable 64-bit digest of the whole report, **bit-identical** to
    /// [`CoverageReport::digest`] of the materialized report: campaign
    /// journals written from interned sweeps verify against journals
    /// written from classic reports and vice versa.
    pub fn digest(&self) -> u64 {
        let mut hasher = Fnv1a::new();
        hasher.write(self.test_name().as_bytes());
        hasher.write_u8(0xFF);
        hasher.write(self.order_name().as_bytes());
        hasher.write_u8(0xFF);
        for code in &self.codes {
            hasher.write(self.names.get(code.name).as_bytes());
            hasher.write_u8(0xFE);
            hasher.write(code.kind.to_string().as_bytes());
            hasher.write_u8(u8::from(code.detected));
            hasher.write_u64(u64::from(code.mismatches));
        }
        hasher.finish()
    }

    /// Expands this report into the classic string-bearing
    /// [`CoverageReport`] — one string allocation per outcome plus the
    /// test/order copies, for consumers that want the old shape. The
    /// result compares equal (and digest-equal) to the report the string
    /// path would have produced for the same sweep.
    pub fn materialize(&self) -> CoverageReport {
        let outcomes = self
            .codes
            .iter()
            .map(|code| FaultSimOutcome {
                fault_name: self.names.get(code.name).to_string(),
                fault_kind: code.kind,
                test_name: self.test_name().to_string(),
                order_name: self.order_name().to_string(),
                detected: code.detected,
                mismatches: code.mismatches as usize,
            })
            .collect();
        CoverageReport::new(self.test_name(), self.order_name(), outcomes)
    }
}

/// One outcome of an [`InternedSweep`], rendered lazily: Display writes
/// `"<name> <kind> detected=<bool> mismatches=<n>"` without allocating.
#[derive(Debug, Clone, Copy)]
pub struct InternedOutcome<'a> {
    sweep: &'a InternedSweep,
    code: OutcomeCode,
}

impl InternedOutcome<'_> {
    /// The outcome's code (indices and counts).
    pub fn code(&self) -> OutcomeCode {
        self.code
    }

    /// The fault's instance name, borrowed from the intern table.
    pub fn name(&self) -> &str {
        self.sweep.names.get(self.code.name)
    }
}

impl fmt::Display for InternedOutcome<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} detected={} mismatches={}",
            self.name(),
            self.code.kind,
            self.code.detected,
            self.code.mismatches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_intern_share_one_table() {
        let mut table = NameTable::new();
        assert!(table.is_empty());
        let a = table.push("SAF1@0".to_string());
        let test = table.intern("March SS");
        let again = table.intern("March SS");
        assert_eq!(test, again, "intern deduplicates");
        assert_ne!(a, test);
        assert_eq!(table.get(a), "SAF1@0");
        assert_eq!(table.get(test), "March SS");
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn lazy_display_renders_without_touching_the_codes() {
        let mut names = NameTable::new();
        let test = names.intern("March SS");
        let order = names.intern("word line after word line");
        let fault = names.push("TF↑@3".to_string());
        let sweep = InternedSweep::new(
            test,
            order,
            names,
            vec![OutcomeCode {
                name: fault,
                kind: FaultKind::Transition,
                detected: true,
                mismatches: 2,
            }],
        );
        assert_eq!(
            sweep.outcome(0).to_string(),
            "TF↑@3 TF detected=true mismatches=2"
        );
        assert_eq!(sweep.outcome(0).name(), "TF↑@3");
        assert_eq!(sweep.detected(), 1);
        assert_eq!(sweep.total(), 1);
        assert_eq!(sweep.total_mismatches(), 2);
        assert_eq!(sweep.test_name(), "March SS");
        assert_eq!(sweep.order_name(), "word line after word line");
    }

    #[test]
    fn empty_sweep_has_zero_coverage() {
        let mut names = NameTable::new();
        let test = names.intern("MATS+");
        let order = names.intern("column major");
        let sweep = InternedSweep::new(test, order, names, Vec::new());
        assert_eq!(sweep.coverage(), 0.0);
        assert_eq!(sweep.total(), 0);
        assert!(sweep.names().len() == 2);
    }
}
