//! Fault-coverage evaluation over a fault list.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sram_model::config::ArrayOrganization;

use crate::address_order::AddressOrder;
use crate::algorithm::MarchTest;
use crate::fault_sim::{simulate_fault, FaultSimOutcome};
use crate::faults::FaultFactory;

/// Coverage of a March test over a fault list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Name of the March test evaluated.
    pub test_name: String,
    /// Name of the address order used.
    pub order_name: String,
    /// Per-fault outcomes, in fault-list order.
    pub outcomes: Vec<FaultSimOutcome>,
}

impl CoverageReport {
    /// Total number of faults simulated.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.detected).count()
    }

    /// Fault coverage as a fraction in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.detected() as f64 / self.total() as f64
    }

    /// The names of the faults this test detected (sorted), used to compare
    /// coverage sets across address orders.
    pub fn detected_fault_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .outcomes
            .iter()
            .filter(|o| o.detected)
            .map(|o| o.fault_name.clone())
            .collect();
        names.sort();
        names
    }

    /// Per-fault-kind `(detected, total)` counts.
    pub fn by_kind(&self) -> BTreeMap<String, (usize, usize)> {
        let mut map: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for outcome in &self.outcomes {
            let entry = map.entry(outcome.fault_kind.to_string()).or_insert((0, 0));
            entry.1 += 1;
            if outcome.detected {
                entry.0 += 1;
            }
        }
        map
    }
}

/// Simulates every fault in `faults` under `test`/`order` and aggregates
/// the outcomes.
pub fn evaluate_coverage(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
) -> CoverageReport {
    let outcomes = faults
        .iter()
        .map(|factory| simulate_fault(test, order, organization, factory()))
        .collect();
    CoverageReport {
        test_name: test.name().to_string(),
        order_name: order.name().to_string(),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_order::WordLineAfterWordLine;
    use crate::faults::standard_fault_list;
    use crate::library;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 4).unwrap()
    }

    #[test]
    fn march_ss_covers_more_than_mats_plus() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        let ss = evaluate_coverage(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
        );
        let mats = evaluate_coverage(
            &library::mats_plus(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
        );
        assert!(ss.coverage() > mats.coverage());
        assert!(ss.coverage() > 0.8, "March SS coverage {}", ss.coverage());
        assert_eq!(ss.total(), faults.len());
        assert!(ss.detected() <= ss.total());
    }

    #[test]
    fn stuck_at_faults_are_fully_covered_by_every_table1_algorithm() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            let report =
                evaluate_coverage(&test, &WordLineAfterWordLine, &organization, &faults);
            let by_kind = report.by_kind();
            let (detected, total) = by_kind["SAF"];
            assert_eq!(detected, total, "{} must detect every SAF", test.name());
        }
    }

    #[test]
    fn report_accessors_are_consistent() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        let report = evaluate_coverage(
            &library::march_c_minus(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
        );
        assert_eq!(report.detected_fault_names().len(), report.detected());
        let kind_total: usize = report.by_kind().values().map(|(_, t)| t).sum();
        assert_eq!(kind_total, report.total());
        assert!(report.coverage() > 0.0 && report.coverage() <= 1.0);
        assert_eq!(report.test_name, "March C-");
    }
}
