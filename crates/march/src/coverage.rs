//! Fault-coverage evaluation over a fault list.
//!
//! [`evaluate_coverage`] is the sweep driver on top of the executor
//! kernel: it precomputes one [`MarchWalk`] per `(test, order,
//! organization)`, reuses one scratch memory per worker across the whole
//! fault list, and — via [`SweepOptions`] — optionally stops each
//! simulation at the first mismatch and fans the work out across threads.
//! By default the sweep rides the lane-batched backend
//! ([`crate::batch`]): compatible faults are grouped into ≤64-lane
//! cohorts that share one walk dispatch each, with the per-fault path
//! kept as the golden reference ([`SweepBackend::PerFault`]). Both
//! backends, serial or parallel, produce **identical** reports: outcomes
//! are kept in fault-list order regardless of scheduling.

use std::collections::BTreeMap;

use sram_model::config::ArrayOrganization;

use crate::address_order::AddressOrder;
use crate::algorithm::MarchTest;
use crate::batch::{sweep_batched_assemble, sweep_batched_with, CohortPlanner};
use crate::executor::MarchWalk;
use crate::fault_sim::{
    simulate_fault_counts_on_walk, simulate_fault_on_walk, DetectionMode, FaultSimOutcome,
};
use crate::faults::{FaultFactory, FaultKind};
use crate::intern::{InternedSweep, NameTable, OutcomeCode};
use crate::memory::GoodMemory;
use crate::parallel::{max_threads, par_chunk_map};
use crate::rng::Fnv1a;

/// Which sweep engine simulates the fault list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepBackend {
    /// The lane-batched backend: compatible faults grouped into ≤64-lane
    /// cohorts by the address-aware packer
    /// ([`CohortPlanner::AddressAware`]), lane forms stored inline as
    /// [`crate::faults::LaneFaultKind`] enum values executed in packed
    /// order (match dispatch, no per-owner pointer chase), one walk
    /// dispatch per cohort, serial fallback for the rest
    /// ([`crate::batch::FaultBatch`]). The default.
    #[default]
    LaneBatched,
    /// The lane-batched backend with the list-order greedy planner
    /// ([`CohortPlanner::ListOrderGreedy`]) — the packing baseline dense
    /// benchmarks compare against. Results are identical to
    /// [`SweepBackend::LaneBatched`]; only the cohort schedules differ.
    LaneBatchedListOrder,
    /// One filtered walk per fault — the golden reference path that
    /// batched sweeps are verified against.
    PerFault,
}

/// Tuning knobs of a coverage sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepOptions {
    /// Initial value of every cell before each simulation.
    pub background: bool,
    /// Detail recorded per fault: [`DetectionMode::Full`] counts every
    /// mismatch, [`DetectionMode::FirstMismatch`] stops at the first one.
    pub mode: DetectionMode,
    /// Fan the work out across threads (whole cohorts per unit under the
    /// batched backend, fault-list chunks under the per-fault one). The
    /// outcome order (and thus the whole report) is identical to a serial
    /// sweep.
    pub parallel: bool,
    /// The sweep engine; [`SweepBackend::LaneBatched`] by default.
    pub backend: SweepBackend,
}

impl SweepOptions {
    /// The throughput configuration for detection-only experiments:
    /// early-exit simulations on the lane-batched backend, parallel
    /// across the cohorts.
    pub fn fast() -> Self {
        Self {
            background: false,
            mode: DetectionMode::FirstMismatch,
            parallel: true,
            backend: SweepBackend::LaneBatched,
        }
    }

    /// The serial per-fault reference configuration: full mismatch
    /// counts, no batching, no threads — the golden path batched sweeps
    /// are tested (and benchmarked) against.
    pub fn golden() -> Self {
        Self {
            background: false,
            mode: DetectionMode::Full,
            parallel: false,
            backend: SweepBackend::PerFault,
        }
    }
}

/// Coverage of a March test over a fault list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    /// Name of the March test evaluated.
    pub test_name: String,
    /// Name of the address order used.
    pub order_name: String,
    /// Per-fault outcomes, in fault-list order.
    outcomes: Vec<FaultSimOutcome>,
    /// Number of detected faults, cached at construction.
    detected: usize,
}

impl CoverageReport {
    /// Builds a report from per-fault outcomes, caching the detection
    /// count so the accessors below are O(1).
    pub fn new(
        test_name: impl Into<String>,
        order_name: impl Into<String>,
        outcomes: Vec<FaultSimOutcome>,
    ) -> Self {
        let detected = outcomes.iter().filter(|o| o.detected).count();
        Self {
            test_name: test_name.into(),
            order_name: order_name.into(),
            outcomes,
            detected,
        }
    }

    /// Per-fault outcomes, in fault-list order.
    pub fn outcomes(&self) -> &[FaultSimOutcome] {
        &self.outcomes
    }

    /// Total number of faults simulated.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of detected faults (cached — no rescan).
    pub fn detected(&self) -> usize {
        self.detected
    }

    /// Fault coverage as a fraction in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.detected as f64 / self.total() as f64
    }

    /// The names of the faults this test detected (sorted), used to compare
    /// coverage sets across address orders. The names are borrowed from the
    /// report — no per-name allocation.
    pub fn detected_fault_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .outcomes
            .iter()
            .filter(|o| o.detected)
            .map(|o| o.fault_name.as_str())
            .collect();
        names.sort_unstable();
        names
    }

    /// Total read mismatches across every outcome.
    pub fn total_mismatches(&self) -> u64 {
        self.outcomes.iter().map(|o| o.mismatches as u64).sum()
    }

    /// A stable 64-bit digest of the whole report: test and order names
    /// plus every outcome's name, kind, detection bit and mismatch count,
    /// absorbed in fault-list order through [`Fnv1a`]. Two reports are
    /// digest-equal exactly when they would compare equal, so campaign
    /// journals can record (and later verify) a fixed-width fingerprint
    /// instead of megabytes of outcomes.
    pub fn digest(&self) -> u64 {
        let mut hasher = Fnv1a::new();
        hasher.write(self.test_name.as_bytes());
        hasher.write_u8(0xFF);
        hasher.write(self.order_name.as_bytes());
        hasher.write_u8(0xFF);
        for outcome in &self.outcomes {
            hasher.write(outcome.fault_name.as_bytes());
            hasher.write_u8(0xFE);
            hasher.write(outcome.fault_kind.to_string().as_bytes());
            hasher.write_u8(u8::from(outcome.detected));
            hasher.write_u64(outcome.mismatches as u64);
        }
        hasher.finish()
    }

    /// Per-fault-kind `(detected, total)` counts.
    pub fn by_kind(&self) -> BTreeMap<String, (usize, usize)> {
        let mut map: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for outcome in &self.outcomes {
            let entry = map.entry(outcome.fault_kind.to_string()).or_insert((0, 0));
            entry.1 += 1;
            if outcome.detected {
                entry.0 += 1;
            }
        }
        map
    }
}

/// Simulates every fault in `faults` over a precomputed `walk`.
///
/// This is the sweep driver. Under the default
/// [`SweepBackend::LaneBatched`] the list is planned into ≤64-lane
/// cohorts that each share one walk dispatch (threads take whole cohorts
/// when `parallel` is set). Under [`SweepBackend::PerFault`] serial
/// sweeps reuse one scratch memory for the entire list and parallel
/// sweeps give each worker thread its own scratch memory and a contiguous
/// chunk of the list. Either way the outcomes are reassembled in
/// fault-list order, so every backend/threading combination yields an
/// identical report.
pub fn evaluate_coverage_on_walk(
    walk: &MarchWalk,
    faults: &[FaultFactory],
    options: SweepOptions,
) -> CoverageReport {
    let threads = if options.parallel { max_threads() } else { 1 };
    let outcomes = match options.backend {
        SweepBackend::LaneBatched | SweepBackend::LaneBatchedListOrder => {
            let planner = match options.backend {
                SweepBackend::LaneBatchedListOrder => CohortPlanner::ListOrderGreedy,
                _ => CohortPlanner::AddressAware,
            };
            sweep_batched_with(
                walk,
                faults,
                options.background,
                options.mode,
                threads,
                planner,
            )
        }
        SweepBackend::PerFault => {
            let sweep_chunk = |chunk: &[FaultFactory]| -> Vec<FaultSimOutcome> {
                let mut scratch = GoodMemory::new(walk.capacity());
                chunk
                    .iter()
                    .map(|factory| {
                        simulate_fault_on_walk(
                            walk,
                            &mut scratch,
                            factory(),
                            options.background,
                            options.mode,
                        )
                    })
                    .collect()
            };
            par_chunk_map(faults, threads, sweep_chunk)
        }
    };
    CoverageReport::new(walk.test_name(), walk.order_name(), outcomes)
}

/// Simulates every fault in `faults` under `test`/`order` with explicit
/// sweep options, precomputing the walk once for the whole list.
pub fn evaluate_coverage_with(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
    options: SweepOptions,
) -> CoverageReport {
    let walk = MarchWalk::new(test, order, organization);
    evaluate_coverage_on_walk(&walk, faults, options)
}

/// Simulates every fault in `faults` under `test`/`order` and aggregates
/// the outcomes (full mismatch counts, single-threaded, on the default
/// lane-batched backend — report-identical to the seed API's serial
/// per-fault sweep; use [`evaluate_coverage_with`] and
/// [`SweepOptions::fast`] for throughput sweeps).
pub fn evaluate_coverage(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
) -> CoverageReport {
    evaluate_coverage_with(test, order, organization, faults, SweepOptions::default())
}

/// A panic captured by the panic-safe sweep wrappers: the payload rendered
/// as a string, so callers can journal, retry or quarantine the job
/// without the panic unwinding through their worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPanic {
    /// The panic payload (`&str`/`String` payloads verbatim, anything else
    /// as a placeholder).
    pub message: String,
}

impl std::fmt::Display for SweepPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep panicked: {}", self.message)
    }
}

impl std::error::Error for SweepPanic {}

/// Renders a caught panic payload as a string: `&str` and `String`
/// payloads verbatim (the overwhelmingly common case — `panic!` with a
/// message), anything else as a placeholder.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The panic-safe job-level sweep entry point: like
/// [`evaluate_coverage_with`], but a panic anywhere inside the sweep — a
/// misbehaving fault model, a lane form violating its involved-address
/// contract, an assertion in the kernel — is caught and returned as a
/// [`SweepPanic`] instead of unwinding into the caller. This is what lets
/// a campaign worker pool treat a panicking fault model as *one failed
/// job* rather than a dead campaign.
///
/// The sweep mutates only state it owns (scratch memories, outcome
/// buffers), so a caught panic leaves no observable inconsistency behind;
/// `AssertUnwindSafe` is sound here.
pub fn evaluate_coverage_caught(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
    options: SweepOptions,
) -> Result<CoverageReport, SweepPanic> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        evaluate_coverage_with(test, order, organization, faults, options)
    }))
    .map_err(|payload| SweepPanic {
        message: panic_message(&*payload),
    })
}

/// Per-fault result carried between the sweep workers and the final
/// intern pass: the rendered instance name plus the raw counts. One
/// string per fault — the test/order copies of the classic path are
/// gone, and the name moves into the [`NameTable`] without reallocating.
type RawOutcome = (String, FaultKind, bool, usize);

/// Folds sweep-ordered raw outcomes into an [`InternedSweep`]: one
/// serial pass pushing each name into the table and compressing the
/// counts into 16-byte [`OutcomeCode`]s.
fn intern_outcomes(walk: &MarchWalk, raw: Vec<RawOutcome>) -> InternedSweep {
    let mut names = NameTable::new();
    let test = names.intern(walk.test_name());
    let order = names.intern(walk.order_name());
    let codes = raw
        .into_iter()
        .map(|(name, kind, detected, mismatches)| OutcomeCode {
            name: names.push(name),
            kind,
            detected,
            mismatches: u32::try_from(mismatches).expect("mismatch counts fit u32"),
        })
        .collect();
    InternedSweep::new(test, order, names, codes)
}

/// The interned twin of [`evaluate_coverage_on_walk`]: the same kernel,
/// planner and threading, but outcomes assemble into an
/// [`InternedSweep`] — one name string per fault instead of three, and a
/// 16-byte code instead of a fat outcome struct. The result's
/// [`digest`](InternedSweep::digest) is bit-identical to the classic
/// report's, and [`materialize`](InternedSweep::materialize) recovers
/// the classic report exactly.
pub fn evaluate_coverage_interned_on_walk(
    walk: &MarchWalk,
    faults: &[FaultFactory],
    options: SweepOptions,
) -> InternedSweep {
    let threads = if options.parallel { max_threads() } else { 1 };
    let raw: Vec<RawOutcome> = match options.backend {
        SweepBackend::LaneBatched | SweepBackend::LaneBatchedListOrder => {
            let planner = match options.backend {
                SweepBackend::LaneBatchedListOrder => CohortPlanner::ListOrderGreedy,
                _ => CohortPlanner::AddressAware,
            };
            sweep_batched_assemble(
                walk,
                faults,
                options.background,
                options.mode,
                threads,
                planner,
                &|fault, detected, mismatches| (fault.name(), fault.kind(), detected, mismatches),
            )
        }
        SweepBackend::PerFault => {
            let sweep_chunk = |chunk: &[FaultFactory]| -> Vec<RawOutcome> {
                let mut scratch = GoodMemory::new(walk.capacity());
                chunk
                    .iter()
                    .map(|factory| {
                        let (fault, detected, mismatches) = simulate_fault_counts_on_walk(
                            walk,
                            &mut scratch,
                            factory(),
                            options.background,
                            options.mode,
                        );
                        (fault.name(), fault.kind(), detected, mismatches)
                    })
                    .collect()
            };
            par_chunk_map(faults, threads, sweep_chunk)
        }
    };
    intern_outcomes(walk, raw)
}

/// The interned twin of [`evaluate_coverage_with`]: precomputes the walk
/// once and sweeps into an [`InternedSweep`].
pub fn evaluate_coverage_interned(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
    options: SweepOptions,
) -> InternedSweep {
    let walk = MarchWalk::new(test, order, organization);
    evaluate_coverage_interned_on_walk(&walk, faults, options)
}

/// The panic-safe interned sweep — the [`InternedSweep`] counterpart of
/// [`evaluate_coverage_caught`], with the same unwind-safety argument:
/// the sweep mutates only state it owns, so a caught panic leaves no
/// observable inconsistency behind. This is the entry point campaign
/// workers use.
pub fn evaluate_coverage_interned_caught(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    faults: &[FaultFactory],
    options: SweepOptions,
) -> Result<InternedSweep, SweepPanic> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        evaluate_coverage_interned(test, order, organization, faults, options)
    }))
    .map_err(|payload| SweepPanic {
        message: panic_message(&*payload),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_order::WordLineAfterWordLine;
    use crate::faults::standard_fault_list;
    use crate::library;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 4).unwrap()
    }

    #[test]
    fn march_ss_covers_more_than_mats_plus() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        let ss = evaluate_coverage(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
        );
        let mats = evaluate_coverage(
            &library::mats_plus(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
        );
        assert!(ss.coverage() > mats.coverage());
        assert!(ss.coverage() > 0.8, "March SS coverage {}", ss.coverage());
        assert_eq!(ss.total(), faults.len());
        assert!(ss.detected() <= ss.total());
    }

    #[test]
    fn stuck_at_faults_are_fully_covered_by_every_table1_algorithm() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            let report = evaluate_coverage(&test, &WordLineAfterWordLine, &organization, &faults);
            let by_kind = report.by_kind();
            let (detected, total) = by_kind["SAF"];
            assert_eq!(detected, total, "{} must detect every SAF", test.name());
        }
    }

    #[test]
    fn report_accessors_are_consistent() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        let report = evaluate_coverage(
            &library::march_c_minus(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
        );
        assert_eq!(report.detected_fault_names().len(), report.detected());
        let kind_total: usize = report.by_kind().values().map(|(_, t)| t).sum();
        assert_eq!(kind_total, report.total());
        assert!(report.coverage() > 0.0 && report.coverage() <= 1.0);
        assert_eq!(report.test_name, "March C-");
        assert_eq!(report.outcomes().len(), report.total());
    }

    #[test]
    fn every_backend_and_threading_combination_yields_the_same_report() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
                let reference = evaluate_coverage_with(
                    &test,
                    &WordLineAfterWordLine,
                    &organization,
                    &faults,
                    SweepOptions {
                        background: false,
                        mode,
                        parallel: false,
                        backend: SweepBackend::PerFault,
                    },
                );
                for backend in [
                    SweepBackend::PerFault,
                    SweepBackend::LaneBatched,
                    SweepBackend::LaneBatchedListOrder,
                ] {
                    for parallel in [false, true] {
                        let other = evaluate_coverage_with(
                            &test,
                            &WordLineAfterWordLine,
                            &organization,
                            &faults,
                            SweepOptions {
                                background: false,
                                mode,
                                parallel,
                                backend,
                            },
                        );
                        // Structural equality and byte-identical debug
                        // rendering: outcome order must be the fault-list
                        // order in every combination.
                        assert_eq!(
                            reference,
                            other,
                            "{} ({mode:?}, {backend:?}, parallel={parallel})",
                            test.name()
                        );
                        assert_eq!(
                            format!("{reference:?}"),
                            format!("{other:?}"),
                            "{} ({mode:?}, {backend:?}, parallel={parallel})",
                            test.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn interned_sweep_matches_the_string_path_across_every_combination() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
                for backend in [
                    SweepBackend::PerFault,
                    SweepBackend::LaneBatched,
                    SweepBackend::LaneBatchedListOrder,
                ] {
                    for parallel in [false, true] {
                        let options = SweepOptions {
                            background: false,
                            mode,
                            parallel,
                            backend,
                        };
                        let classic = evaluate_coverage_with(
                            &test,
                            &WordLineAfterWordLine,
                            &organization,
                            &faults,
                            options,
                        );
                        let interned = evaluate_coverage_interned(
                            &test,
                            &WordLineAfterWordLine,
                            &organization,
                            &faults,
                            options,
                        );
                        let context = format!(
                            "{} ({mode:?}, {backend:?}, parallel={parallel})",
                            test.name()
                        );
                        assert_eq!(interned.digest(), classic.digest(), "{context}");
                        assert_eq!(interned.materialize(), classic, "{context}");
                        assert_eq!(interned.detected(), classic.detected(), "{context}");
                        assert_eq!(interned.total(), classic.total(), "{context}");
                        assert_eq!(
                            interned.total_mismatches(),
                            classic.total_mismatches(),
                            "{context}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn interned_caught_sweep_agrees_with_the_classic_caught_sweep() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        let test = library::march_ss();
        let classic = evaluate_coverage_caught(
            &test,
            &WordLineAfterWordLine,
            &organization,
            &faults,
            SweepOptions::fast(),
        )
        .expect("classic sweep completes");
        let interned = evaluate_coverage_interned_caught(
            &test,
            &WordLineAfterWordLine,
            &organization,
            &faults,
            SweepOptions::fast(),
        )
        .expect("interned sweep completes");
        assert_eq!(interned.digest(), classic.digest());
        assert_eq!(interned.materialize(), classic);
    }

    #[test]
    fn fast_sweep_detects_exactly_the_same_faults_as_the_golden_one() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            let full = evaluate_coverage_with(
                &test,
                &WordLineAfterWordLine,
                &organization,
                &faults,
                SweepOptions::golden(),
            );
            let fast = evaluate_coverage_with(
                &test,
                &WordLineAfterWordLine,
                &organization,
                &faults,
                SweepOptions::fast(),
            );
            assert_eq!(
                full.detected_fault_names(),
                fast.detected_fault_names(),
                "{}",
                test.name()
            );
            assert_eq!(full.coverage(), fast.coverage(), "{}", test.name());
        }
    }

    #[test]
    fn generated_populations_flow_through_every_backend_identically() {
        use crate::faultgen::FaultGen;

        // A dense generated population (mixed kinds, shuffled) must sweep
        // through the batched backends exactly like the per-fault golden
        // path — the report is the contract, whatever the fault source.
        let organization = ArrayOrganization::new(8, 8).unwrap();
        let population = FaultGen::new(organization, 0xD15E).dense_profile(300);
        assert!(population.len() >= 300);
        let golden = evaluate_coverage_with(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            &population,
            SweepOptions::golden(),
        );
        assert_eq!(golden.total(), population.len());
        assert!(golden.coverage() > 0.0);
        for backend in [
            SweepBackend::LaneBatched,
            SweepBackend::LaneBatchedListOrder,
        ] {
            for parallel in [false, true] {
                let batched = evaluate_coverage_with(
                    &library::march_ss(),
                    &WordLineAfterWordLine,
                    &organization,
                    &population,
                    SweepOptions {
                        background: false,
                        mode: DetectionMode::Full,
                        parallel,
                        backend,
                    },
                );
                assert_eq!(golden, batched, "{backend:?} parallel={parallel}");
            }
        }
    }

    #[test]
    fn report_digest_is_stable_and_discriminating() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        let a = evaluate_coverage(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
        );
        let b = evaluate_coverage(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
        );
        // Equal reports digest equally; a different algorithm (different
        // outcomes and test name) must diverge.
        assert_eq!(a.digest(), b.digest());
        let other = evaluate_coverage(
            &library::mats_plus(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
        );
        assert_ne!(a.digest(), other.digest());
        assert_eq!(
            a.total_mismatches(),
            a.outcomes()
                .iter()
                .map(|o| o.mismatches as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn caught_sweep_returns_the_report_on_success() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        let direct = evaluate_coverage(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
        );
        let caught = evaluate_coverage_caught(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
            SweepOptions::default(),
        )
        .expect("healthy sweep must not panic");
        assert_eq!(direct, caught);
    }

    #[test]
    fn caught_sweep_reports_a_panicking_fault_model_as_an_error() {
        use crate::faults::{Fault, FaultKind};
        use sram_model::address::Address;

        // A fault model that panics on its first read: the wrapper must
        // catch it and surface the payload message.
        #[derive(Debug)]
        struct ExplodingFault;
        impl Fault for ExplodingFault {
            fn name(&self) -> String {
                "EXPLODE@0".to_string()
            }
            fn kind(&self) -> FaultKind {
                FaultKind::StuckAt
            }
            fn write(&mut self, _memory: &mut GoodMemory, _address: Address, _value: bool) {}
            fn read(&mut self, _memory: &mut GoodMemory, _address: Address) -> bool {
                panic!("faultpoint: exploding fault model")
            }
            fn involved_addresses(&self) -> Option<Vec<Address>> {
                Some(vec![Address::new(0)])
            }
        }

        let organization = org();
        let faults: Vec<crate::faults::FaultFactory> =
            vec![Box::new(|| Box::new(ExplodingFault) as Box<dyn Fault>)];
        let error = evaluate_coverage_caught(
            &library::mats_plus(),
            &WordLineAfterWordLine,
            &organization,
            &faults,
            SweepOptions::golden(),
        )
        .expect_err("the exploding model must surface as SweepPanic");
        assert!(
            error.message.contains("exploding fault model"),
            "payload lost: {error}"
        );
        assert!(error.to_string().starts_with("sweep panicked:"));
    }

    #[test]
    fn empty_fault_list_yields_zero_coverage() {
        let organization = org();
        let report = evaluate_coverage(
            &library::mats_plus(),
            &WordLineAfterWordLine,
            &organization,
            &[],
        );
        assert_eq!(report.total(), 0);
        assert_eq!(report.detected(), 0);
        assert_eq!(report.coverage(), 0.0);
    }
}
