//! Single-fault simulation.
//!
//! [`simulate_fault`] injects one fault into an otherwise fault-free
//! memory, runs a March test over it under a given address order and
//! reports whether the test detected the fault (at least one read
//! mismatch). This is the primitive underneath the
//! [`coverage`](crate::coverage) and [`dof`](crate::dof) experiments.

use serde::{Deserialize, Serialize};
use sram_model::config::ArrayOrganization;

use crate::address_order::AddressOrder;
use crate::algorithm::MarchTest;
use crate::executor::run_march;
use crate::faults::{Fault, FaultKind, FaultyMemory};
use crate::memory::GoodMemory;

/// Result of simulating one fault under one test/order combination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSimOutcome {
    /// Instance name of the injected fault.
    pub fault_name: String,
    /// Fault class.
    pub fault_kind: FaultKind,
    /// Name of the March test applied.
    pub test_name: String,
    /// Name of the address order used.
    pub order_name: String,
    /// Whether at least one read mismatched.
    pub detected: bool,
    /// Number of read mismatches observed.
    pub mismatches: usize,
}

/// Runs `test` over a memory containing exactly one injected fault. The
/// memory starts with the all-`0` background.
pub fn simulate_fault(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    fault: Box<dyn Fault>,
) -> FaultSimOutcome {
    simulate_fault_with_background(test, order, organization, fault, false)
}

/// Runs `test` over a memory containing exactly one injected fault, with
/// every cell initialised to `background` before the test starts. Detection
/// of some faults (e.g. write-disturb faults triggered by the very first
/// initialising write) depends on the pre-test contents, which is why the
/// background is exposed.
pub fn simulate_fault_with_background(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    fault: Box<dyn Fault>,
    background: bool,
) -> FaultSimOutcome {
    let fault_name = fault.name();
    let fault_kind = fault.kind();
    let mut memory = FaultyMemory::new(
        GoodMemory::filled(organization.capacity(), background),
        fault,
    );
    let result = run_march(test, order, organization, &mut memory);
    FaultSimOutcome {
        fault_name,
        fault_kind,
        test_name: test.name().to_string(),
        order_name: order.name().to_string(),
        detected: result.detected_fault(),
        mismatches: result.mismatches.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_order::WordLineAfterWordLine;
    use crate::faults::{
        DeceptiveReadDestructiveFault, StuckAtFault, TransitionFault, WriteDisturbFault,
    };
    use crate::library;
    use sram_model::address::Address;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 4).unwrap()
    }

    #[test]
    fn mats_plus_detects_stuck_at_faults() {
        let organization = org();
        for value in [false, true] {
            let outcome = simulate_fault(
                &library::mats_plus(),
                &WordLineAfterWordLine,
                &organization,
                Box::new(StuckAtFault::new(Address::new(7), value)),
            );
            assert!(outcome.detected, "MATS+ must detect SAF{}", u8::from(value));
            assert!(outcome.mismatches > 0);
        }
    }

    #[test]
    fn march_c_minus_detects_transition_faults() {
        let organization = org();
        for rising in [false, true] {
            let outcome = simulate_fault(
                &library::march_c_minus(),
                &WordLineAfterWordLine,
                &organization,
                Box::new(TransitionFault::new(Address::new(9), rising)),
            );
            assert!(outcome.detected, "March C- must detect TF (rising={rising})");
        }
    }

    #[test]
    fn mats_plus_misses_write_disturb_but_march_ss_catches_it() {
        // With an all-1 background, the initialising w0 of MATS+ is a real
        // transition, so the algorithm never applies a non-transition write
        // followed by a read and the WDF escapes. March SS contains the
        // required ...w_x, r_x pattern and catches it regardless.
        let organization = org();
        let victim = Address::new(5);
        let missed = simulate_fault_with_background(
            &library::mats_plus(),
            &WordLineAfterWordLine,
            &organization,
            Box::new(WriteDisturbFault::new(victim)),
            true,
        );
        assert!(
            !missed.detected,
            "MATS+ applies no non-transition write followed by a read"
        );
        let caught = simulate_fault_with_background(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            Box::new(WriteDisturbFault::new(victim)),
            true,
        );
        assert!(caught.detected, "March SS detects WDF");
    }

    #[test]
    fn deceptive_read_destructive_needs_read_after_read() {
        let organization = org();
        let victim = Address::new(3);
        let missed = simulate_fault(
            &library::mats_plus(),
            &WordLineAfterWordLine,
            &organization,
            Box::new(DeceptiveReadDestructiveFault::new(victim)),
        );
        assert!(!missed.detected, "MATS+ has no back-to-back reads");
        let caught = simulate_fault(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            Box::new(DeceptiveReadDestructiveFault::new(victim)),
        );
        assert!(caught.detected, "March SS has r,r pairs and detects DRDF");
    }

    #[test]
    fn outcome_records_names() {
        let organization = org();
        let outcome = simulate_fault(
            &library::march_c_minus(),
            &WordLineAfterWordLine,
            &organization,
            Box::new(StuckAtFault::new(Address::new(0), true)),
        );
        assert_eq!(outcome.test_name, "March C-");
        assert_eq!(outcome.order_name, "word line after word line");
        assert_eq!(outcome.fault_name, "SAF1@0");
    }
}
