//! Single-fault simulation.
//!
//! [`simulate_fault`] injects one fault into an otherwise fault-free
//! memory, runs a March test over it under a given address order and
//! reports whether the test detected the fault (at least one read
//! mismatch). This is the primitive underneath the
//! [`coverage`](crate::coverage) and [`dof`](crate::dof) experiments.
//!
//! Sweeps over many faults should precompute one [`MarchWalk`] and call
//! [`simulate_fault_on_walk`] with a reused scratch [`GoodMemory`]: the
//! walk is shared read-only across the whole fault list (and across
//! threads) and the scratch memory is refilled instead of reallocated,
//! so the per-fault cost is exactly one kernel scan. Library-scale sweeps
//! go one step further through the lane-batched backend
//! ([`crate::batch`]), which amortises a single walk dispatch over up to
//! sixty-four faults and falls back to this per-fault path — the golden
//! reference — for faults it cannot batch. The involved-step schedule
//! both paths filter by is built by one shared helper,
//! [`crate::executor::merged_step_indices`].

use sram_model::config::ArrayOrganization;

use crate::address_order::AddressOrder;
use crate::algorithm::MarchTest;
use crate::executor::{
    run_march_until_detected, run_march_until_detected_filtered, run_march_walk,
    run_march_walk_filtered, MarchWalk,
};
use crate::faults::{Fault, FaultKind};
use crate::memory::{GoodMemory, MemoryModel};

/// How much detail a fault simulation records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectionMode {
    /// Run the full walk and count every read mismatch.
    #[default]
    Full,
    /// Stop at the first mismatching read — the fast mode for coverage and
    /// degree-of-freedom sweeps, where only the detected/missed bit
    /// matters. [`FaultSimOutcome::mismatches`] is `1` for a detected
    /// fault and `0` otherwise.
    FirstMismatch,
}

/// Result of simulating one fault under one test/order combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSimOutcome {
    /// Instance name of the injected fault.
    pub fault_name: String,
    /// Fault class.
    pub fault_kind: FaultKind,
    /// Name of the March test applied.
    pub test_name: String,
    /// Name of the address order used.
    pub order_name: String,
    /// Whether at least one read mismatched.
    pub detected: bool,
    /// Number of read mismatches observed (capped at `1` under
    /// [`DetectionMode::FirstMismatch`]).
    pub mismatches: usize,
}

/// A fault-free scratch memory borrowed by one fault for one run.
///
/// [`crate::faults::FaultyMemory`] owns its base memory; sweeps instead
/// keep one [`GoodMemory`] alive across the whole fault list and lend it
/// to each fault through this adapter, so no allocation happens per fault.
struct BorrowedFaultyMemory<'a> {
    base: &'a mut GoodMemory,
    fault: Box<dyn Fault>,
}

impl MemoryModel for BorrowedFaultyMemory<'_> {
    fn capacity(&self) -> u32 {
        self.base.capacity()
    }

    fn read(&mut self, address: sram_model::address::Address) -> bool {
        self.fault.read(self.base, address)
    }

    fn write(&mut self, address: sram_model::address::Address, value: bool) {
        self.fault.write(self.base, address, value);
    }
}

/// Runs a precomputed `walk` over a scratch memory containing exactly one
/// injected fault.
///
/// `scratch` must have the walk's capacity; it is reset to `background`
/// before the run, so the same allocation can serve an entire sweep.
pub fn simulate_fault_on_walk(
    walk: &MarchWalk,
    scratch: &mut GoodMemory,
    fault: Box<dyn Fault>,
    background: bool,
    mode: DetectionMode,
) -> FaultSimOutcome {
    let fault_name = fault.name();
    let fault_kind = fault.kind();
    let (_, detected, mismatches) =
        simulate_fault_counts_on_walk(walk, scratch, fault, background, mode);
    FaultSimOutcome {
        fault_name,
        fault_kind,
        test_name: walk.test_name().to_string(),
        order_name: walk.order_name().to_string(),
        detected,
        mismatches,
    }
}

/// The assembly-free core of [`simulate_fault_on_walk`]: runs the same
/// simulation but reports only the detection bit and mismatch count,
/// handing the fault instance back so the caller can render names however
/// it wants (full [`FaultSimOutcome`] strings, or an interned
/// [`OutcomeCode`](crate::intern::OutcomeCode)). The outcome-type sweeps
/// ([`crate::batch::sweep_batched_assemble`]) build on this so the hot
/// path never allocates per-fault name strings it may not need.
pub fn simulate_fault_counts_on_walk(
    walk: &MarchWalk,
    scratch: &mut GoodMemory,
    fault: Box<dyn Fault>,
    background: bool,
    mode: DetectionMode,
) -> (Box<dyn Fault>, bool, usize) {
    assert_eq!(
        scratch.capacity(),
        walk.capacity(),
        "scratch memory capacity must match the walk"
    );
    // Localised faults (the common case) only need the walk steps that
    // touch their involved cells; global faults — and walks of tests whose
    // fault-free reads are not guaranteed to match (non-initialising
    // sequences) — run the full walk.
    let involved = if walk.locality_safe() {
        fault.involved_addresses()
    } else {
        None
    };
    scratch.fill(background);
    let mut memory = BorrowedFaultyMemory {
        base: scratch,
        fault,
    };
    let (detected, mismatches) = match (mode, involved) {
        (DetectionMode::Full, Some(involved)) => {
            let result = run_march_walk_filtered(walk, &mut memory, &involved);
            (result.detected_fault(), result.mismatches.len())
        }
        (DetectionMode::Full, None) => {
            let result = run_march_walk(walk, &mut memory);
            (result.detected_fault(), result.mismatches.len())
        }
        (DetectionMode::FirstMismatch, Some(involved)) => {
            let detected = run_march_until_detected_filtered(walk, &mut memory, &involved);
            (detected, usize::from(detected))
        }
        (DetectionMode::FirstMismatch, None) => {
            let detected = run_march_until_detected(walk, &mut memory);
            (detected, usize::from(detected))
        }
    };
    (memory.fault, detected, mismatches)
}

/// Runs `test` over a memory containing exactly one injected fault. The
/// memory starts with the all-`0` background.
pub fn simulate_fault(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    fault: Box<dyn Fault>,
) -> FaultSimOutcome {
    simulate_fault_with_background(test, order, organization, fault, false)
}

/// Runs `test` over a memory containing exactly one injected fault, with
/// every cell initialised to `background` before the test starts. Detection
/// of some faults (e.g. write-disturb faults triggered by the very first
/// initialising write) depends on the pre-test contents, which is why the
/// background is exposed.
pub fn simulate_fault_with_background(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    fault: Box<dyn Fault>,
    background: bool,
) -> FaultSimOutcome {
    let walk = MarchWalk::new(test, order, organization);
    let mut scratch = GoodMemory::new(organization.capacity());
    simulate_fault_on_walk(&walk, &mut scratch, fault, background, DetectionMode::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_order::WordLineAfterWordLine;
    use crate::faults::{
        standard_fault_list, DeceptiveReadDestructiveFault, StuckAtFault, TransitionFault,
        WriteDisturbFault,
    };
    use crate::library;
    use sram_model::address::Address;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 4).unwrap()
    }

    #[test]
    fn mats_plus_detects_stuck_at_faults() {
        let organization = org();
        for value in [false, true] {
            let outcome = simulate_fault(
                &library::mats_plus(),
                &WordLineAfterWordLine,
                &organization,
                Box::new(StuckAtFault::new(Address::new(7), value)),
            );
            assert!(outcome.detected, "MATS+ must detect SAF{}", u8::from(value));
            assert!(outcome.mismatches > 0);
        }
    }

    #[test]
    fn march_c_minus_detects_transition_faults() {
        let organization = org();
        for rising in [false, true] {
            let outcome = simulate_fault(
                &library::march_c_minus(),
                &WordLineAfterWordLine,
                &organization,
                Box::new(TransitionFault::new(Address::new(9), rising)),
            );
            assert!(
                outcome.detected,
                "March C- must detect TF (rising={rising})"
            );
        }
    }

    #[test]
    fn mats_plus_misses_write_disturb_but_march_ss_catches_it() {
        // With an all-1 background, the initialising w0 of MATS+ is a real
        // transition, so the algorithm never applies a non-transition write
        // followed by a read and the WDF escapes. March SS contains the
        // required ...w_x, r_x pattern and catches it regardless.
        let organization = org();
        let victim = Address::new(5);
        let missed = simulate_fault_with_background(
            &library::mats_plus(),
            &WordLineAfterWordLine,
            &organization,
            Box::new(WriteDisturbFault::new(victim)),
            true,
        );
        assert!(
            !missed.detected,
            "MATS+ applies no non-transition write followed by a read"
        );
        let caught = simulate_fault_with_background(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            Box::new(WriteDisturbFault::new(victim)),
            true,
        );
        assert!(caught.detected, "March SS detects WDF");
    }

    #[test]
    fn deceptive_read_destructive_needs_read_after_read() {
        let organization = org();
        let victim = Address::new(3);
        let missed = simulate_fault(
            &library::mats_plus(),
            &WordLineAfterWordLine,
            &organization,
            Box::new(DeceptiveReadDestructiveFault::new(victim)),
        );
        assert!(!missed.detected, "MATS+ has no back-to-back reads");
        let caught = simulate_fault(
            &library::march_ss(),
            &WordLineAfterWordLine,
            &organization,
            Box::new(DeceptiveReadDestructiveFault::new(victim)),
        );
        assert!(caught.detected, "March SS has r,r pairs and detects DRDF");
    }

    #[test]
    fn outcome_records_names() {
        let organization = org();
        let outcome = simulate_fault(
            &library::march_c_minus(),
            &WordLineAfterWordLine,
            &organization,
            Box::new(StuckAtFault::new(Address::new(0), true)),
        );
        assert_eq!(outcome.test_name, "March C-");
        assert_eq!(outcome.order_name, "word line after word line");
        assert_eq!(outcome.fault_name, "SAF1@0");
    }

    #[test]
    fn walk_reuse_with_scratch_memory_matches_the_one_shot_api() {
        let organization = org();
        let test = library::march_ss();
        let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
        let mut scratch = GoodMemory::new(organization.capacity());
        for background in [false, true] {
            for factory in standard_fault_list(&organization) {
                let reused = simulate_fault_on_walk(
                    &walk,
                    &mut scratch,
                    factory(),
                    background,
                    DetectionMode::Full,
                );
                let one_shot = simulate_fault_with_background(
                    &test,
                    &WordLineAfterWordLine,
                    &organization,
                    factory(),
                    background,
                );
                assert_eq!(reused, one_shot, "background {background}");
            }
        }
    }

    #[test]
    fn first_mismatch_mode_agrees_on_detection_and_caps_the_count() {
        let organization = org();
        let test = library::march_c_minus();
        let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
        let mut scratch = GoodMemory::new(organization.capacity());
        for factory in standard_fault_list(&organization) {
            let full =
                simulate_fault_on_walk(&walk, &mut scratch, factory(), false, DetectionMode::Full);
            let fast = simulate_fault_on_walk(
                &walk,
                &mut scratch,
                factory(),
                false,
                DetectionMode::FirstMismatch,
            );
            assert_eq!(full.detected, fast.detected, "{}", full.fault_name);
            assert_eq!(fast.mismatches, usize::from(fast.detected));
            assert!(fast.mismatches <= full.mismatches);
        }
    }

    #[test]
    fn non_initialising_tests_bypass_the_locality_fast_path() {
        // {⇑(r1)} reads before any write: on an all-0 background every
        // fault-free cell mismatches, so the seed semantics report
        // detected=true even for a fault whose victim reads "correctly".
        // The locality filter would only run the victim's steps (where the
        // IRF returns !0 = 1 and matches) and miss that — the walk must
        // mark itself unsafe and run unfiltered.
        use crate::algorithm::MarchTest;
        use crate::element::MarchElement;
        use crate::faults::IncorrectReadFault;
        use crate::operation::MarchOp;

        let organization = org();
        let test = MarchTest::new(
            "reads-first",
            vec![MarchElement::ascending(vec![MarchOp::R1])],
        );
        let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
        assert!(!walk.locality_safe());
        let outcome = simulate_fault(
            &test,
            &WordLineAfterWordLine,
            &organization,
            Box::new(IncorrectReadFault::new(Address::new(3))),
        );
        assert!(outcome.detected, "fault-free mismatches must be preserved");
        assert_eq!(
            outcome.mismatches,
            organization.capacity() as usize - 1,
            "every cell but the (incorrectly matching) victim mismatches"
        );
        // Well-formed library tests keep the fast path.
        let safe = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        assert!(safe.locality_safe());
    }

    #[test]
    #[should_panic(expected = "capacity must match")]
    fn mismatched_scratch_capacity_is_rejected() {
        let organization = org();
        let walk = MarchWalk::new(&library::mats_plus(), &WordLineAfterWordLine, &organization);
        let mut scratch = GoodMemory::new(8);
        let _ = simulate_fault_on_walk(
            &walk,
            &mut scratch,
            Box::new(StuckAtFault::new(Address::new(0), true)),
            false,
            DetectionMode::Full,
        );
    }
}
