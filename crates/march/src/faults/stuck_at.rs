//! Stuck-at faults (SAF).

use sram_model::address::Address;

use super::{Fault, FaultKind, InvolvedAddresses, LaneFault, LaneFaultKind};
use crate::memory::{GoodMemory, LaneMemory};

/// A cell permanently stuck at a fixed value: writes of the opposite value
/// have no effect and reads always return the stuck value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckAtFault {
    victim: Address,
    stuck_value: bool,
}

impl StuckAtFault {
    /// Creates a stuck-at fault on `victim`.
    pub fn new(victim: Address, stuck_value: bool) -> Self {
        Self {
            victim,
            stuck_value,
        }
    }

    /// The affected cell.
    pub fn victim(&self) -> Address {
        self.victim
    }

    /// The value the cell is stuck at.
    pub fn stuck_value(&self) -> bool {
        self.stuck_value
    }
}

impl Fault for StuckAtFault {
    fn name(&self) -> String {
        format!("SAF{}@{}", u8::from(self.stuck_value), self.victim.value())
    }

    fn kind(&self) -> FaultKind {
        FaultKind::StuckAt
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        if address == self.victim {
            memory.set(address, self.stuck_value);
        } else {
            memory.set(address, value);
        }
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        if address == self.victim {
            memory.set(address, self.stuck_value);
            self.stuck_value
        } else {
            memory.get(address)
        }
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        Some(vec![self.victim])
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::StuckAt(*self))
    }
}

impl StuckAtFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::one(self.victim)
    }
}

impl LaneFault for StuckAtFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.victim]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        let stored = if address == self.victim {
            self.stuck_value
        } else {
            value
        };
        memory.set_lane(address, lane, stored);
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        if address == self.victim {
            memory.set_lane(address, lane, self.stuck_value);
            self.stuck_value
        } else {
            memory.get_lane(address, lane)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victim_ignores_writes_of_opposite_value() {
        let mut fault = StuckAtFault::new(Address::new(3), false);
        let mut memory = GoodMemory::new(8);
        fault.write(&mut memory, Address::new(3), true);
        assert!(!fault.read(&mut memory, Address::new(3)));
        assert_eq!(fault.name(), "SAF0@3");
        assert_eq!(fault.kind(), FaultKind::StuckAt);
        assert_eq!(fault.victim(), Address::new(3));
        assert!(!fault.stuck_value());
    }

    #[test]
    fn other_cells_unaffected() {
        let mut fault = StuckAtFault::new(Address::new(3), false);
        let mut memory = GoodMemory::new(8);
        fault.write(&mut memory, Address::new(4), true);
        assert!(fault.read(&mut memory, Address::new(4)));
    }

    #[test]
    fn stuck_at_one_reads_one_even_before_any_write() {
        let mut fault = StuckAtFault::new(Address::new(0), true);
        let mut memory = GoodMemory::new(4);
        assert!(fault.read(&mut memory, Address::new(0)));
    }
}
