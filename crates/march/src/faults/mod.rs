//! Functional memory fault models.
//!
//! Fault simulation works by wrapping the fault-free [`GoodMemory`] in a
//! [`FaultyMemory`] that lets one injected [`Fault`] perturb reads and
//! writes. The models implemented here are the classical single-cell and
//! two-cell (coupling) functional fault models from the memory-test
//! literature (van de Goor), plus the read-destructive family that the
//! paper's authors study in their earlier work:
//!
//! | module | faults |
//! |---|---|
//! | [`stuck_at`] | SAF (stuck-at-0 / stuck-at-1) |
//! | [`transition`] | TF (up / down transition faults) |
//! | [`coupling`] | CFin, CFid, CFst |
//! | [`read_fault`] | RDF, DRDF, IRF |
//! | [`stuck_open`] | SOF |
//! | [`write_disturb`] | WDF |
//! | [`address_decoder`] | AF (aliased addresses) |

pub mod address_decoder;
pub mod coupling;
pub mod read_fault;
pub mod stuck_at;
pub mod stuck_open;
pub mod transition;
pub mod write_disturb;

pub use address_decoder::AddressAliasFault;
pub use coupling::{CouplingIdempotentFault, CouplingInversionFault, CouplingStateFault};
pub use read_fault::{DeceptiveReadDestructiveFault, IncorrectReadFault, ReadDestructiveFault};
pub use stuck_at::StuckAtFault;
pub use stuck_open::StuckOpenFault;
pub use transition::TransitionFault;
pub use write_disturb::WriteDisturbFault;

use sram_model::address::Address;
use sram_model::config::ArrayOrganization;
use std::fmt;

use crate::memory::{GoodMemory, LaneMemory, MemoryModel};

/// Broad classification of a fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Stuck-at fault.
    StuckAt,
    /// Transition fault.
    Transition,
    /// Inversion coupling fault.
    CouplingInversion,
    /// Idempotent coupling fault.
    CouplingIdempotent,
    /// State coupling fault.
    CouplingState,
    /// Read destructive fault.
    ReadDestructive,
    /// Deceptive read destructive fault.
    DeceptiveReadDestructive,
    /// Incorrect read fault.
    IncorrectRead,
    /// Stuck-open fault.
    StuckOpen,
    /// Write disturb fault.
    WriteDisturb,
    /// Address-decoder fault.
    AddressDecoder,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::StuckAt => "SAF",
            FaultKind::Transition => "TF",
            FaultKind::CouplingInversion => "CFin",
            FaultKind::CouplingIdempotent => "CFid",
            FaultKind::CouplingState => "CFst",
            FaultKind::ReadDestructive => "RDF",
            FaultKind::DeceptiveReadDestructive => "DRDF",
            FaultKind::IncorrectRead => "IRF",
            FaultKind::StuckOpen => "SOF",
            FaultKind::WriteDisturb => "WDF",
            FaultKind::AddressDecoder => "AF",
        };
        f.write_str(s)
    }
}

/// One injected fault instance.
///
/// A fault sees every read and write of the memory and decides how the
/// underlying fault-free state ([`GoodMemory`]) is affected and what value
/// a read returns. Addresses the fault does not involve must behave
/// normally.
pub trait Fault: fmt::Debug {
    /// Short human-readable instance name, e.g. `"SAF0@17"`.
    fn name(&self) -> String;

    /// The fault class.
    fn kind(&self) -> FaultKind;

    /// Performs the (possibly faulty) effect of writing `value` at
    /// `address`.
    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool);

    /// Performs the (possibly faulty) effect of reading `address` and
    /// returns the value observed at the memory outputs.
    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool;

    /// The addresses whose operations can trigger **or** observe this
    /// fault, or `None` when the behaviour is global (any access may
    /// matter, e.g. the stuck-open fault's bit-line history).
    ///
    /// When `Some`, the simulation kernel executes only the walk steps
    /// touching these addresses
    /// ([`crate::executor::run_march_walk_filtered`]): every other cell
    /// behaves fault-free and a March read of a fault-free cell always
    /// matches its expectation, so the filtered run is observationally
    /// equivalent to the full one at `O(ops × involved)` instead of
    /// `O(ops × cells)` cost. Implementations must list every address
    /// whose read can mismatch and every address whose access can change
    /// the fault's trigger state. The default is the conservative `None`.
    fn involved_addresses(&self) -> Option<Vec<Address>> {
        None
    }

    /// The lane-masked injection form of this fault for the batched
    /// multi-fault backend ([`crate::batch`]), or `None` when the fault
    /// can only run the per-fault path. The returned object must reproduce
    /// this fault's behaviour exactly, confined to one bit lane of a
    /// [`LaneMemory`]. The default is the conservative `None`, which makes
    /// the [`crate::batch::FaultBatch`] planner fall back to a serial
    /// singleton cohort.
    fn lane_form(&self) -> Option<Box<dyn LaneFault>> {
        None
    }
}

/// The lane-masked form of a fault: the same faulty behaviour as its
/// [`Fault`], expressed over a single bit lane of a [`LaneMemory`] so that
/// up to [`LaneMemory::LANES`] independent faults can share one walk scan
/// ([`crate::executor::run_march_lanes`]).
///
/// Implementations must confine every access to the addresses returned by
/// [`LaneFault::involved`] and to their own lane: the batched kernel
/// routes exactly the steps touching those addresses through these
/// methods, and serves every other lane with fault-free whole-word
/// operations. Lane forms are `Send` so parallel sweeps can hand whole
/// cohorts of probed lane forms to worker threads instead of
/// re-instantiating every fault per worker.
pub trait LaneFault: fmt::Debug + Send {
    /// The addresses whose walk steps must be dispatched through this
    /// lane's faulty form — every address whose read can mismatch and
    /// every address whose access can change the fault's trigger state.
    /// Must be non-empty; unlike [`Fault::involved_addresses`] there is no
    /// `None` escape hatch, because a lane form *is* the claim that the
    /// fault's behaviour is confined to these addresses (the stuck-open
    /// fault achieves that through the precomputed sensed-before stamp).
    fn involved(&self) -> Vec<Address>;

    /// Performs the faulty effect of writing `value` at `address` in lane
    /// `lane`.
    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool);

    /// Performs the faulty effect of reading `address` in lane `lane` and
    /// returns the observed value. `sensed_before` is the value the sense
    /// amplifier holds before this step in a universe where every other
    /// cell is fault-free, precomputed per walk step at build time — only
    /// history-dependent faults (the stuck-open fault) consume it.
    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        sensed_before: bool,
    ) -> bool;
}

/// A fault-free memory wrapped with one injected fault.
#[derive(Debug)]
pub struct FaultyMemory {
    base: GoodMemory,
    fault: Box<dyn Fault>,
}

impl FaultyMemory {
    /// Wraps `base` with `fault`.
    pub fn new(base: GoodMemory, fault: Box<dyn Fault>) -> Self {
        Self { base, fault }
    }

    /// Convenience constructor: a zero-initialised memory of `capacity`
    /// cells with `fault` injected.
    pub fn with_capacity(capacity: u32, fault: Box<dyn Fault>) -> Self {
        Self::new(GoodMemory::new(capacity), fault)
    }

    /// The injected fault.
    pub fn fault(&self) -> &dyn Fault {
        self.fault.as_ref()
    }

    /// The underlying fault-free state.
    pub fn base(&self) -> &GoodMemory {
        &self.base
    }
}

impl MemoryModel for FaultyMemory {
    fn capacity(&self) -> u32 {
        self.base.capacity()
    }

    fn read(&mut self, address: Address) -> bool {
        self.fault.read(&mut self.base, address)
    }

    fn write(&mut self, address: Address, value: bool) {
        self.fault.write(&mut self.base, address, value);
    }
}

/// A generator of fault instances, so coverage experiments can build fresh
/// (stateful) fault objects for every run. Factories are `Send + Sync` so
/// that parallel sweeps can instantiate faults from worker threads.
pub type FaultFactory = Box<dyn Fn() -> Box<dyn Fault> + Send + Sync>;

/// Builds the standard fault list used by the coverage and
/// degree-of-freedom experiments: every fault class instantiated at a
/// handful of representative victim locations (first cell, a mid-array
/// cell, last cell) with a neighbouring aggressor where applicable.
pub fn standard_fault_list(organization: &ArrayOrganization) -> Vec<FaultFactory> {
    let capacity = organization.capacity();
    assert!(capacity >= 4, "fault list needs at least four cells");
    let victims = [0, capacity / 2, capacity - 1];
    let mut factories: Vec<FaultFactory> = Vec::new();

    for &v in &victims {
        let victim = Address::new(v);
        // The aggressor is the next cell (wrapping away from the end).
        let aggressor = Address::new(if v + 1 < capacity { v + 1 } else { v - 1 });

        for value in [false, true] {
            factories.push(Box::new(move || Box::new(StuckAtFault::new(victim, value))));
            factories.push(Box::new(move || {
                Box::new(CouplingIdempotentFault::new(aggressor, victim, true, value))
            }));
            factories.push(Box::new(move || {
                Box::new(CouplingStateFault::new(aggressor, victim, value, !value))
            }));
        }
        for rising in [false, true] {
            factories.push(Box::new(move || {
                Box::new(TransitionFault::new(victim, rising))
            }));
            factories.push(Box::new(move || {
                Box::new(CouplingInversionFault::new(aggressor, victim, rising))
            }));
        }
        factories.push(Box::new(move || {
            Box::new(ReadDestructiveFault::new(victim))
        }));
        factories.push(Box::new(move || {
            Box::new(DeceptiveReadDestructiveFault::new(victim))
        }));
        factories.push(Box::new(move || Box::new(IncorrectReadFault::new(victim))));
        factories.push(Box::new(move || Box::new(StuckOpenFault::new(victim))));
        factories.push(Box::new(move || Box::new(WriteDisturbFault::new(victim))));
        factories.push(Box::new(move || {
            Box::new(AddressAliasFault::new(victim, aggressor))
        }));
    }
    factories
}

/// Like [`standard_fault_list`], but restricted to the *static* fault
/// classes for which the first March degree of freedom (arbitrary address
/// order) provably preserves detection. The stuck-open fault is excluded:
/// its observable behaviour depends on the value left on the bit lines by
/// the *previous* read, so whether a given March test happens to catch a
/// specific SOF instance legitimately depends on the address sequence.
pub fn static_fault_list(organization: &ArrayOrganization) -> Vec<FaultFactory> {
    standard_fault_list(organization)
        .into_iter()
        .filter(|factory| factory().kind() != FaultKind::StuckOpen)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_memory_delegates_to_fault() {
        let fault = Box::new(StuckAtFault::new(Address::new(2), true));
        let mut memory = FaultyMemory::with_capacity(8, fault);
        assert_eq!(memory.capacity(), 8);
        memory.write(Address::new(2), false);
        assert!(memory.read(Address::new(2)), "cell 2 is stuck at 1");
        memory.write(Address::new(3), true);
        assert!(memory.read(Address::new(3)), "other cells behave normally");
        assert_eq!(memory.fault().kind(), FaultKind::StuckAt);
        assert!(memory.base().get(Address::new(3)));
    }

    #[test]
    fn standard_fault_list_covers_every_kind() {
        let organization = ArrayOrganization::new(4, 4).unwrap();
        let list = standard_fault_list(&organization);
        assert!(list.len() > 30);
        let kinds: std::collections::BTreeSet<String> = list
            .iter()
            .map(|factory| factory().kind().to_string())
            .collect();
        for expected in [
            "SAF", "TF", "CFin", "CFid", "CFst", "RDF", "DRDF", "IRF", "SOF", "WDF", "AF",
        ] {
            assert!(kinds.contains(expected), "missing fault kind {expected}");
        }
    }

    #[test]
    fn static_fault_list_excludes_stuck_open() {
        let organization = ArrayOrganization::new(4, 4).unwrap();
        let list = static_fault_list(&organization);
        assert!(!list.is_empty());
        assert!(list.iter().all(|f| f().kind() != FaultKind::StuckOpen));
        assert!(list.len() < standard_fault_list(&organization).len());
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::StuckAt.to_string(), "SAF");
        assert_eq!(FaultKind::DeceptiveReadDestructive.to_string(), "DRDF");
        assert_eq!(FaultKind::AddressDecoder.to_string(), "AF");
    }

    #[test]
    #[should_panic(expected = "at least four cells")]
    fn tiny_memory_rejected() {
        let organization = ArrayOrganization::new(1, 2).unwrap();
        let _ = standard_fault_list(&organization);
    }
}
