//! Functional memory fault models.
//!
//! Fault simulation works by wrapping the fault-free [`GoodMemory`] in a
//! [`FaultyMemory`] that lets one injected [`Fault`] perturb reads and
//! writes. The models implemented here are the classical single-cell and
//! two-cell (coupling) functional fault models from the memory-test
//! literature (van de Goor), plus the read-destructive family that the
//! paper's authors study in their earlier work:
//!
//! | module | faults |
//! |---|---|
//! | [`stuck_at`] | SAF (stuck-at-0 / stuck-at-1) |
//! | [`transition`] | TF (up / down transition faults) |
//! | [`coupling`] | CFin, CFid, CFst |
//! | [`read_fault`] | RDF, DRDF, IRF |
//! | [`stuck_open`] | SOF |
//! | [`write_disturb`] | WDF |
//! | [`address_decoder`] | AF (aliased addresses) |

pub mod address_decoder;
pub mod coupling;
pub mod read_fault;
pub mod stuck_at;
pub mod stuck_open;
pub mod transition;
pub mod write_disturb;

pub use address_decoder::AddressAliasFault;
pub use coupling::{CouplingIdempotentFault, CouplingInversionFault, CouplingStateFault};
pub use read_fault::{DeceptiveReadDestructiveFault, IncorrectReadFault, ReadDestructiveFault};
pub use stuck_at::StuckAtFault;
pub use stuck_open::StuckOpenFault;
pub use transition::TransitionFault;
pub use write_disturb::WriteDisturbFault;

use sram_model::address::Address;
use sram_model::config::ArrayOrganization;
use std::fmt;

use crate::memory::{GoodMemory, LaneMemory, MemoryModel};

/// Broad classification of a fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Stuck-at fault.
    StuckAt,
    /// Transition fault.
    Transition,
    /// Inversion coupling fault.
    CouplingInversion,
    /// Idempotent coupling fault.
    CouplingIdempotent,
    /// State coupling fault.
    CouplingState,
    /// Read destructive fault.
    ReadDestructive,
    /// Deceptive read destructive fault.
    DeceptiveReadDestructive,
    /// Incorrect read fault.
    IncorrectRead,
    /// Stuck-open fault.
    StuckOpen,
    /// Write disturb fault.
    WriteDisturb,
    /// Address-decoder fault.
    AddressDecoder,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::StuckAt => "SAF",
            FaultKind::Transition => "TF",
            FaultKind::CouplingInversion => "CFin",
            FaultKind::CouplingIdempotent => "CFid",
            FaultKind::CouplingState => "CFst",
            FaultKind::ReadDestructive => "RDF",
            FaultKind::DeceptiveReadDestructive => "DRDF",
            FaultKind::IncorrectRead => "IRF",
            FaultKind::StuckOpen => "SOF",
            FaultKind::WriteDisturb => "WDF",
            FaultKind::AddressDecoder => "AF",
        };
        f.write_str(s)
    }
}

/// One injected fault instance.
///
/// A fault sees every read and write of the memory and decides how the
/// underlying fault-free state ([`GoodMemory`]) is affected and what value
/// a read returns. Addresses the fault does not involve must behave
/// normally.
pub trait Fault: fmt::Debug {
    /// Short human-readable instance name, e.g. `"SAF0@17"`.
    fn name(&self) -> String;

    /// The fault class.
    fn kind(&self) -> FaultKind;

    /// Performs the (possibly faulty) effect of writing `value` at
    /// `address`.
    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool);

    /// Performs the (possibly faulty) effect of reading `address` and
    /// returns the value observed at the memory outputs.
    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool;

    /// The addresses whose operations can trigger **or** observe this
    /// fault, or `None` when the behaviour is global (any access may
    /// matter, e.g. the stuck-open fault's bit-line history).
    ///
    /// When `Some`, the simulation kernel executes only the walk steps
    /// touching these addresses
    /// ([`crate::executor::run_march_walk_filtered`]): every other cell
    /// behaves fault-free and a March read of a fault-free cell always
    /// matches its expectation, so the filtered run is observationally
    /// equivalent to the full one at `O(ops × involved)` instead of
    /// `O(ops × cells)` cost. Implementations must list every address
    /// whose read can mismatch and every address whose access can change
    /// the fault's trigger state. The default is the conservative `None`.
    fn involved_addresses(&self) -> Option<Vec<Address>> {
        None
    }

    /// The inline lane-masked form of this fault for the batched
    /// multi-fault backend ([`crate::batch`]), or `None` when the fault
    /// has no [`LaneFaultKind`] variant. Every fault model of this crate
    /// returns its variant; the cohort kernel then dispatches it by a
    /// match on plain enum data — no per-owner pointer chase. The default
    /// is the conservative `None`, which makes the
    /// [`crate::batch::FaultBatch`] planner try [`Fault::lane_form`] and
    /// finally fall back to a serial singleton cohort.
    fn lane_kind(&self) -> Option<LaneFaultKind> {
        None
    }

    /// The boxed lane-masked injection form of this fault — the
    /// extensibility escape hatch for *external* fault types that cannot
    /// add a [`LaneFaultKind`] variant. The returned object must
    /// reproduce this fault's behaviour exactly, confined to one bit lane
    /// of a [`LaneMemory`]; the planner batches such faults into separate
    /// boxed cohorts that run the same (generic) kernel through virtual
    /// dispatch. The default derives the form from [`Fault::lane_kind`],
    /// so in-crate models need not implement it; a fault with neither
    /// runs the per-fault path.
    fn lane_form(&self) -> Option<Box<dyn LaneFault>> {
        self.lane_kind()
            .map(|kind| Box::new(kind) as Box<dyn LaneFault>)
    }
}

/// The lane-masked form of one of the crate's own fault models, stored
/// **inline** — the devirtualized counterpart of `Box<dyn LaneFault>`.
///
/// Cohorts of the batched backend hold `Vec<LaneFaultKind>` instead of
/// `Vec<Box<dyn LaneFault>>`, so the kernel's per-owner dispatch is a
/// match on plain enum data sitting contiguously in the cohort array: no
/// heap allocation per fault, no vtable pointer chase per step. The enum
/// is `Copy` and intentionally small (a unit test pins
/// `size_of::<LaneFaultKind>() <= 32`) so packed cohort arrays stay
/// cache-dense; external fault types that cannot appear here use the
/// boxed [`Fault::lane_form`] escape hatch instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LaneFaultKind {
    /// Stuck-at fault.
    StuckAt(StuckAtFault),
    /// Transition fault.
    Transition(TransitionFault),
    /// Inversion coupling fault.
    CouplingInversion(CouplingInversionFault),
    /// Idempotent coupling fault.
    CouplingIdempotent(CouplingIdempotentFault),
    /// State coupling fault.
    CouplingState(CouplingStateFault),
    /// Read destructive fault.
    ReadDestructive(ReadDestructiveFault),
    /// Deceptive read destructive fault.
    DeceptiveReadDestructive(DeceptiveReadDestructiveFault),
    /// Incorrect read fault.
    IncorrectRead(IncorrectReadFault),
    /// Stuck-open fault (history served by the walk's sensed-before
    /// stamp).
    StuckOpen(StuckOpenFault),
    /// Write disturb fault.
    WriteDisturb(WriteDisturbFault),
    /// Address-decoder aliasing fault.
    AddressDecoder(AddressAliasFault),
}

/// The involved addresses of a [`LaneFaultKind`], held inline: every
/// in-crate lane model involves one or two cells, so the set fits a fixed
/// two-slot array and probing a 100k-fault population allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvolvedAddresses {
    addresses: [Address; 2],
    len: u8,
}

impl InvolvedAddresses {
    /// A single-cell involved set.
    pub fn one(address: Address) -> Self {
        Self {
            addresses: [address, address],
            len: 1,
        }
    }

    /// A two-cell involved set.
    pub fn two(first: Address, second: Address) -> Self {
        Self {
            addresses: [first, second],
            len: 2,
        }
    }

    /// The involved addresses as a slice.
    pub fn as_slice(&self) -> &[Address] {
        &self.addresses[..usize::from(self.len)]
    }
}

impl std::ops::Deref for InvolvedAddresses {
    type Target = [Address];

    fn deref(&self) -> &[Address] {
        self.as_slice()
    }
}

impl LaneFaultKind {
    /// The fault class of the wrapped model.
    pub fn kind(&self) -> FaultKind {
        match self {
            LaneFaultKind::StuckAt(_) => FaultKind::StuckAt,
            LaneFaultKind::Transition(_) => FaultKind::Transition,
            LaneFaultKind::CouplingInversion(_) => FaultKind::CouplingInversion,
            LaneFaultKind::CouplingIdempotent(_) => FaultKind::CouplingIdempotent,
            LaneFaultKind::CouplingState(_) => FaultKind::CouplingState,
            LaneFaultKind::ReadDestructive(_) => FaultKind::ReadDestructive,
            LaneFaultKind::DeceptiveReadDestructive(_) => FaultKind::DeceptiveReadDestructive,
            LaneFaultKind::IncorrectRead(_) => FaultKind::IncorrectRead,
            LaneFaultKind::StuckOpen(_) => FaultKind::StuckOpen,
            LaneFaultKind::WriteDisturb(_) => FaultKind::WriteDisturb,
            LaneFaultKind::AddressDecoder(_) => FaultKind::AddressDecoder,
        }
    }

    /// The involved addresses of the wrapped model, inline (see
    /// [`LaneFault::involved`] for the contract) — no allocation.
    pub fn involved(&self) -> InvolvedAddresses {
        match self {
            LaneFaultKind::StuckAt(fault) => fault.lane_involved(),
            LaneFaultKind::Transition(fault) => fault.lane_involved(),
            LaneFaultKind::CouplingInversion(fault) => fault.lane_involved(),
            LaneFaultKind::CouplingIdempotent(fault) => fault.lane_involved(),
            LaneFaultKind::CouplingState(fault) => fault.lane_involved(),
            LaneFaultKind::ReadDestructive(fault) => fault.lane_involved(),
            LaneFaultKind::DeceptiveReadDestructive(fault) => fault.lane_involved(),
            LaneFaultKind::IncorrectRead(fault) => fault.lane_involved(),
            LaneFaultKind::StuckOpen(fault) => fault.lane_involved(),
            LaneFaultKind::WriteDisturb(fault) => fault.lane_involved(),
            LaneFaultKind::AddressDecoder(fault) => fault.lane_involved(),
        }
    }

    /// Performs the faulty effect of writing `value` at `address` in lane
    /// `lane` — a statically dispatched match over the concrete models.
    #[inline]
    pub fn lane_write(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        value: bool,
    ) {
        match self {
            LaneFaultKind::StuckAt(fault) => fault.lane_write(memory, lane, address, value),
            LaneFaultKind::Transition(fault) => fault.lane_write(memory, lane, address, value),
            LaneFaultKind::CouplingInversion(fault) => {
                fault.lane_write(memory, lane, address, value)
            }
            LaneFaultKind::CouplingIdempotent(fault) => {
                fault.lane_write(memory, lane, address, value)
            }
            LaneFaultKind::CouplingState(fault) => fault.lane_write(memory, lane, address, value),
            LaneFaultKind::ReadDestructive(fault) => fault.lane_write(memory, lane, address, value),
            LaneFaultKind::DeceptiveReadDestructive(fault) => {
                fault.lane_write(memory, lane, address, value)
            }
            LaneFaultKind::IncorrectRead(fault) => fault.lane_write(memory, lane, address, value),
            LaneFaultKind::StuckOpen(fault) => fault.lane_write(memory, lane, address, value),
            LaneFaultKind::WriteDisturb(fault) => fault.lane_write(memory, lane, address, value),
            LaneFaultKind::AddressDecoder(fault) => fault.lane_write(memory, lane, address, value),
        }
    }

    /// Performs the faulty effect of reading `address` in lane `lane` —
    /// a statically dispatched match over the concrete models.
    #[inline]
    pub fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        sensed_before: bool,
    ) -> bool {
        match self {
            LaneFaultKind::StuckAt(fault) => fault.lane_read(memory, lane, address, sensed_before),
            LaneFaultKind::Transition(fault) => {
                fault.lane_read(memory, lane, address, sensed_before)
            }
            LaneFaultKind::CouplingInversion(fault) => {
                fault.lane_read(memory, lane, address, sensed_before)
            }
            LaneFaultKind::CouplingIdempotent(fault) => {
                fault.lane_read(memory, lane, address, sensed_before)
            }
            LaneFaultKind::CouplingState(fault) => {
                fault.lane_read(memory, lane, address, sensed_before)
            }
            LaneFaultKind::ReadDestructive(fault) => {
                fault.lane_read(memory, lane, address, sensed_before)
            }
            LaneFaultKind::DeceptiveReadDestructive(fault) => {
                fault.lane_read(memory, lane, address, sensed_before)
            }
            LaneFaultKind::IncorrectRead(fault) => {
                fault.lane_read(memory, lane, address, sensed_before)
            }
            LaneFaultKind::StuckOpen(fault) => {
                fault.lane_read(memory, lane, address, sensed_before)
            }
            LaneFaultKind::WriteDisturb(fault) => {
                fault.lane_read(memory, lane, address, sensed_before)
            }
            LaneFaultKind::AddressDecoder(fault) => {
                fault.lane_read(memory, lane, address, sensed_before)
            }
        }
    }
}

/// The enum participates in every [`LaneFault`] API (the generic cohort
/// kernel, hand-assembled cohorts in tests) with its match dispatch.
impl LaneFault for LaneFaultKind {
    fn involved(&self) -> Vec<Address> {
        LaneFaultKind::involved(self).to_vec()
    }

    fn involved_into(&self, out: &mut Vec<Address>) {
        // The inline set never allocates, so the scratch-reusing kernel
        // gathers enum cohorts' involved addresses allocation-free.
        out.extend_from_slice(&LaneFaultKind::involved(self));
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        LaneFaultKind::lane_write(self, memory, lane, address, value);
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        sensed_before: bool,
    ) -> bool {
        LaneFaultKind::lane_read(self, memory, lane, address, sensed_before)
    }
}

/// Boxed lane forms (the external-fault escape hatch) flow through the
/// same generic kernel as inline enum cohorts.
impl LaneFault for Box<dyn LaneFault> {
    fn involved(&self) -> Vec<Address> {
        (**self).involved()
    }

    fn involved_into(&self, out: &mut Vec<Address>) {
        (**self).involved_into(out);
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        (**self).lane_write(memory, lane, address, value);
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        sensed_before: bool,
    ) -> bool {
        (**self).lane_read(memory, lane, address, sensed_before)
    }
}

/// The lane-masked form of a fault: the same faulty behaviour as its
/// [`Fault`], expressed over a single bit lane of a [`LaneMemory`] so that
/// up to [`LaneMemory::LANES`] independent faults can share one walk scan
/// ([`crate::executor::run_march_lanes`]).
///
/// Implementations must confine every access to the addresses returned by
/// [`LaneFault::involved`] and to their own lane: the batched kernel
/// routes exactly the steps touching those addresses through these
/// methods, and serves every other lane with fault-free whole-word
/// operations. Lane forms are `Send` so parallel sweeps can hand whole
/// cohorts of probed lane forms to worker threads instead of
/// re-instantiating every fault per worker.
pub trait LaneFault: fmt::Debug + Send {
    /// The addresses whose walk steps must be dispatched through this
    /// lane's faulty form — every address whose read can mismatch and
    /// every address whose access can change the fault's trigger state.
    /// Must be non-empty; unlike [`Fault::involved_addresses`] there is no
    /// `None` escape hatch, because a lane form *is* the claim that the
    /// fault's behaviour is confined to these addresses (the stuck-open
    /// fault achieves that through the precomputed sensed-before stamp).
    fn involved(&self) -> Vec<Address>;

    /// Appends the [`LaneFault::involved`] set to `out` without clearing
    /// it — the allocation-free gather used by the scratch-reusing cohort
    /// kernel ([`crate::executor::run_march_lanes_scratch`]). The default
    /// delegates to [`LaneFault::involved`]; in-crate lane forms override
    /// it with their inline sets. Must append exactly the addresses
    /// `involved()` would return, in the same order.
    fn involved_into(&self, out: &mut Vec<Address>) {
        out.extend(self.involved());
    }

    /// Performs the faulty effect of writing `value` at `address` in lane
    /// `lane`.
    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool);

    /// Performs the faulty effect of reading `address` in lane `lane` and
    /// returns the observed value. `sensed_before` is the value the sense
    /// amplifier holds before this step in a universe where every other
    /// cell is fault-free, precomputed per walk step at build time — only
    /// history-dependent faults (the stuck-open fault) consume it.
    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        sensed_before: bool,
    ) -> bool;
}

/// A fault-free memory wrapped with one injected fault.
#[derive(Debug)]
pub struct FaultyMemory {
    base: GoodMemory,
    fault: Box<dyn Fault>,
}

impl FaultyMemory {
    /// Wraps `base` with `fault`.
    pub fn new(base: GoodMemory, fault: Box<dyn Fault>) -> Self {
        Self { base, fault }
    }

    /// Convenience constructor: a zero-initialised memory of `capacity`
    /// cells with `fault` injected.
    pub fn with_capacity(capacity: u32, fault: Box<dyn Fault>) -> Self {
        Self::new(GoodMemory::new(capacity), fault)
    }

    /// The injected fault.
    pub fn fault(&self) -> &dyn Fault {
        self.fault.as_ref()
    }

    /// The underlying fault-free state.
    pub fn base(&self) -> &GoodMemory {
        &self.base
    }
}

impl MemoryModel for FaultyMemory {
    fn capacity(&self) -> u32 {
        self.base.capacity()
    }

    fn read(&mut self, address: Address) -> bool {
        self.fault.read(&mut self.base, address)
    }

    fn write(&mut self, address: Address, value: bool) {
        self.fault.write(&mut self.base, address, value);
    }
}

/// A generator of fault instances, so coverage experiments can build fresh
/// (stateful) fault objects for every run. Factories are `Send + Sync` so
/// that parallel sweeps can instantiate faults from worker threads.
pub type FaultFactory = Box<dyn Fn() -> Box<dyn Fault> + Send + Sync>;

/// Builds the standard fault list used by the coverage and
/// degree-of-freedom experiments: every fault class instantiated at a
/// handful of representative victim locations (first cell, a mid-array
/// cell, last cell) with a neighbouring aggressor where applicable.
pub fn standard_fault_list(organization: &ArrayOrganization) -> Vec<FaultFactory> {
    let capacity = organization.capacity();
    assert!(capacity >= 4, "fault list needs at least four cells");
    let victims = [0, capacity / 2, capacity - 1];
    let mut factories: Vec<FaultFactory> = Vec::new();

    for &v in &victims {
        let victim = Address::new(v);
        // The aggressor is the next cell (wrapping away from the end).
        let aggressor = Address::new(if v + 1 < capacity { v + 1 } else { v - 1 });

        for value in [false, true] {
            factories.push(Box::new(move || Box::new(StuckAtFault::new(victim, value))));
            factories.push(Box::new(move || {
                Box::new(CouplingIdempotentFault::new(aggressor, victim, true, value))
            }));
            factories.push(Box::new(move || {
                Box::new(CouplingStateFault::new(aggressor, victim, value, !value))
            }));
        }
        for rising in [false, true] {
            factories.push(Box::new(move || {
                Box::new(TransitionFault::new(victim, rising))
            }));
            factories.push(Box::new(move || {
                Box::new(CouplingInversionFault::new(aggressor, victim, rising))
            }));
        }
        factories.push(Box::new(move || {
            Box::new(ReadDestructiveFault::new(victim))
        }));
        factories.push(Box::new(move || {
            Box::new(DeceptiveReadDestructiveFault::new(victim))
        }));
        factories.push(Box::new(move || Box::new(IncorrectReadFault::new(victim))));
        factories.push(Box::new(move || Box::new(StuckOpenFault::new(victim))));
        factories.push(Box::new(move || Box::new(WriteDisturbFault::new(victim))));
        factories.push(Box::new(move || {
            Box::new(AddressAliasFault::new(victim, aggressor))
        }));
    }
    factories
}

/// Like [`standard_fault_list`], but restricted to the *static* fault
/// classes for which the first March degree of freedom (arbitrary address
/// order) provably preserves detection. The stuck-open fault is excluded:
/// its observable behaviour depends on the value left on the bit lines by
/// the *previous* read, so whether a given March test happens to catch a
/// specific SOF instance legitimately depends on the address sequence.
pub fn static_fault_list(organization: &ArrayOrganization) -> Vec<FaultFactory> {
    standard_fault_list(organization)
        .into_iter()
        .filter(|factory| factory().kind() != FaultKind::StuckOpen)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_memory_delegates_to_fault() {
        let fault = Box::new(StuckAtFault::new(Address::new(2), true));
        let mut memory = FaultyMemory::with_capacity(8, fault);
        assert_eq!(memory.capacity(), 8);
        memory.write(Address::new(2), false);
        assert!(memory.read(Address::new(2)), "cell 2 is stuck at 1");
        memory.write(Address::new(3), true);
        assert!(memory.read(Address::new(3)), "other cells behave normally");
        assert_eq!(memory.fault().kind(), FaultKind::StuckAt);
        assert!(memory.base().get(Address::new(3)));
    }

    #[test]
    fn standard_fault_list_covers_every_kind() {
        let organization = ArrayOrganization::new(4, 4).unwrap();
        let list = standard_fault_list(&organization);
        assert!(list.len() > 30);
        let kinds: std::collections::BTreeSet<String> = list
            .iter()
            .map(|factory| factory().kind().to_string())
            .collect();
        for expected in [
            "SAF", "TF", "CFin", "CFid", "CFst", "RDF", "DRDF", "IRF", "SOF", "WDF", "AF",
        ] {
            assert!(kinds.contains(expected), "missing fault kind {expected}");
        }
    }

    #[test]
    fn static_fault_list_excludes_stuck_open() {
        let organization = ArrayOrganization::new(4, 4).unwrap();
        let list = static_fault_list(&organization);
        assert!(!list.is_empty());
        assert!(list.iter().all(|f| f().kind() != FaultKind::StuckOpen));
        assert!(list.len() < standard_fault_list(&organization).len());
    }

    #[test]
    fn lane_fault_kind_stays_copy_and_small() {
        // Cohort arrays store lane forms inline; a variant that bloats the
        // enum would silently fatten every packed cohort, so the size is
        // pinned. The `Copy` bound is what lets packed sweeps move lane
        // forms into execution order without boxing or locking.
        fn assert_copy<T: Copy + Send>() {}
        assert_copy::<LaneFaultKind>();
        assert!(
            std::mem::size_of::<LaneFaultKind>() <= 32,
            "LaneFaultKind grew to {} bytes — keep cohort arrays dense",
            std::mem::size_of::<LaneFaultKind>()
        );
    }

    #[test]
    fn every_standard_fault_has_an_inline_lane_kind() {
        let organization = ArrayOrganization::new(4, 4).unwrap();
        for factory in standard_fault_list(&organization) {
            let fault = factory();
            let kind = fault
                .lane_kind()
                .unwrap_or_else(|| panic!("{} has no lane kind", fault.name()));
            assert_eq!(kind.kind(), fault.kind(), "{}", fault.name());
            // The derived boxed form (the escape hatch) and the inline
            // involved set agree with the trait contract.
            let boxed = fault.lane_form().expect("derived from lane_kind");
            assert_eq!(
                LaneFault::involved(&boxed),
                LaneFaultKind::involved(&kind).to_vec(),
                "{}",
                fault.name()
            );
            assert!(!kind.involved().is_empty(), "{}", fault.name());
            assert!(kind.involved().len() <= 2, "{}", fault.name());
        }
    }

    #[test]
    fn involved_addresses_inline_set_exposes_its_slice() {
        let one = InvolvedAddresses::one(Address::new(7));
        assert_eq!(one.as_slice(), &[Address::new(7)]);
        let two = InvolvedAddresses::two(Address::new(1), Address::new(9));
        assert_eq!(&*two, &[Address::new(1), Address::new(9)]);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn fault_kind_display() {
        assert_eq!(FaultKind::StuckAt.to_string(), "SAF");
        assert_eq!(FaultKind::DeceptiveReadDestructive.to_string(), "DRDF");
        assert_eq!(FaultKind::AddressDecoder.to_string(), "AF");
    }

    #[test]
    #[should_panic(expected = "at least four cells")]
    fn tiny_memory_rejected() {
        let organization = ArrayOrganization::new(1, 2).unwrap();
        let _ = standard_fault_list(&organization);
    }
}
