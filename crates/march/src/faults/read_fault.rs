//! Read-related faults: RDF, DRDF and IRF.
//!
//! The read-destructive family is the subject of the paper authors' earlier
//! work (JETTA 2005, cited as \[10\]): the read operation itself disturbs the
//! cell. The *deceptive* variant returns the correct value while flipping
//! the cell, which is why detecting it requires a read-after-read pattern
//! such as the one in March SS.

use sram_model::address::Address;

use super::{Fault, FaultKind, InvolvedAddresses, LaneFault, LaneFaultKind};
use crate::memory::{GoodMemory, LaneMemory};

/// Read destructive fault: a read flips the cell and returns the flipped
/// (wrong) value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadDestructiveFault {
    victim: Address,
}

impl ReadDestructiveFault {
    /// Creates an RDF on `victim`.
    pub fn new(victim: Address) -> Self {
        Self { victim }
    }
}

impl Fault for ReadDestructiveFault {
    fn name(&self) -> String {
        format!("RDF@{}", self.victim.value())
    }

    fn kind(&self) -> FaultKind {
        FaultKind::ReadDestructive
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        memory.set(address, value);
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        if address == self.victim {
            let flipped = !memory.get(address);
            memory.set(address, flipped);
            flipped
        } else {
            memory.get(address)
        }
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        Some(vec![self.victim])
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::ReadDestructive(*self))
    }
}

impl ReadDestructiveFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::one(self.victim)
    }
}

impl LaneFault for ReadDestructiveFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.victim]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        memory.set_lane(address, lane, value);
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        if address == self.victim {
            let flipped = !memory.get_lane(address, lane);
            memory.set_lane(address, lane, flipped);
            flipped
        } else {
            memory.get_lane(address, lane)
        }
    }
}

/// Deceptive read destructive fault: a read returns the correct value but
/// flips the cell afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeceptiveReadDestructiveFault {
    victim: Address,
}

impl DeceptiveReadDestructiveFault {
    /// Creates a DRDF on `victim`.
    pub fn new(victim: Address) -> Self {
        Self { victim }
    }
}

impl Fault for DeceptiveReadDestructiveFault {
    fn name(&self) -> String {
        format!("DRDF@{}", self.victim.value())
    }

    fn kind(&self) -> FaultKind {
        FaultKind::DeceptiveReadDestructive
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        memory.set(address, value);
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        let correct = memory.get(address);
        if address == self.victim {
            memory.set(address, !correct);
        }
        correct
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        Some(vec![self.victim])
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::DeceptiveReadDestructive(*self))
    }
}

impl DeceptiveReadDestructiveFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::one(self.victim)
    }
}

impl LaneFault for DeceptiveReadDestructiveFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.victim]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        memory.set_lane(address, lane, value);
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        let correct = memory.get_lane(address, lane);
        if address == self.victim {
            memory.set_lane(address, lane, !correct);
        }
        correct
    }
}

/// Incorrect read fault: a read returns the complement of the stored value
/// while leaving the cell intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncorrectReadFault {
    victim: Address,
}

impl IncorrectReadFault {
    /// Creates an IRF on `victim`.
    pub fn new(victim: Address) -> Self {
        Self { victim }
    }
}

impl Fault for IncorrectReadFault {
    fn name(&self) -> String {
        format!("IRF@{}", self.victim.value())
    }

    fn kind(&self) -> FaultKind {
        FaultKind::IncorrectRead
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        memory.set(address, value);
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        let value = memory.get(address);
        if address == self.victim {
            !value
        } else {
            value
        }
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        Some(vec![self.victim])
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::IncorrectRead(*self))
    }
}

impl IncorrectReadFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::one(self.victim)
    }
}

impl LaneFault for IncorrectReadFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.victim]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        memory.set_lane(address, lane, value);
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        let value = memory.get_lane(address, lane);
        if address == self.victim {
            !value
        } else {
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdf_flips_and_returns_wrong_value() {
        let mut fault = ReadDestructiveFault::new(Address::new(0));
        let mut memory = GoodMemory::new(2);
        memory.set(Address::new(0), true);
        assert!(
            !fault.read(&mut memory, Address::new(0)),
            "wrong value returned"
        );
        assert!(!memory.get(Address::new(0)), "cell flipped");
        assert_eq!(fault.kind(), FaultKind::ReadDestructive);
    }

    #[test]
    fn drdf_returns_correct_value_but_flips() {
        let mut fault = DeceptiveReadDestructiveFault::new(Address::new(0));
        let mut memory = GoodMemory::new(2);
        memory.set(Address::new(0), true);
        assert!(
            fault.read(&mut memory, Address::new(0)),
            "first read looks fine"
        );
        assert!(!memory.get(Address::new(0)), "but the cell flipped");
        assert!(
            !fault.read(&mut memory, Address::new(0)),
            "second read exposes it"
        );
        assert_eq!(fault.kind(), FaultKind::DeceptiveReadDestructive);
    }

    #[test]
    fn irf_returns_complement_without_flipping() {
        let mut fault = IncorrectReadFault::new(Address::new(1));
        let mut memory = GoodMemory::new(2);
        memory.set(Address::new(1), true);
        assert!(!fault.read(&mut memory, Address::new(1)));
        assert!(memory.get(Address::new(1)), "cell unchanged");
        assert_eq!(fault.kind(), FaultKind::IncorrectRead);
    }

    #[test]
    fn non_victim_cells_behave_normally() {
        let mut fault = ReadDestructiveFault::new(Address::new(0));
        let mut memory = GoodMemory::new(2);
        fault.write(&mut memory, Address::new(1), true);
        assert!(fault.read(&mut memory, Address::new(1)));
        assert!(fault.read(&mut memory, Address::new(1)), "still intact");
    }
}
