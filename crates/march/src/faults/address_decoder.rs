//! Address-decoder faults (AF).

use sram_model::address::Address;

use super::{Fault, FaultKind, InvolvedAddresses, LaneFault, LaneFaultKind};
use crate::memory::{GoodMemory, LaneMemory};

/// Address aliasing fault: accesses to one address are routed to another
/// cell (the classic "no cell accessed / wrong cell accessed" decoder
/// fault collapsed into its observable aliasing form). Reads and writes of
/// `aliased` actually hit `target`; the cell behind `aliased` is never
/// accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressAliasFault {
    aliased: Address,
    target: Address,
}

impl AddressAliasFault {
    /// Creates an aliasing fault redirecting `aliased` to `target`.
    ///
    /// # Panics
    ///
    /// Panics if the two addresses are equal (that would be a fault-free
    /// decoder).
    pub fn new(aliased: Address, target: Address) -> Self {
        assert_ne!(aliased, target, "aliased and target addresses must differ");
        Self { aliased, target }
    }

    fn redirect(&self, address: Address) -> Address {
        if address == self.aliased {
            self.target
        } else {
            address
        }
    }
}

impl Fault for AddressAliasFault {
    fn name(&self) -> String {
        format!("AF({}→{})", self.aliased.value(), self.target.value())
    }

    fn kind(&self) -> FaultKind {
        FaultKind::AddressDecoder
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        memory.set(self.redirect(address), value);
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        memory.get(self.redirect(address))
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        // Accesses to `aliased` land on `target`, and reads of `target`
        // observe the corruption — both cells' operations matter.
        Some(vec![self.aliased, self.target])
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::AddressDecoder(*self))
    }
}

impl AddressAliasFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::two(self.aliased, self.target)
    }
}

impl LaneFault for AddressAliasFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.aliased, self.target]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        memory.set_lane(self.redirect(address), lane, value);
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        memory.get_lane(self.redirect(address), lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_are_redirected() {
        let mut fault = AddressAliasFault::new(Address::new(2), Address::new(5));
        let mut memory = GoodMemory::new(8);
        fault.write(&mut memory, Address::new(2), true);
        // The write landed on cell 5, not cell 2.
        assert!(memory.get(Address::new(5)));
        assert!(!memory.get(Address::new(2)));
        // Reading address 2 sees cell 5.
        assert!(fault.read(&mut memory, Address::new(2)));
        assert_eq!(fault.kind(), FaultKind::AddressDecoder);
        assert_eq!(fault.name(), "AF(2→5)");
    }

    #[test]
    fn other_addresses_unaffected() {
        let mut fault = AddressAliasFault::new(Address::new(2), Address::new(5));
        let mut memory = GoodMemory::new(8);
        fault.write(&mut memory, Address::new(3), true);
        assert!(fault.read(&mut memory, Address::new(3)));
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn identity_alias_rejected() {
        let _ = AddressAliasFault::new(Address::new(1), Address::new(1));
    }
}
