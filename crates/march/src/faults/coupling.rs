//! Two-cell coupling faults (CFin, CFid, CFst).

use sram_model::address::Address;

use super::{Fault, FaultKind, InvolvedAddresses, LaneFault, LaneFaultKind};
use crate::memory::{GoodMemory, LaneMemory};

/// Inversion coupling fault: a chosen transition written into the aggressor
/// cell inverts the victim cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CouplingInversionFault {
    aggressor: Address,
    victim: Address,
    /// `true` → triggered by a 0→1 write on the aggressor, otherwise by a
    /// 1→0 write.
    rising: bool,
}

impl CouplingInversionFault {
    /// Creates an inversion coupling fault.
    ///
    /// # Panics
    ///
    /// Panics if aggressor and victim are the same cell.
    pub fn new(aggressor: Address, victim: Address, rising: bool) -> Self {
        assert_ne!(aggressor, victim, "aggressor and victim must differ");
        Self {
            aggressor,
            victim,
            rising,
        }
    }
}

impl Fault for CouplingInversionFault {
    fn name(&self) -> String {
        let dir = if self.rising { "↑" } else { "↓" };
        format!(
            "CFin({}{dir};{})",
            self.aggressor.value(),
            self.victim.value()
        )
    }

    fn kind(&self) -> FaultKind {
        FaultKind::CouplingInversion
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        if address == self.aggressor {
            let before = memory.get(address);
            memory.set(address, value);
            let triggered = if self.rising {
                !before && value
            } else {
                before && !value
            };
            if triggered {
                let v = memory.get(self.victim);
                memory.set(self.victim, !v);
            }
        } else {
            memory.set(address, value);
        }
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        memory.get(address)
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        // Aggressor writes trigger the inversion; victim accesses observe
        // (and can overwrite) the corrupted cell.
        Some(vec![self.aggressor, self.victim])
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::CouplingInversion(*self))
    }
}

impl CouplingInversionFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::two(self.aggressor, self.victim)
    }
}

impl LaneFault for CouplingInversionFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.aggressor, self.victim]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        if address == self.aggressor {
            let before = memory.get_lane(address, lane);
            memory.set_lane(address, lane, value);
            let triggered = if self.rising {
                !before && value
            } else {
                before && !value
            };
            if triggered {
                let v = memory.get_lane(self.victim, lane);
                memory.set_lane(self.victim, lane, !v);
            }
        } else {
            memory.set_lane(address, lane, value);
        }
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        memory.get_lane(address, lane)
    }
}

/// Idempotent coupling fault: a chosen transition on the aggressor forces
/// the victim to a fixed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CouplingIdempotentFault {
    aggressor: Address,
    victim: Address,
    rising: bool,
    forced_value: bool,
}

impl CouplingIdempotentFault {
    /// Creates an idempotent coupling fault.
    ///
    /// # Panics
    ///
    /// Panics if aggressor and victim are the same cell.
    pub fn new(aggressor: Address, victim: Address, rising: bool, forced_value: bool) -> Self {
        assert_ne!(aggressor, victim, "aggressor and victim must differ");
        Self {
            aggressor,
            victim,
            rising,
            forced_value,
        }
    }
}

impl Fault for CouplingIdempotentFault {
    fn name(&self) -> String {
        let dir = if self.rising { "↑" } else { "↓" };
        format!(
            "CFid({}{dir};{}={})",
            self.aggressor.value(),
            self.victim.value(),
            u8::from(self.forced_value)
        )
    }

    fn kind(&self) -> FaultKind {
        FaultKind::CouplingIdempotent
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        if address == self.aggressor {
            let before = memory.get(address);
            memory.set(address, value);
            let triggered = if self.rising {
                !before && value
            } else {
                before && !value
            };
            if triggered {
                memory.set(self.victim, self.forced_value);
            }
        } else {
            memory.set(address, value);
        }
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        memory.get(address)
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        Some(vec![self.aggressor, self.victim])
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::CouplingIdempotent(*self))
    }
}

impl CouplingIdempotentFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::two(self.aggressor, self.victim)
    }
}

impl LaneFault for CouplingIdempotentFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.aggressor, self.victim]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        if address == self.aggressor {
            let before = memory.get_lane(address, lane);
            memory.set_lane(address, lane, value);
            let triggered = if self.rising {
                !before && value
            } else {
                before && !value
            };
            if triggered {
                memory.set_lane(self.victim, lane, self.forced_value);
            }
        } else {
            memory.set_lane(address, lane, value);
        }
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        memory.get_lane(address, lane)
    }
}

/// State coupling fault: while the aggressor holds a given state, the victim
/// is forced to a fixed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CouplingStateFault {
    aggressor: Address,
    victim: Address,
    aggressor_state: bool,
    forced_value: bool,
}

impl CouplingStateFault {
    /// Creates a state coupling fault.
    ///
    /// # Panics
    ///
    /// Panics if aggressor and victim are the same cell.
    pub fn new(
        aggressor: Address,
        victim: Address,
        aggressor_state: bool,
        forced_value: bool,
    ) -> Self {
        assert_ne!(aggressor, victim, "aggressor and victim must differ");
        Self {
            aggressor,
            victim,
            aggressor_state,
            forced_value,
        }
    }

    fn enforce(&self, memory: &mut GoodMemory) {
        if memory.get(self.aggressor) == self.aggressor_state {
            memory.set(self.victim, self.forced_value);
        }
    }
}

impl Fault for CouplingStateFault {
    fn name(&self) -> String {
        format!(
            "CFst({}={};{}={})",
            self.aggressor.value(),
            u8::from(self.aggressor_state),
            self.victim.value(),
            u8::from(self.forced_value)
        )
    }

    fn kind(&self) -> FaultKind {
        FaultKind::CouplingState
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        memory.set(address, value);
        self.enforce(memory);
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        self.enforce(memory);
        memory.get(address)
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        // `enforce` runs on every access, but its outcome only changes
        // when the aggressor's state changes (aggressor writes) and is
        // only observable through the victim — both cells' operations
        // cover every trigger and observation point.
        Some(vec![self.aggressor, self.victim])
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::CouplingState(*self))
    }
}

impl CouplingStateFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::two(self.aggressor, self.victim)
    }

    fn enforce_lane(&self, memory: &mut LaneMemory, lane: u32) {
        if memory.get_lane(self.aggressor, lane) == self.aggressor_state {
            memory.set_lane(self.victim, lane, self.forced_value);
        }
    }
}

impl LaneFault for CouplingStateFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.aggressor, self.victim]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        memory.set_lane(address, lane, value);
        self.enforce_lane(memory, lane);
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        self.enforce_lane(memory, lane);
        memory.get_lane(address, lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversion_coupling_flips_victim_on_rising_aggressor() {
        let mut fault = CouplingInversionFault::new(Address::new(1), Address::new(0), true);
        let mut memory = GoodMemory::new(4);
        memory.set(Address::new(0), true);
        fault.write(&mut memory, Address::new(1), true); // 0→1 rising
        assert!(!fault.read(&mut memory, Address::new(0)), "victim inverted");
        // A second write of 1 is not a transition and does nothing.
        fault.write(&mut memory, Address::new(1), true);
        assert!(!fault.read(&mut memory, Address::new(0)));
        assert_eq!(fault.kind(), FaultKind::CouplingInversion);
    }

    #[test]
    fn idempotent_coupling_forces_value() {
        let mut fault = CouplingIdempotentFault::new(Address::new(2), Address::new(3), false, true);
        let mut memory = GoodMemory::new(4);
        memory.set(Address::new(2), true);
        fault.write(&mut memory, Address::new(2), false); // falling transition
        assert!(
            fault.read(&mut memory, Address::new(3)),
            "victim forced to 1"
        );
        assert!(fault.name().starts_with("CFid"));
    }

    #[test]
    fn state_coupling_enforced_on_read_and_write() {
        let mut fault = CouplingStateFault::new(Address::new(0), Address::new(1), true, false);
        let mut memory = GoodMemory::new(4);
        memory.set(Address::new(1), true);
        // Aggressor at 0: victim unaffected.
        assert!(fault.read(&mut memory, Address::new(1)));
        // Aggressor written to 1: victim forced low.
        fault.write(&mut memory, Address::new(0), true);
        assert!(!fault.read(&mut memory, Address::new(1)));
        assert_eq!(fault.kind(), FaultKind::CouplingState);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_cell_coupling_rejected() {
        let _ = CouplingInversionFault::new(Address::new(1), Address::new(1), true);
    }
}
