//! Write disturb faults (WDF).

use sram_model::address::Address;

use super::{Fault, FaultKind, InvolvedAddresses, LaneFault, LaneFaultKind};
use crate::memory::{GoodMemory, LaneMemory};

/// Write disturb fault: a *non-transition* write (writing the value the
/// cell already holds) flips the cell. Transition writes behave normally.
/// Detection requires a read immediately after a non-transition write,
/// which is why simple tests like MATS+ miss it and March SS catches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteDisturbFault {
    victim: Address,
}

impl WriteDisturbFault {
    /// Creates a WDF on `victim`.
    pub fn new(victim: Address) -> Self {
        Self { victim }
    }
}

impl Fault for WriteDisturbFault {
    fn name(&self) -> String {
        format!("WDF@{}", self.victim.value())
    }

    fn kind(&self) -> FaultKind {
        FaultKind::WriteDisturb
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        if address == self.victim && memory.get(address) == value {
            memory.set(address, !value);
        } else {
            memory.set(address, value);
        }
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        memory.get(address)
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        Some(vec![self.victim])
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::WriteDisturb(*self))
    }
}

impl WriteDisturbFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::one(self.victim)
    }
}

impl LaneFault for WriteDisturbFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.victim]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        if address == self.victim && memory.get_lane(address, lane) == value {
            memory.set_lane(address, lane, !value);
        } else {
            memory.set_lane(address, lane, value);
        }
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        memory.get_lane(address, lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_transition_write_flips_the_cell() {
        let mut fault = WriteDisturbFault::new(Address::new(0));
        let mut memory = GoodMemory::new(2);
        // Cell holds 0; writing 0 again disturbs it to 1.
        fault.write(&mut memory, Address::new(0), false);
        assert!(fault.read(&mut memory, Address::new(0)));
        assert_eq!(fault.kind(), FaultKind::WriteDisturb);
    }

    #[test]
    fn transition_write_is_normal() {
        let mut fault = WriteDisturbFault::new(Address::new(0));
        let mut memory = GoodMemory::new(2);
        fault.write(&mut memory, Address::new(0), true);
        assert!(fault.read(&mut memory, Address::new(0)));
        fault.write(&mut memory, Address::new(0), false);
        assert!(!fault.read(&mut memory, Address::new(0)));
    }

    #[test]
    fn other_cells_unaffected() {
        let mut fault = WriteDisturbFault::new(Address::new(0));
        let mut memory = GoodMemory::new(2);
        fault.write(&mut memory, Address::new(1), false);
        assert!(!fault.read(&mut memory, Address::new(1)));
    }
}
