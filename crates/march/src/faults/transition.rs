//! Transition faults (TF).

use sram_model::address::Address;

use super::{Fault, FaultKind, InvolvedAddresses, LaneFault, LaneFaultKind};
use crate::memory::{GoodMemory, LaneMemory};

/// A cell that fails one of its transitions: an *up* transition fault never
/// goes from `0` to `1`; a *down* transition fault never goes from `1` to
/// `0`. All other behaviour is normal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionFault {
    victim: Address,
    /// `true` → the 0→1 (up) transition fails; `false` → the 1→0 (down)
    /// transition fails.
    up_fails: bool,
}

impl TransitionFault {
    /// Creates a transition fault on `victim`; `up_fails` selects which
    /// transition is broken.
    pub fn new(victim: Address, up_fails: bool) -> Self {
        Self { victim, up_fails }
    }
}

impl Fault for TransitionFault {
    fn name(&self) -> String {
        let dir = if self.up_fails { "up" } else { "down" };
        format!("TF-{dir}@{}", self.victim.value())
    }

    fn kind(&self) -> FaultKind {
        FaultKind::Transition
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        if address == self.victim {
            let current = memory.get(address);
            let failing = if self.up_fails {
                !current && value
            } else {
                current && !value
            };
            if failing {
                return; // The transition does not happen.
            }
        }
        memory.set(address, value);
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        memory.get(address)
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        Some(vec![self.victim])
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::Transition(*self))
    }
}

impl TransitionFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::one(self.victim)
    }
}

impl LaneFault for TransitionFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.victim]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        if address == self.victim {
            let current = memory.get_lane(address, lane);
            let failing = if self.up_fails {
                !current && value
            } else {
                current && !value
            };
            if failing {
                return; // The transition does not happen.
            }
        }
        memory.set_lane(address, lane, value);
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        _sensed_before: bool,
    ) -> bool {
        memory.get_lane(address, lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn up_transition_fails() {
        let mut fault = TransitionFault::new(Address::new(1), true);
        let mut memory = GoodMemory::new(4);
        fault.write(&mut memory, Address::new(1), true);
        assert!(!fault.read(&mut memory, Address::new(1)), "0→1 must fail");
        // The down transition still works after forcing a 1 directly.
        memory.set(Address::new(1), true);
        fault.write(&mut memory, Address::new(1), false);
        assert!(!fault.read(&mut memory, Address::new(1)));
        assert_eq!(fault.name(), "TF-up@1");
        assert_eq!(fault.kind(), FaultKind::Transition);
    }

    #[test]
    fn down_transition_fails() {
        let mut fault = TransitionFault::new(Address::new(2), false);
        let mut memory = GoodMemory::new(4);
        fault.write(&mut memory, Address::new(2), true);
        assert!(fault.read(&mut memory, Address::new(2)), "0→1 works");
        fault.write(&mut memory, Address::new(2), false);
        assert!(fault.read(&mut memory, Address::new(2)), "1→0 must fail");
    }

    #[test]
    fn other_cells_unaffected() {
        let mut fault = TransitionFault::new(Address::new(2), false);
        let mut memory = GoodMemory::new(4);
        fault.write(&mut memory, Address::new(0), true);
        fault.write(&mut memory, Address::new(0), false);
        assert!(!fault.read(&mut memory, Address::new(0)));
    }
}
