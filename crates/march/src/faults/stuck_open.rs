//! Stuck-open faults (SOF).

use sram_model::address::Address;

use super::{Fault, FaultKind, InvolvedAddresses, LaneFault, LaneFaultKind};
use crate::memory::{GoodMemory, LaneMemory};

/// Stuck-open fault: the cell cannot be accessed at all (e.g. a broken
/// access transistor). Writes to it are lost and a read returns whatever
/// value the sense amplifier produced on the *previous* read, because the
/// open cell leaves the bit lines undriven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckOpenFault {
    victim: Address,
    last_sensed: bool,
}

impl StuckOpenFault {
    /// Creates an SOF on `victim`. The sense-amplifier history starts at
    /// `0`.
    pub fn new(victim: Address) -> Self {
        Self {
            victim,
            last_sensed: false,
        }
    }
}

impl Fault for StuckOpenFault {
    fn name(&self) -> String {
        format!("SOF@{}", self.victim.value())
    }

    fn kind(&self) -> FaultKind {
        FaultKind::StuckOpen
    }

    fn write(&mut self, memory: &mut GoodMemory, address: Address, value: bool) {
        if address != self.victim {
            memory.set(address, value);
        }
        // Writes to the victim are silently lost.
    }

    fn read(&mut self, memory: &mut GoodMemory, address: Address) -> bool {
        if address == self.victim {
            // The undriven bit lines leave the previous sensed value.
            self.last_sensed
        } else {
            let value = memory.get(address);
            self.last_sensed = value;
            value
        }
    }

    fn involved_addresses(&self) -> Option<Vec<Address>> {
        // A victim read returns the value sensed by the previous read of
        // *any* cell, so every read updates the trigger state: the fault
        // is global and must run the full walk.
        None
    }

    fn lane_kind(&self) -> Option<LaneFaultKind> {
        Some(LaneFaultKind::StuckOpen(*self))
    }
}

impl StuckOpenFault {
    pub(crate) fn lane_involved(&self) -> InvolvedAddresses {
        InvolvedAddresses::one(self.victim)
    }
}

/// The lane form of the stuck-open fault turns the globally
/// history-dependent model into a localized one: in a lane where every
/// cell but the victim is fault-free and the walk is locality-safe, each
/// non-victim read returns exactly its expected value, so the value left
/// on the sense amplifier before any step is a pure function of the walk.
/// The executor precomputes it per step at walk-build time (the
/// sensed-before stamp, which tracks the latest read at an address other
/// than the step's own — victim reads leave the sense amplifier
/// untouched) and hands it to [`LaneFault::lane_read`], which makes the lane
/// form exactly equivalent to the serial full-walk simulation while only
/// dispatching the victim's steps.
impl LaneFault for StuckOpenFault {
    fn involved(&self) -> Vec<Address> {
        vec![self.victim]
    }

    fn lane_write(&mut self, memory: &mut LaneMemory, lane: u32, address: Address, value: bool) {
        if address != self.victim {
            memory.set_lane(address, lane, value);
        }
        // Writes to the victim are silently lost.
    }

    fn lane_read(
        &mut self,
        memory: &mut LaneMemory,
        lane: u32,
        address: Address,
        sensed_before: bool,
    ) -> bool {
        if address == self.victim {
            // The undriven bit lines leave the previously sensed value,
            // precomputed per step by the walk.
            sensed_before
        } else {
            memory.get_lane(address, lane)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_to_victim_are_lost() {
        let mut fault = StuckOpenFault::new(Address::new(1));
        let mut memory = GoodMemory::new(4);
        fault.write(&mut memory, Address::new(1), true);
        assert!(!memory.get(Address::new(1)));
        assert_eq!(fault.kind(), FaultKind::StuckOpen);
    }

    #[test]
    fn reads_return_previous_sensed_value() {
        let mut fault = StuckOpenFault::new(Address::new(1));
        let mut memory = GoodMemory::new(4);
        memory.set(Address::new(0), true);
        assert!(fault.read(&mut memory, Address::new(0)));
        // The victim now "reads" the value left over from the previous read.
        assert!(fault.read(&mut memory, Address::new(1)));
        memory.set(Address::new(2), false);
        assert!(!fault.read(&mut memory, Address::new(2)));
        assert!(!fault.read(&mut memory, Address::new(1)));
    }
}
