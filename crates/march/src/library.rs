//! Library of published March algorithms.
//!
//! The five algorithms of the paper's Table 1 are here (MATS+, March C-,
//! March SS, March SR, March G) together with several other classics that
//! are useful for ablation experiments. Element sequences follow van de
//! Goor's *Testing Semiconductor Memories* and the original publications;
//! each constructor's unit test pins the element/operation/read/write
//! counts so Table 1's workload statistics are reproduced exactly.

use crate::algorithm::MarchTest;
use crate::element::MarchElement;
use crate::operation::MarchOp::*;

/// MATS: `{⇕(w0); ⇕(r0,w1); ⇕(r1)}` — the minimal stuck-at test.
pub fn mats() -> MarchTest {
    MarchTest::new(
        "MATS",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::either(vec![R0, W1]),
            MarchElement::either(vec![R1]),
        ],
    )
}

/// MATS+: `{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}` (Table 1: 3 elements, 5 ops,
/// 2 reads, 3 writes).
pub fn mats_plus() -> MarchTest {
    MarchTest::new(
        "MATS+",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::ascending(vec![R0, W1]),
            MarchElement::descending(vec![R1, W0]),
        ],
    )
}

/// MATS++: `{⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}`.
pub fn mats_plus_plus() -> MarchTest {
    MarchTest::new(
        "MATS++",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::ascending(vec![R0, W1]),
            MarchElement::descending(vec![R1, W0, R0]),
        ],
    )
}

/// March X: `{⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)}`.
pub fn march_x() -> MarchTest {
    MarchTest::new(
        "March X",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::ascending(vec![R0, W1]),
            MarchElement::descending(vec![R1, W0]),
            MarchElement::either(vec![R0]),
        ],
    )
}

/// March Y: `{⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)}`.
pub fn march_y() -> MarchTest {
    MarchTest::new(
        "March Y",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::ascending(vec![R0, W1, R1]),
            MarchElement::descending(vec![R1, W0, R0]),
            MarchElement::either(vec![R0]),
        ],
    )
}

/// March C-: `{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}`
/// (Table 1: 6 elements, 10 ops, 5 reads, 5 writes).
pub fn march_c_minus() -> MarchTest {
    MarchTest::new(
        "March C-",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::ascending(vec![R0, W1]),
            MarchElement::ascending(vec![R1, W0]),
            MarchElement::descending(vec![R0, W1]),
            MarchElement::descending(vec![R1, W0]),
            MarchElement::either(vec![R0]),
        ],
    )
}

/// March A: `{⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}`.
pub fn march_a() -> MarchTest {
    MarchTest::new(
        "March A",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::ascending(vec![R0, W1, W0, W1]),
            MarchElement::ascending(vec![R1, W0, W1]),
            MarchElement::descending(vec![R1, W0, W1, W0]),
            MarchElement::descending(vec![R0, W1, W0]),
        ],
    )
}

/// March B: `{⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}`.
pub fn march_b() -> MarchTest {
    MarchTest::new(
        "March B",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::ascending(vec![R0, W1, R1, W0, R0, W1]),
            MarchElement::ascending(vec![R1, W0, W1]),
            MarchElement::descending(vec![R1, W0, W1, W0]),
            MarchElement::descending(vec![R0, W1, W0]),
        ],
    )
}

/// March SS:
/// `{⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0); ⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0)}`
/// (Table 1: 6 elements, 22 ops, 13 reads, 9 writes).
pub fn march_ss() -> MarchTest {
    MarchTest::new(
        "March SS",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::ascending(vec![R0, R0, W0, R0, W1]),
            MarchElement::ascending(vec![R1, R1, W1, R1, W0]),
            MarchElement::descending(vec![R0, R0, W0, R0, W1]),
            MarchElement::descending(vec![R1, R1, W1, R1, W0]),
            MarchElement::either(vec![R0]),
        ],
    )
}

/// March SR:
/// `{⇓(w0); ⇑(r0,w1,r1,w0); ⇑(r0,r0); ⇑(w1); ⇓(r1,w0,r0,w1); ⇓(r1,r1)}`
/// (Table 1: 6 elements, 14 ops, 8 reads, 6 writes).
pub fn march_sr() -> MarchTest {
    MarchTest::new(
        "March SR",
        vec![
            MarchElement::descending(vec![W0]),
            MarchElement::ascending(vec![R0, W1, R1, W0]),
            MarchElement::ascending(vec![R0, R0]),
            MarchElement::ascending(vec![W1]),
            MarchElement::descending(vec![R1, W0, R0, W1]),
            MarchElement::descending(vec![R1, R1]),
        ],
    )
}

/// March G (without the two delay pauses, which contribute no operations):
/// `{⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0); ⇕(r0,w1,r1); ⇕(r1,w0,r0)}`
/// (Table 1: 7 elements, 23 ops, 10 reads, 13 writes).
pub fn march_g() -> MarchTest {
    MarchTest::new(
        "March G",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::ascending(vec![R0, W1, R1, W0, R0, W1]),
            MarchElement::ascending(vec![R1, W0, W1]),
            MarchElement::descending(vec![R1, W0, W1, W0]),
            MarchElement::descending(vec![R0, W1, W0]),
            MarchElement::either(vec![R0, W1, R1]),
            MarchElement::either(vec![R1, W0, R0]),
        ],
    )
}

/// March LR: `{⇕(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0); ⇑(r0,w1,r1,w0); ⇑(r0)}`.
pub fn march_lr() -> MarchTest {
    MarchTest::new(
        "March LR",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::descending(vec![R0, W1]),
            MarchElement::ascending(vec![R1, W0, R0, W1]),
            MarchElement::ascending(vec![R1, W0]),
            MarchElement::ascending(vec![R0, W1, R1, W0]),
            MarchElement::ascending(vec![R0]),
        ],
    )
}

/// March iC-: the improved March C- of Dilillo et al. (VTS 2004) targeting
/// address-decoder open faults; same element structure as March C- but with
/// the last element split to add read-after-read observation:
/// `{⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇑(r0); ⇓(r0)}`.
pub fn march_ic_minus() -> MarchTest {
    MarchTest::new(
        "March iC-",
        vec![
            MarchElement::either(vec![W0]),
            MarchElement::ascending(vec![R0, W1]),
            MarchElement::ascending(vec![R1, W0]),
            MarchElement::descending(vec![R0, W1]),
            MarchElement::descending(vec![R1, W0]),
            MarchElement::ascending(vec![R0]),
            MarchElement::descending(vec![R0]),
        ],
    )
}

/// The five algorithms evaluated in the paper's Table 1, in table order.
pub fn table1_algorithms() -> Vec<MarchTest> {
    vec![
        march_c_minus(),
        march_ss(),
        mats_plus(),
        march_sr(),
        march_g(),
    ]
}

/// Every algorithm in the library.
pub fn all_algorithms() -> Vec<MarchTest> {
    vec![
        mats(),
        mats_plus(),
        mats_plus_plus(),
        march_x(),
        march_y(),
        march_c_minus(),
        march_a(),
        march_b(),
        march_ss(),
        march_sr(),
        march_g(),
        march_lr(),
        march_ic_minus(),
    ]
}

/// Looks an algorithm up by its published name (`"March SS"`, `"MATS+"`,
/// …) — the job-level entry point campaign queues and CLIs resolve
/// algorithm fields through. Returns `None` for unknown names; the valid
/// names are exactly those of [`all_algorithms`].
pub fn algorithm_by_name(name: &str) -> Option<MarchTest> {
    all_algorithms()
        .into_iter()
        .find(|test| test.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `(#elm, #oper, #read, #write)` tuples of the paper's Table 1.
    #[test]
    fn table1_statistics_match_the_paper() {
        let cases = [
            (march_c_minus(), 6, 10, 5, 5),
            (march_ss(), 6, 22, 13, 9),
            (mats_plus(), 3, 5, 2, 3),
            (march_sr(), 6, 14, 8, 6),
            (march_g(), 7, 23, 10, 13),
        ];
        for (test, elements, ops, reads, writes) in cases {
            assert_eq!(test.element_count(), elements, "{} elements", test.name());
            assert_eq!(test.operation_count(), ops, "{} operations", test.name());
            assert_eq!(test.read_count(), reads, "{} reads", test.name());
            assert_eq!(test.write_count(), writes, "{} writes", test.name());
        }
    }

    #[test]
    fn other_algorithms_have_expected_complexity() {
        assert_eq!(mats().operation_count(), 4);
        assert_eq!(mats_plus_plus().operation_count(), 6);
        assert_eq!(march_x().operation_count(), 6);
        assert_eq!(march_y().operation_count(), 8);
        assert_eq!(march_a().operation_count(), 15);
        assert_eq!(march_b().operation_count(), 17);
        assert_eq!(march_lr().operation_count(), 14);
        assert_eq!(march_ic_minus().operation_count(), 11);
    }

    #[test]
    fn all_algorithms_initialize_memory_and_balance_reads_and_writes() {
        for test in all_algorithms() {
            assert!(
                test.initializes_memory(),
                "{} must start with an unconditional write",
                test.name()
            );
            assert_eq!(
                test.read_count() + test.write_count(),
                test.operation_count(),
                "{} read/write split must cover every operation",
                test.name()
            );
        }
    }

    #[test]
    fn algorithms_resolve_by_name() {
        for test in all_algorithms() {
            let found = algorithm_by_name(test.name()).expect("every library name resolves");
            assert_eq!(found.name(), test.name());
            assert_eq!(found.operation_count(), test.operation_count());
        }
        assert!(algorithm_by_name("March Nope").is_none());
        assert!(algorithm_by_name("").is_none());
    }

    #[test]
    fn table1_selection_is_in_paper_order() {
        let names: Vec<String> = table1_algorithms()
            .iter()
            .map(|t| t.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["March C-", "March SS", "MATS+", "March SR", "March G"]
        );
    }
}
