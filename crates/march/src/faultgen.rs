//! Dense fault-population generation.
//!
//! The standard 48-fault list ([`crate::faults::standard_fault_list`])
//! instantiates every fault class at three representative victims — enough
//! to characterise an algorithm, far too small to exercise the sweep
//! engines the way a real qualification run would. Production-scale March
//! sweeps cover *populations*: per-row and per-column victims across the
//! whole address space, coupling pairs spread over physical
//! neighbourhoods, and mixed profiles reaching hundreds of thousands of
//! faults on megabit arrays.
//!
//! [`FaultGen`] synthesizes those populations deterministically from a
//! [`SplitMix64`] seed, so every experiment — and every failure — is
//! reproducible from `(organization, seed, profile)` alone:
//!
//! * [`FaultGen::stuck_at_per_row`] / [`FaultGen::transitions_per_column`]
//!   — single-cell victims sampled without replacement along each row /
//!   column of the array;
//! * [`FaultGen::neighbourhood_coupling`] — aggressor/victim pairs at a
//!   configurable Manhattan radius in the physical (row, column) plane,
//!   drawn from all three coupling flavours;
//! * [`FaultGen::mixed`] — uniformly mixed fault kinds across the whole
//!   address space (every class of [`crate::faults`]), the profile the
//!   randomized differential harness feeds to the batched backend;
//! * [`FaultGen::overlapping_clusters`] — many faults sharing the same few
//!   victims, the overlap-heavy shape on which the address-aware cohort
//!   packer ([`crate::batch::CohortPlanner::AddressAware`]) shrinks merged
//!   step schedules the most.
//!
//! Generated lists are plain `Vec<FaultFactory>`, so they flow through the
//! existing [`crate::coverage`]/[`crate::dof`] sweeps and the lane-batched
//! backend unchanged; [`FaultPopulation`] wraps a list with the profile
//! name for benches and reports.

use sram_model::address::Address;
use sram_model::config::ArrayOrganization;

use crate::faults::{
    AddressAliasFault, CouplingIdempotentFault, CouplingInversionFault, CouplingStateFault,
    DeceptiveReadDestructiveFault, FaultFactory, IncorrectReadFault, ReadDestructiveFault,
    StuckAtFault, StuckOpenFault, TransitionFault, WriteDisturbFault,
};
use crate::rng::SplitMix64;

/// A rejected fault-population configuration.
///
/// The `try_*` generators return these instead of panicking, so job-level
/// callers (the campaign runner, CLIs) can turn a bad job spec into a
/// recorded failure rather than a dead worker. The panicking generators
/// remain for test/bench code that has already validated its inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultGenError {
    /// More victims requested per row than the array has columns.
    VictimsExceedColumns {
        /// Victims requested per row.
        requested: u32,
        /// Columns available.
        cols: u32,
    },
    /// More victims requested per column than the array has rows.
    VictimsExceedRows {
        /// Victims requested per column.
        requested: u32,
        /// Rows available.
        rows: u32,
    },
    /// A two-cell fault profile was requested on an array with fewer than
    /// two cells.
    ArrayTooSmallForPairs {
        /// Capacity of the offending array.
        capacity: u32,
    },
    /// The requested profile would generate no faults at all.
    EmptyPopulation,
}

impl std::fmt::Display for FaultGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::VictimsExceedColumns { requested, cols } => write!(
                f,
                "cannot place {requested} distinct victims in a {cols}-column row"
            ),
            Self::VictimsExceedRows { requested, rows } => write!(
                f,
                "cannot place {requested} distinct victims in a {rows}-row column"
            ),
            Self::ArrayTooSmallForPairs { capacity } => write!(
                f,
                "two-cell faults need at least two addresses, array holds {capacity}"
            ),
            Self::EmptyPopulation => write!(f, "the requested profile would generate no faults"),
        }
    }
}

impl std::error::Error for FaultGenError {}

/// A named, generated fault list: the output of one [`FaultGen`] profile.
///
/// Dereferences to `[FaultFactory]`, so a population drops into every API
/// that sweeps a fault list (`evaluate_coverage_with`, `sweep_batched`,
/// `verify_order_independence`, …).
pub struct FaultPopulation {
    /// Profile label, e.g. `"mixed-100000"` — used by benches and reports.
    pub name: String,
    /// The generated factories, in generation (or shuffled) order.
    pub factories: Vec<FaultFactory>,
}

impl FaultPopulation {
    /// Wraps a generated list with its profile name.
    pub fn new(name: impl Into<String>, factories: Vec<FaultFactory>) -> Self {
        Self {
            name: name.into(),
            factories,
        }
    }

    /// Number of faults in the population.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// `true` when the population holds no faults.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

impl std::ops::Deref for FaultPopulation {
    type Target = [FaultFactory];

    fn deref(&self) -> &[FaultFactory] {
        &self.factories
    }
}

impl std::fmt::Debug for FaultPopulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPopulation")
            .field("name", &self.name)
            .field("faults", &self.factories.len())
            .finish()
    }
}

/// Deterministic generator of dense fault populations over one array
/// organization.
///
/// All sampling is driven by the owned [`SplitMix64`] stream: the same
/// `(organization, seed)` pair reproduces the same population on every
/// platform, which is what lets the differential tests print a failing
/// seed instead of a multi-megabyte fault list.
#[derive(Debug, Clone)]
pub struct FaultGen {
    organization: ArrayOrganization,
    rng: SplitMix64,
}

impl FaultGen {
    /// Creates a generator over `organization` seeded with `seed`.
    pub fn new(organization: ArrayOrganization, seed: u64) -> Self {
        Self {
            organization,
            rng: SplitMix64::new(seed),
        }
    }

    /// The organization the populations are generated for.
    pub fn organization(&self) -> &ArrayOrganization {
        &self.organization
    }

    /// A uniformly random address of the array.
    fn any_address(&mut self) -> Address {
        Address::new(self.rng.next_below(u64::from(self.organization.capacity())) as u32)
    }

    /// A uniformly random address different from `other` (the array must
    /// hold at least two cells).
    fn distinct_address(&mut self, other: Address) -> Address {
        assert!(
            self.organization.capacity() >= 2,
            "two-cell faults need at least two addresses"
        );
        // Sample over capacity-1 slots and skip past `other`: uniform
        // without rejection loops.
        let raw = self
            .rng
            .next_below(u64::from(self.organization.capacity()) - 1) as u32;
        Address::new(if raw >= other.value() { raw + 1 } else { raw })
    }

    /// `count` distinct values from `0..bound`, sampled by a partial
    /// Fisher–Yates over a scratch index vector.
    fn distinct_below(&mut self, bound: u32, count: u32, scratch: &mut Vec<u32>) -> Vec<u32> {
        assert!(count <= bound, "cannot sample {count} distinct of {bound}");
        scratch.clear();
        scratch.extend(0..bound);
        (0..count as usize)
            .map(|taken| {
                let pick = taken + self.rng.next_below(u64::from(bound) - taken as u64) as usize;
                scratch.swap(taken, pick);
                scratch[taken]
            })
            .collect()
    }

    /// Per-row stuck-at victims: for every row of the array,
    /// `victims_per_row` distinct random columns, each stuck at a random
    /// value. Covers the whole address space row by row —
    /// `rows × victims_per_row` faults.
    ///
    /// # Panics
    ///
    /// Panics if `victims_per_row` exceeds the column count; see
    /// [`FaultGen::try_stuck_at_per_row`] for the fallible form.
    pub fn stuck_at_per_row(&mut self, victims_per_row: u32) -> Vec<FaultFactory> {
        match self.try_stuck_at_per_row(victims_per_row) {
            Ok(factories) => factories,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible [`FaultGen::stuck_at_per_row`]: rejects a quota that does
    /// not fit in a row instead of panicking. A quota of zero is valid and
    /// yields an empty contribution (blended profiles rely on that).
    pub fn try_stuck_at_per_row(
        &mut self,
        victims_per_row: u32,
    ) -> Result<Vec<FaultFactory>, FaultGenError> {
        let (rows, cols) = (self.organization.rows(), self.organization.cols());
        if victims_per_row > cols {
            return Err(FaultGenError::VictimsExceedColumns {
                requested: victims_per_row,
                cols,
            });
        }
        let mut scratch = Vec::new();
        let mut factories: Vec<FaultFactory> =
            Vec::with_capacity((rows * victims_per_row) as usize);
        for row in 0..rows {
            for col in self.distinct_below(cols, victims_per_row, &mut scratch) {
                let victim = Address::new(row * cols + col);
                let value = self.rng.next_bool();
                factories.push(Box::new(move || Box::new(StuckAtFault::new(victim, value))));
            }
        }
        Ok(factories)
    }

    /// Per-column transition victims: for every column of the array,
    /// `victims_per_column` distinct random rows, each failing a random
    /// transition direction — `cols × victims_per_column` faults.
    ///
    /// # Panics
    ///
    /// Panics if `victims_per_column` exceeds the row count; see
    /// [`FaultGen::try_transitions_per_column`] for the fallible form.
    pub fn transitions_per_column(&mut self, victims_per_column: u32) -> Vec<FaultFactory> {
        match self.try_transitions_per_column(victims_per_column) {
            Ok(factories) => factories,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible [`FaultGen::transitions_per_column`]: rejects a quota that
    /// does not fit in a column instead of panicking. A quota of zero is
    /// valid and yields an empty contribution.
    pub fn try_transitions_per_column(
        &mut self,
        victims_per_column: u32,
    ) -> Result<Vec<FaultFactory>, FaultGenError> {
        let (rows, cols) = (self.organization.rows(), self.organization.cols());
        if victims_per_column > rows {
            return Err(FaultGenError::VictimsExceedRows {
                requested: victims_per_column,
                rows,
            });
        }
        let mut scratch = Vec::new();
        let mut factories: Vec<FaultFactory> =
            Vec::with_capacity((cols * victims_per_column) as usize);
        for col in 0..cols {
            for row in self.distinct_below(rows, victims_per_column, &mut scratch) {
                let victim = Address::new(row * cols + col);
                let rising = self.rng.next_bool();
                factories.push(Box::new(move || {
                    Box::new(TransitionFault::new(victim, rising))
                }));
            }
        }
        Ok(factories)
    }

    /// A random aggressor within Manhattan distance `radius` of `victim`
    /// in the physical (row, column) plane, in bounds and distinct from
    /// the victim.
    fn neighbour_of(&mut self, victim: Address, radius: u32) -> Address {
        let organization = self.organization;
        let (rows, cols) = (organization.rows() as i64, organization.cols() as i64);
        let row = i64::from(victim.row(&organization).0);
        let col = i64::from(victim.col(&organization).value());
        let r = i64::from(radius.max(1));
        loop {
            let dr = self.rng.next_below(2 * r as u64 + 1) as i64 - r;
            let dc = self.rng.next_below(2 * r as u64 + 1) as i64 - r;
            if dr.abs() + dc.abs() > r || (dr == 0 && dc == 0) {
                continue;
            }
            let (nr, nc) = (row + dr, col + dc);
            if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
                continue;
            }
            return Address::new((nr * cols + nc) as u32);
        }
    }

    /// One random coupling fault (CFin/CFid/CFst, uniform) between
    /// `aggressor` and `victim`.
    fn coupling_between(&mut self, aggressor: Address, victim: Address) -> FaultFactory {
        match self.rng.next_below(3) {
            0 => {
                let rising = self.rng.next_bool();
                Box::new(move || Box::new(CouplingInversionFault::new(aggressor, victim, rising)))
            }
            1 => {
                let rising = self.rng.next_bool();
                let forced = self.rng.next_bool();
                Box::new(move || {
                    Box::new(CouplingIdempotentFault::new(
                        aggressor, victim, rising, forced,
                    ))
                })
            }
            _ => {
                let state = self.rng.next_bool();
                let forced = self.rng.next_bool();
                Box::new(move || {
                    Box::new(CouplingStateFault::new(aggressor, victim, state, forced))
                })
            }
        }
    }

    /// Neighbourhood coupling sets: `pairs` aggressor/victim pairs where
    /// the aggressor sits within Manhattan distance `radius` of a random
    /// victim, drawn from all three coupling flavours with random
    /// trigger/force parameters.
    ///
    /// # Panics
    ///
    /// Panics if the array holds fewer than two cells; see
    /// [`FaultGen::try_neighbourhood_coupling`] for the fallible form.
    pub fn neighbourhood_coupling(&mut self, pairs: usize, radius: u32) -> Vec<FaultFactory> {
        match self.try_neighbourhood_coupling(pairs, radius) {
            Ok(factories) => factories,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible [`FaultGen::neighbourhood_coupling`]: rejects one-cell
    /// arrays (which cannot host an aggressor/victim pair) instead of
    /// panicking.
    pub fn try_neighbourhood_coupling(
        &mut self,
        pairs: usize,
        radius: u32,
    ) -> Result<Vec<FaultFactory>, FaultGenError> {
        self.require_pair_capacity()?;
        Ok((0..pairs)
            .map(|_| {
                let victim = self.any_address();
                let aggressor = self.neighbour_of(victim, radius);
                self.coupling_between(aggressor, victim)
            })
            .collect())
    }

    /// Errors unless the array can host a two-cell fault.
    fn require_pair_capacity(&self) -> Result<(), FaultGenError> {
        let capacity = self.organization.capacity();
        if capacity < 2 {
            return Err(FaultGenError::ArrayTooSmallForPairs { capacity });
        }
        Ok(())
    }

    /// One uniformly random fault of any class at random addresses — the
    /// atom of [`FaultGen::mixed`].
    ///
    /// # Panics
    ///
    /// Panics if the array holds fewer than two cells (two-cell classes
    /// need a distinct aggressor/target).
    pub fn any_fault(&mut self) -> FaultFactory {
        let victim = self.any_address();
        match self.rng.next_below(11) {
            0 => {
                let value = self.rng.next_bool();
                Box::new(move || Box::new(StuckAtFault::new(victim, value)))
            }
            1 => {
                let rising = self.rng.next_bool();
                Box::new(move || Box::new(TransitionFault::new(victim, rising)))
            }
            2..=4 => {
                let aggressor = self.distinct_address(victim);
                self.coupling_between(aggressor, victim)
            }
            5 => Box::new(move || Box::new(ReadDestructiveFault::new(victim))),
            6 => Box::new(move || Box::new(DeceptiveReadDestructiveFault::new(victim))),
            7 => Box::new(move || Box::new(IncorrectReadFault::new(victim))),
            8 => Box::new(move || Box::new(StuckOpenFault::new(victim))),
            9 => Box::new(move || Box::new(WriteDisturbFault::new(victim))),
            _ => {
                let target = self.distinct_address(victim);
                Box::new(move || Box::new(AddressAliasFault::new(victim, target)))
            }
        }
    }

    /// A mixed profile: `count` uniformly random faults across every
    /// class and the whole address space. This is how populations from
    /// hundreds to ≥100k faults are sized for dense sweeps, and the shape
    /// the randomized differential harness replays against the golden
    /// path.
    pub fn mixed(&mut self, count: usize) -> Vec<FaultFactory> {
        (0..count).map(|_| self.any_fault()).collect()
    }

    /// Fallible [`FaultGen::mixed`]: rejects one-cell arrays (the mix
    /// includes two-cell classes) and a zero count (which would be an
    /// empty population) instead of panicking or silently sweeping
    /// nothing.
    pub fn try_mixed(&mut self, count: usize) -> Result<Vec<FaultFactory>, FaultGenError> {
        self.require_pair_capacity()?;
        if count == 0 {
            return Err(FaultGenError::EmptyPopulation);
        }
        Ok(self.mixed(count))
    }

    /// Number of single-cell fault models [`FaultGen::overlapping_clusters`]
    /// instantiates per victim (both SAF polarities, both TF directions,
    /// RDF, DRDF, IRF, WDF, SOF).
    pub const MODELS_PER_VICTIM: usize = 9;

    /// An overlap-heavy profile — the qualification-sweep shape: `clusters`
    /// random victims, each carrying **every** single-cell fault model
    /// ([`FaultGen::MODELS_PER_VICTIM`] of them) plus `pairs_per_cluster`
    /// coupling neighbours within Manhattan `radius` — many faults per
    /// involved address. Shuffled ([`FaultGen::shuffle`]), this is the
    /// population shape on which list-order greedy cohorts waste the most
    /// merged-schedule steps and the address-aware packer recovers them.
    ///
    /// # Panics
    ///
    /// Panics if the array holds fewer than two cells; see
    /// [`FaultGen::try_overlapping_clusters`] for the fallible form.
    pub fn overlapping_clusters(
        &mut self,
        clusters: usize,
        pairs_per_cluster: usize,
        radius: u32,
    ) -> Vec<FaultFactory> {
        match self.try_overlapping_clusters(clusters, pairs_per_cluster, radius) {
            Ok(factories) => factories,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible [`FaultGen::overlapping_clusters`]: rejects one-cell
    /// arrays instead of panicking.
    pub fn try_overlapping_clusters(
        &mut self,
        clusters: usize,
        pairs_per_cluster: usize,
        radius: u32,
    ) -> Result<Vec<FaultFactory>, FaultGenError> {
        self.require_pair_capacity()?;
        let mut factories: Vec<FaultFactory> =
            Vec::with_capacity(clusters * (Self::MODELS_PER_VICTIM + pairs_per_cluster));
        for _ in 0..clusters {
            let victim = self.any_address();
            for value in [false, true] {
                factories.push(Box::new(move || Box::new(StuckAtFault::new(victim, value))));
                factories.push(Box::new(move || {
                    Box::new(TransitionFault::new(victim, value))
                }));
            }
            factories.push(Box::new(move || {
                Box::new(ReadDestructiveFault::new(victim))
            }));
            factories.push(Box::new(move || {
                Box::new(DeceptiveReadDestructiveFault::new(victim))
            }));
            factories.push(Box::new(move || Box::new(IncorrectReadFault::new(victim))));
            factories.push(Box::new(move || Box::new(WriteDisturbFault::new(victim))));
            factories.push(Box::new(move || Box::new(StuckOpenFault::new(victim))));
            for _ in 0..pairs_per_cluster {
                let aggressor = self.neighbour_of(victim, radius);
                factories.push(self.coupling_between(aggressor, victim));
            }
        }
        Ok(factories)
    }

    /// Shuffles `factories` in place with this generator's stream —
    /// destroys any address locality the generation order produced, which
    /// is exactly what the packer benchmarks need the input to look like.
    pub fn shuffle(&mut self, factories: &mut [FaultFactory]) {
        self.rng.shuffle(factories);
    }

    /// The dense benchmark profile, blended from every generator: ~92 %
    /// per-victim model bundles ([`FaultGen::overlapping_clusters`] —
    /// real qualification sweeps instantiate every fault model at each
    /// sampled victim, which is also what gives the cohort packer
    /// overlap to exploit), ~3 % per-row stuck-at victims, ~2 %
    /// per-column transition victims, ~2 % neighbourhood coupling pairs
    /// and a mixed remainder. Sized by `target` total faults; the result
    /// lands within a few faults of `target` on any organization large
    /// enough to hold the per-row/per-column quotas.
    ///
    /// The population is returned in generation order (clustered, the
    /// way a qualification flow would emit it); callers stress-testing
    /// the cohort packer should [`FaultGen::shuffle`] it themselves.
    ///
    /// # Examples
    ///
    /// ```
    /// use march_test::faultgen::FaultGen;
    /// use sram_model::config::ArrayOrganization;
    ///
    /// let organization = ArrayOrganization::new(16, 16)?;
    /// let population = FaultGen::new(organization, 0x2006).dense_profile(500);
    ///
    /// // The blend reaches the target (the mixed remainder tops it up)
    /// // and names itself after its final size.
    /// assert!(population.len() >= 500);
    /// assert_eq!(population.name, format!("dense-{}", population.len()));
    ///
    /// // Same organization + seed, same population: generation is
    /// // deterministic, which is what lets benches commit their numbers.
    /// let again = FaultGen::new(organization, 0x2006).dense_profile(500);
    /// assert_eq!(population.len(), again.len());
    /// # Ok::<(), sram_model::error::SramError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on one-cell arrays and on a zero target; see
    /// [`FaultGen::try_dense_profile`] for the fallible form.
    pub fn dense_profile(&mut self, target: usize) -> FaultPopulation {
        match self.try_dense_profile(target) {
            Ok(population) => population,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible [`FaultGen::dense_profile`]: rejects one-cell arrays (the
    /// blend includes coupling pairs) and a zero target (an empty
    /// population) instead of panicking.
    pub fn try_dense_profile(&mut self, target: usize) -> Result<FaultPopulation, FaultGenError> {
        self.require_pair_capacity()?;
        if target == 0 {
            return Err(FaultGenError::EmptyPopulation);
        }
        let (rows, cols) = (
            u64::from(self.organization.rows()),
            u64::from(self.organization.cols()),
        );
        let clusters = (target * 92 / 100) / (Self::MODELS_PER_VICTIM + 1);
        // Quotas round *down*: a share too small to give every row or
        // column a victim contributes nothing (the mixed remainder makes
        // up the difference) instead of overshooting the target by a
        // whole row/column sweep on large arrays.
        let per_row = ((target as u64 * 3 / 100 / rows) as u32).min(cols as u32);
        let per_col = ((target as u64 * 2 / 100 / cols) as u32).min(rows as u32);
        let mut factories = self.overlapping_clusters(clusters, 1, 2);
        factories.extend(self.stuck_at_per_row(per_row));
        factories.extend(self.transitions_per_column(per_col));
        factories.extend(self.neighbourhood_coupling(target * 2 / 100, 2));
        let mixed = target.saturating_sub(factories.len());
        factories.extend(self.mixed(mixed));
        Ok(FaultPopulation::new(
            format!("dense-{}", factories.len()),
            factories,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use std::collections::BTreeSet;

    fn org(rows: u32, cols: u32) -> ArrayOrganization {
        ArrayOrganization::new(rows, cols).unwrap()
    }

    #[test]
    fn same_seed_reproduces_the_same_population() {
        let organization = org(8, 8);
        let a = FaultGen::new(organization, 42).mixed(200);
        let b = FaultGen::new(organization, 42).mixed(200);
        assert_eq!(a.len(), 200);
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa().name(), fb().name());
        }
        let c = FaultGen::new(organization, 43).mixed(200);
        let diverged = a.iter().zip(&c).any(|(fa, fc)| fa().name() != fc().name());
        assert!(diverged, "different seeds must produce different lists");
    }

    #[test]
    fn per_row_stuck_at_covers_every_row_with_distinct_victims() {
        let organization = org(16, 8);
        let faults = FaultGen::new(organization, 7).stuck_at_per_row(3);
        assert_eq!(faults.len(), 16 * 3);
        let mut victims_by_row = vec![BTreeSet::new(); 16];
        for factory in &faults {
            let fault = factory();
            assert_eq!(fault.kind(), FaultKind::StuckAt);
            let involved = fault.involved_addresses().unwrap();
            assert_eq!(involved.len(), 1);
            let victim = involved[0];
            assert!(victim.is_valid(&organization));
            victims_by_row[victim.row(&organization).0 as usize].insert(victim.value());
        }
        for (row, victims) in victims_by_row.iter().enumerate() {
            assert_eq!(victims.len(), 3, "row {row} victims must be distinct");
        }
    }

    #[test]
    fn per_column_transitions_cover_every_column() {
        let organization = org(8, 16);
        let faults = FaultGen::new(organization, 9).transitions_per_column(2);
        assert_eq!(faults.len(), 16 * 2);
        let mut victims_by_col = vec![BTreeSet::new(); 16];
        for factory in &faults {
            let fault = factory();
            assert_eq!(fault.kind(), FaultKind::Transition);
            let victim = fault.involved_addresses().unwrap()[0];
            victims_by_col[victim.col(&organization).value() as usize].insert(victim.value());
        }
        assert!(victims_by_col.iter().all(|v| v.len() == 2));
    }

    #[test]
    fn neighbourhood_coupling_respects_the_manhattan_radius() {
        let organization = org(16, 16);
        for radius in [1, 2, 4] {
            let faults = FaultGen::new(organization, 11).neighbourhood_coupling(300, radius);
            assert_eq!(faults.len(), 300);
            for factory in &faults {
                let fault = factory();
                let involved = fault.involved_addresses().unwrap();
                assert_eq!(involved.len(), 2, "coupling pairs involve two cells");
                let (a, v) = (involved[0], involved[1]);
                assert_ne!(a, v);
                let dr = a.row(&organization).0.abs_diff(v.row(&organization).0);
                let dc = a
                    .col(&organization)
                    .value()
                    .abs_diff(v.col(&organization).value());
                assert!(
                    dr + dc <= radius,
                    "{} exceeds Manhattan radius {radius}",
                    fault.name()
                );
            }
        }
    }

    #[test]
    fn mixed_profile_spans_every_fault_kind_and_scales() {
        let organization = org(32, 32);
        let faults = FaultGen::new(organization, 2006).mixed(2_000);
        assert_eq!(faults.len(), 2_000);
        let kinds: BTreeSet<String> = faults.iter().map(|f| f().kind().to_string()).collect();
        for expected in [
            "SAF", "TF", "CFin", "CFid", "CFst", "RDF", "DRDF", "IRF", "SOF", "WDF", "AF",
        ] {
            assert!(kinds.contains(expected), "missing kind {expected}");
        }
    }

    #[test]
    fn dense_profile_hits_the_target_size_at_scale() {
        // The acceptance shape: >=100k faults on a 1024x1024 array. Only
        // generation is exercised here (sweeping it is the bench's job).
        let organization = org(1024, 1024);
        let population = FaultGen::new(organization, 1).dense_profile(100_000);
        assert!(
            population.len() >= 100_000,
            "dense profile generated {} faults",
            population.len()
        );
        assert!(population.name.starts_with("dense-"));
        assert!(!population.is_empty());
        // Every fault must be instantiable and in bounds.
        for factory in population.iter().step_by(997) {
            let fault = factory();
            if let Some(involved) = fault.involved_addresses() {
                assert!(involved.iter().all(|a| a.is_valid(&organization)));
            }
        }
    }

    #[test]
    fn overlapping_clusters_bundle_every_single_cell_model_per_victim() {
        let organization = org(8, 8);
        let faults = FaultGen::new(organization, 5).overlapping_clusters(4, 2, 1);
        assert_eq!(faults.len(), 4 * (FaultGen::MODELS_PER_VICTIM + 2));
        // At most 4 distinct victims anchor all 44 faults: heavy overlap.
        // (SOF has no involved list; its name still carries the victim.)
        let victims: BTreeSet<u32> = faults
            .iter()
            .filter_map(|f| {
                f().involved_addresses()
                    .map(|involved| involved.last().unwrap().value())
            })
            .collect();
        assert!(victims.len() <= 4, "clusters must reuse victims");
        // Every single-cell model class appears.
        let kinds: BTreeSet<String> = faults.iter().map(|f| f().kind().to_string()).collect();
        for expected in ["SAF", "TF", "RDF", "DRDF", "IRF", "WDF", "SOF"] {
            assert!(kinds.contains(expected), "missing kind {expected}");
        }
    }

    #[test]
    fn tiny_arrays_are_rejected_for_pair_faults() {
        let organization = org(1, 1);
        let mut gen = FaultGen::new(organization, 3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gen.neighbourhood_coupling(1, 1)
        }));
        assert!(result.is_err(), "one-cell arrays cannot host pairs");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gen.overlapping_clusters(1, 1, 1)
        }));
        assert!(result.is_err(), "one-cell arrays cannot host clusters");
    }

    /// Extracts the error from a `try_*` result (the success payload is a
    /// factory list, which has no `Debug` impl for `unwrap_err`).
    fn rejection<T>(result: Result<T, FaultGenError>) -> FaultGenError {
        match result {
            Err(error) => error,
            Ok(_) => panic!("expected the configuration to be rejected"),
        }
    }

    #[test]
    fn try_generators_reject_each_invalid_input_without_panicking() {
        // Per-row quota wider than a row.
        let mut gen = FaultGen::new(org(4, 4), 1);
        assert_eq!(
            rejection(gen.try_stuck_at_per_row(5)),
            FaultGenError::VictimsExceedColumns {
                requested: 5,
                cols: 4
            }
        );
        // Per-column quota taller than a column.
        assert_eq!(
            rejection(gen.try_transitions_per_column(5)),
            FaultGenError::VictimsExceedRows {
                requested: 5,
                rows: 4
            }
        );
        // Zero faults requested: an empty population is a configuration
        // error, not a successful no-op sweep.
        assert_eq!(rejection(gen.try_mixed(0)), FaultGenError::EmptyPopulation);
        assert_eq!(
            rejection(gen.try_dense_profile(0)),
            FaultGenError::EmptyPopulation
        );
        // One-cell arrays cannot host any of the pair-bearing profiles.
        let mut tiny = FaultGen::new(org(1, 1), 1);
        for error in [
            rejection(tiny.try_neighbourhood_coupling(1, 1)),
            rejection(tiny.try_overlapping_clusters(1, 1, 1)),
            rejection(tiny.try_mixed(4)),
            rejection(tiny.try_dense_profile(10)),
        ] {
            assert_eq!(error, FaultGenError::ArrayTooSmallForPairs { capacity: 1 });
        }
        // Every error renders a human-readable message for job records.
        assert!(
            FaultGenError::EmptyPopulation
                .to_string()
                .contains("no faults"),
            "errors must carry a readable message"
        );
    }

    #[test]
    fn try_generators_match_their_panicking_twins_on_valid_input() {
        let organization = org(8, 8);
        let a = FaultGen::new(organization, 6).try_mixed(64).unwrap();
        let b = FaultGen::new(organization, 6).mixed(64);
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa().name(), fb().name());
        }
        // Zero quotas stay valid for the blended-profile contributors.
        let mut gen = FaultGen::new(organization, 6);
        assert!(gen.try_stuck_at_per_row(0).unwrap().is_empty());
        assert!(gen.try_transitions_per_column(0).unwrap().is_empty());
        assert!(gen.try_neighbourhood_coupling(0, 1).unwrap().is_empty());
    }

    #[test]
    fn distinct_below_is_a_partial_permutation() {
        let mut gen = FaultGen::new(org(4, 4), 99);
        let mut scratch = Vec::new();
        for _ in 0..50 {
            let sample = gen.distinct_below(10, 7, &mut scratch);
            let unique: BTreeSet<u32> = sample.iter().copied().collect();
            assert_eq!(unique.len(), 7);
            assert!(sample.iter().all(|&v| v < 10));
        }
    }
}
