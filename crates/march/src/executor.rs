//! March test execution: the fault-simulation kernel.
//!
//! The hot path of every coverage/degree-of-freedom experiment is "run one
//! March test over one perturbed memory, thousands of times". The kernel
//! here is built for that workload:
//!
//! * [`AddressPlan`] computes the ⇑ permutation of an [`AddressOrder`]
//!   **once** and serves both directions by index arithmetic, so neither
//!   the executor nor the low-power scheduler re-allocates address
//!   sequences per element;
//! * [`MarchWalk`] flattens a whole `(test, order, organization)` traversal
//!   into a compact 8-byte-per-step array that is shared, read-only, across
//!   every fault of a sweep (and across threads);
//! * [`run_march_walk`] executes a walk against any [`MemoryModel`] and
//!   reports every mismatch; [`run_march_until_detected`] is the early-exit
//!   variant for sweeps that only need the detected/missed bit — it stops
//!   at the first mismatching read;
//! * [`run_march`] keeps the original convenience signature by building a
//!   throw-away walk internally.
//!
//! [`MarchWalk::steps`] exposes the same traversal as an iterator of
//! [`MarchStep`]s so that higher layers (the low-power test engine in the
//! `lp-precharge` crate) can map each operation onto a memory clock cycle
//! without re-implementing the ordering rules.

use sram_model::address::Address;
use sram_model::config::ArrayOrganization;

use crate::address_order::AddressOrder;
use crate::algorithm::MarchTest;
use crate::element::AddressDirection;
use crate::fault_sim::DetectionMode;
use crate::faults::LaneFault;
use crate::memory::{LaneMemory, MemoryModel};
use crate::operation::MarchOp;

/// One operation of a March test applied to one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarchStep {
    /// Index of the March element this step belongs to.
    pub element: usize,
    /// Index of the operation within the element.
    pub op_index: usize,
    /// The address the operation targets.
    pub address: Address,
    /// The operation itself.
    pub op: MarchOp,
    /// `true` if this is the last operation applied to this address within
    /// the current element (the next step moves to a new address or a new
    /// element).
    pub last_op_on_address: bool,
    /// `true` if this is the last operation of the element on the last
    /// address of the element's sequence.
    pub last_op_of_element: bool,
}

/// A detected mismatch: a read returned something other than its expected
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mismatch {
    /// The element in which the failing read occurred.
    pub element: usize,
    /// The address that failed.
    pub address: Address,
    /// The value the March test expected.
    pub expected: bool,
    /// The value the memory returned.
    pub observed: bool,
}

/// Result of running a March test.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MarchResult {
    /// Every read mismatch, in occurrence order.
    pub mismatches: Vec<Mismatch>,
    /// Number of operations executed.
    pub operations: u64,
    /// Number of read operations executed.
    pub reads: u64,
    /// Number of write operations executed.
    pub writes: u64,
}

impl MarchResult {
    /// `true` when no read mismatched — the memory passes the test.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// `true` when at least one read mismatched — a fault was detected.
    pub fn detected_fault(&self) -> bool {
        !self.mismatches.is_empty()
    }
}

/// The ⇑ permutation of an address order, computed once and indexable in
/// both directions.
///
/// A March ⇓ sequence is by definition the exact reverse of ⇑, so a single
/// materialised permutation serves every element of a test; descending
/// positions are resolved with index arithmetic instead of a reversed
/// copy. Both [`MarchWalk`] and the low-power scheduler in `lp-precharge`
/// build on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressPlan {
    ascending: Vec<Address>,
}

impl AddressPlan {
    /// Materialises the ⇑ permutation of `order` over `organization`.
    pub fn new(order: &dyn AddressOrder, organization: &ArrayOrganization) -> Self {
        Self {
            ascending: order.ascending(organization),
        }
    }

    /// Number of addresses in the permutation.
    pub fn len(&self) -> usize {
        self.ascending.len()
    }

    /// `true` when the plan covers no addresses.
    pub fn is_empty(&self) -> bool {
        self.ascending.is_empty()
    }

    /// The address at `position` of an element running in `direction`
    /// (⇕ uses ⇑), or `None` past the end.
    #[inline]
    pub fn at(&self, direction: AddressDirection, position: usize) -> Option<Address> {
        match direction {
            AddressDirection::Ascending | AddressDirection::Either => {
                self.ascending.get(position).copied()
            }
            AddressDirection::Descending => {
                let len = self.ascending.len();
                if position < len {
                    Some(self.ascending[len - 1 - position])
                } else {
                    None
                }
            }
        }
    }

    /// Iterates the sequence of an element running in `direction`.
    pub fn iter(&self, direction: AddressDirection) -> impl ExactSizeIterator<Item = Address> + '_ {
        let len = self.ascending.len();
        (0..len).map(move |pos| self.at(direction, pos).expect("position < len"))
    }
}

/// One flattened step, packed into eight bytes: the raw address, the
/// element index, the op index and a code byte (bits 0–1 the operation,
/// bit 2 `last_op_on_address`, bit 3 `last_op_of_element`, bit 4 the
/// sensed-before value — see [`SENSED_BEFORE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedStep {
    address: u32,
    element: u16,
    op_index: u8,
    code: u8,
}

const OP_MASK: u8 = 0b0011;
const READ_BIT: u8 = 0b0010;
const VALUE_BIT: u8 = 0b0001;
const LAST_ON_ADDRESS: u8 = 0b0100;
const LAST_OF_ELEMENT: u8 = 0b1000;
/// For read steps: the value a fault-free-elsewhere sense amplifier holds
/// *before* this read, i.e. the expected value of the most recent earlier
/// read at an address **different from this step's address** (`0` when no
/// such read exists, matching the initial sense-amplifier state of
/// [`crate::faults::StuckOpenFault`]). Stamped at walk-build time, this is
/// what lets the history-dependent stuck-open fault ride the lane-batched
/// kernel without replaying the full walk: in a locality-safe walk every
/// non-victim read returns its expected value, so the victim's bit-line
/// history is a pure function of the walk and can be precomputed.
const SENSED_BEFORE: u8 = 0b1_0000;

#[inline]
fn op_code(op: MarchOp) -> u8 {
    match op {
        MarchOp::W0 => 0b00,
        MarchOp::W1 => 0b01,
        MarchOp::R0 => 0b10,
        MarchOp::R1 => 0b11,
    }
}

#[inline]
fn decode_op(code: u8) -> MarchOp {
    match code & OP_MASK {
        0b00 => MarchOp::W0,
        0b01 => MarchOp::W1,
        0b10 => MarchOp::R0,
        _ => MarchOp::R1,
    }
}

/// A `(test, order, organization)` traversal precomputed once and shared
/// across every fault of a sweep.
///
/// Construction costs one address permutation plus one flat step array
/// (eight bytes per operation); execution afterwards is a branch-light
/// scan — allocation-free for full walks and single-address filtered
/// runs, one small merge buffer for multi-address faults — which is what
/// makes million-fault sweeps tractable. The walk is immutable and
/// `Sync`, so parallel sweeps share one instance across threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarchWalk {
    test_name: String,
    order_name: String,
    capacity: u32,
    reads: u64,
    writes: u64,
    steps: Vec<PackedStep>,
    /// CSR index of the steps by address: the step indices touching address
    /// `a` are `step_index[offset[a] .. offset[a + 1]]`, ascending. This is
    /// what lets localised faults execute only their own slice of the walk.
    address_offsets: Vec<u32>,
    address_steps: Vec<u32>,
    /// Per-CSR-entry step payload, aligned with `address_steps`: the
    /// element (bits 16–31), op index (bits 8–15) and code byte (bits
    /// 0–7) of each step, laid out address-major. The cohort kernel reads
    /// these slices *sequentially* instead of chasing `address_steps`
    /// indices into the execution-ordered `steps` array — on megabit
    /// walks (hundreds of MB of steps) those scattered loads are cache
    /// misses that would otherwise dominate dense sweeps.
    address_codes: Vec<u32>,
    locality_safe: bool,
}

/// `true` when a fault-free cell can never mismatch under `test`,
/// regardless of the pre-test background: every March element applies the
/// same operation sequence to every cell (only the interleaving differs),
/// so one symbolic pass over the per-cell sequence decides it. The value
/// starts unknown (background-dependent); a read in an unknown or
/// different state could mismatch on a good memory, which would make the
/// locality-filtered execution diverge from the full walk.
fn fault_free_reads_always_match(test: &MarchTest) -> bool {
    let mut state: Option<bool> = None;
    for element in test.elements() {
        for &op in element.ops() {
            if let Some(value) = op.write_value() {
                state = Some(value);
            } else {
                let expected = op.expected_value().expect("reads have expectations");
                if state != Some(expected) {
                    return false;
                }
            }
        }
    }
    true
}

impl MarchWalk {
    /// Precomputes the traversal of `test` over `organization` under
    /// `order`.
    ///
    /// # Panics
    ///
    /// Panics if the test has more than `u16::MAX` elements or an element
    /// has more than `u8::MAX` operations — far beyond any published March
    /// algorithm — since the packed encoding reserves 16/8 bits for them.
    pub fn new(
        test: &MarchTest,
        order: &dyn AddressOrder,
        organization: &ArrayOrganization,
    ) -> Self {
        let plan = AddressPlan::new(order, organization);
        let capacity = organization.capacity();
        assert!(
            test.element_count() <= usize::from(u16::MAX),
            "march test has too many elements for the packed walk"
        );
        let mut steps = Vec::with_capacity(test.operation_count() * capacity as usize);
        let mut reads = 0u64;
        let mut writes = 0u64;
        // Sense-amplifier history for the SENSED_BEFORE stamp: the most
        // recent read (address, expected value) and the expected value of
        // the most recent read at a *different* address than that one.
        // Writes leave the sensed value untouched.
        let mut last_read: Option<(u32, bool)> = None;
        let mut prior_distinct = false;
        for (element_index, element) in test.elements().iter().enumerate() {
            let ops = element.ops();
            assert!(
                ops.len() <= usize::from(u8::MAX),
                "march element has too many operations for the packed walk"
            );
            let last_position = plan.len().saturating_sub(1);
            for (position, address) in plan.iter(element.direction()).enumerate() {
                for (op_index, &op) in ops.iter().enumerate() {
                    let mut code = op_code(op);
                    if op.is_read() {
                        reads += 1;
                        let sensed = match last_read {
                            Some((last_address, _)) if last_address == address.value() => {
                                prior_distinct
                            }
                            Some((_, last_value)) => last_value,
                            None => false,
                        };
                        if sensed {
                            code |= SENSED_BEFORE;
                        }
                        if let Some((last_address, last_value)) = last_read {
                            if last_address != address.value() {
                                prior_distinct = last_value;
                            }
                        }
                        let expected = op.expected_value().expect("reads have expectations");
                        last_read = Some((address.value(), expected));
                    } else {
                        writes += 1;
                    }
                    if op_index == ops.len() - 1 {
                        code |= LAST_ON_ADDRESS;
                        if position == last_position {
                            code |= LAST_OF_ELEMENT;
                        }
                    }
                    steps.push(PackedStep {
                        address: address.value(),
                        element: element_index as u16,
                        op_index: op_index as u8,
                        code,
                    });
                }
            }
        }
        // Counting-sort CSR of step indices by address: one pass to count,
        // one to place. `u32` step indices hold any practical walk (a
        // 512×512 March G is ~6M steps).
        assert!(
            steps.len() <= u32::MAX as usize,
            "walk too large for 32-bit step indices"
        );
        let mut address_offsets = vec![0u32; capacity as usize + 1];
        for step in &steps {
            address_offsets[step.address as usize + 1] += 1;
        }
        for a in 0..capacity as usize {
            address_offsets[a + 1] += address_offsets[a];
        }
        let mut cursor = address_offsets.clone();
        let mut address_steps = vec![0u32; steps.len()];
        let mut address_codes = vec![0u32; steps.len()];
        for (index, step) in steps.iter().enumerate() {
            let slot = cursor[step.address as usize] as usize;
            address_steps[slot] = index as u32;
            address_codes[slot] = u32::from(step.element) << 16
                | u32::from(step.op_index) << 8
                | u32::from(step.code);
            cursor[step.address as usize] += 1;
        }
        Self {
            test_name: test.name().to_string(),
            order_name: order.name().to_string(),
            capacity,
            reads,
            writes,
            steps,
            address_offsets,
            address_steps,
            address_codes,
            locality_safe: fault_free_reads_always_match(test),
        }
    }

    /// `true` when the filtered fast path
    /// ([`run_march_walk_filtered`]) is observationally equivalent to the
    /// full walk for faults confined to their involved addresses: a
    /// fault-free cell can never mismatch under this test, for any
    /// background. `false` for malformed or deliberately non-initialising
    /// tests (e.g. one that reads before any write), whose full runs
    /// mismatch on perfectly good cells — those must run unfiltered.
    pub fn locality_safe(&self) -> bool {
        self.locality_safe
    }

    /// The indices (ascending) of the walk steps that touch `address`.
    pub fn steps_touching(&self, address: Address) -> &[u32] {
        let a = address.value() as usize;
        assert!(a < self.capacity as usize, "address out of range");
        let from = self.address_offsets[a] as usize;
        let to = self.address_offsets[a + 1] as usize;
        &self.address_steps[from..to]
    }

    /// The packed payloads of the steps touching `address`, aligned
    /// entry-for-entry with [`MarchWalk::steps_touching`]: element in
    /// bits 16–31, op index in bits 8–15, code byte (operation, last-on-
    /// address/of-element flags and the sensed-before stamp) in bits 0–7.
    /// Reading these contiguous slices is how the cohort kernel builds
    /// dispatch schedules without scattered loads into the
    /// execution-ordered step array.
    pub fn step_payloads_touching(&self, address: Address) -> &[u32] {
        let a = address.value() as usize;
        assert!(a < self.capacity as usize, "address out of range");
        let from = self.address_offsets[a] as usize;
        let to = self.address_offsets[a + 1] as usize;
        &self.address_codes[from..to]
    }

    /// Name of the March test the walk was built from.
    pub fn test_name(&self) -> &str {
        &self.test_name
    }

    /// Name of the address order the walk was built from.
    pub fn order_name(&self) -> &str {
        &self.order_name
    }

    /// Number of addressable cells of the organization the walk covers.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Total number of operations in the walk.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the walk contains no operations.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of read operations in the walk.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write operations in the walk.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The traversal as fully described [`MarchStep`]s, in execution order.
    pub fn steps(&self) -> impl ExactSizeIterator<Item = MarchStep> + '_ {
        self.steps.iter().map(|step| MarchStep {
            element: usize::from(step.element),
            op_index: usize::from(step.op_index),
            address: Address::new(step.address),
            op: decode_op(step.code),
            last_op_on_address: step.code & LAST_ON_ADDRESS != 0,
            last_op_of_element: step.code & LAST_OF_ELEMENT != 0,
        })
    }
}

/// Enumerates every `(element, address, operation)` step of `test` over
/// `organization` under `order`, in execution order.
///
/// Convenience wrapper over [`MarchWalk::steps`]; sweeps that run many
/// faults should build the [`MarchWalk`] once instead.
pub fn march_walk(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
) -> Vec<MarchStep> {
    MarchWalk::new(test, order, organization).steps().collect()
}

/// Runs a precomputed `walk` on `memory` and reports every read mismatch.
pub fn run_march_walk<M: MemoryModel + ?Sized>(walk: &MarchWalk, memory: &mut M) -> MarchResult {
    let mut mismatches = Vec::new();
    for step in &walk.steps {
        let address = Address::new(step.address);
        if step.code & READ_BIT == 0 {
            memory.write(address, step.code & VALUE_BIT != 0);
        } else {
            let expected = step.code & VALUE_BIT != 0;
            let observed = memory.read(address);
            if observed != expected {
                mismatches.push(Mismatch {
                    element: usize::from(step.element),
                    address,
                    expected,
                    observed,
                });
            }
        }
    }
    MarchResult {
        mismatches,
        operations: walk.reads + walk.writes,
        reads: walk.reads,
        writes: walk.writes,
    }
}

/// Runs a precomputed `walk` on `memory`, stopping at the first mismatching
/// read. Returns `true` when the walk detected a fault.
///
/// This is the sweep kernel for coverage and degree-of-freedom experiments,
/// where only the detected/missed bit matters: a detected fault typically
/// mismatches within the first elements of the test, so the early exit
/// skips most of the remaining `O(ops × cells)` work.
pub fn run_march_until_detected<M: MemoryModel + ?Sized>(walk: &MarchWalk, memory: &mut M) -> bool {
    for step in &walk.steps {
        let address = Address::new(step.address);
        if step.code & READ_BIT == 0 {
            memory.write(address, step.code & VALUE_BIT != 0);
        } else if memory.read(address) != (step.code & VALUE_BIT != 0) {
            return true;
        }
    }
    false
}

/// The ascending, deduplicated indices of the walk steps touching a set of
/// involved addresses — the involved-step schedule shared by the per-fault
/// filtered runners and the lane-batched cohort kernel.
///
/// Single-address faults (the bulk of every fault list) borrow their CSR
/// slice directly — no allocation, no sort. Multi-address sets (the
/// coupling pair, the decoder alias, a whole cohort's merged union)
/// linearly merge their already-sorted slices, deduplicating shared
/// indices. Produced by [`merged_step_indices`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilteredSteps<'a> {
    /// A CSR slice borrowed straight from the walk (zero or one address).
    Borrowed(&'a [u32]),
    /// The merged schedule of several addresses' slices.
    Merged(Vec<u32>),
}

impl std::ops::Deref for FilteredSteps<'_> {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        match self {
            FilteredSteps::Borrowed(slice) => slice,
            FilteredSteps::Merged(vec) => vec,
        }
    }
}

/// Builds the involved-step schedule of `involved` over `walk`: every walk
/// step index touching at least one of the addresses, ascending, each
/// index exactly once.
///
/// This is the single source of the involved-step filtering used by both
/// the per-fault fast path ([`run_march_walk_filtered`],
/// [`run_march_until_detected_filtered`]) and the lane-batched cohort
/// kernel ([`run_march_lanes`]), which dispatches the merged union of a
/// whole cohort's involved sets in one pass.
///
/// # Panics
///
/// Panics if an involved address is outside the walk's capacity.
pub fn merged_step_indices<'a>(walk: &'a MarchWalk, involved: &[Address]) -> FilteredSteps<'a> {
    match involved {
        [] => FilteredSteps::Borrowed(&[]),
        [address] => FilteredSteps::Borrowed(walk.steps_touching(*address)),
        addresses => {
            // Every walk step touches exactly one address, so distinct
            // addresses contribute disjoint slices and a gather-and-sort
            // builds the union in `O(E log E)` — the old head-minimum
            // scan was `O(E × addresses)`, which dominated dense cohorts
            // whose unions span dozens of addresses. The dedup only
            // collapses duplicate addresses in `involved`.
            let mut merged: Vec<u32> = addresses
                .iter()
                .flat_map(|&address| walk.steps_touching(address).iter().copied())
                .collect();
            merged.sort_unstable();
            merged.dedup();
            FilteredSteps::Merged(merged)
        }
    }
}

/// Per-lane outcome of a batched cohort run ([`run_march_lanes`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LaneDetection {
    /// Whether at least one read mismatched in this lane.
    pub detected: bool,
    /// Number of mismatching reads observed in this lane (capped at `1`
    /// under [`DetectionMode::FirstMismatch`]).
    pub mismatches: usize,
    /// The first mismatching read of this lane, when any — identical to
    /// the first entry of the serial per-fault [`MarchResult::mismatches`]
    /// list for the same fault.
    pub first_mismatch: Option<Mismatch>,
}

/// Largest number of distinct addresses one lane cohort may involve: the
/// packed schedule entry of [`run_march_lanes`] keeps the union slot in
/// eight bits. [`crate::batch::FaultBatch`] closes cohorts before their
/// summed involved sets can exceed this, so the limit only binds custom
/// callers assembling cohorts by hand (today's fault models involve at
/// most two addresses each — 64 lanes stay well under half the budget).
pub const COHORT_ADDRESS_BUDGET: usize = 256;

#[inline]
fn lane_mask(lanes: usize) -> u64 {
    if lanes >= LaneMemory::LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Runs up to sixty-four faults through one walk scan, one bit lane each —
/// the lane-batched sweep kernel.
///
/// The kernel is generic over the lane representation: cohorts of the
/// crate's own fault models pass `&mut [LaneFaultKind]` — lane forms
/// stored inline, every faulty dispatch a monomorphized match on plain
/// enum data with no per-owner pointer chase — while the external-fault
/// escape hatch passes `&mut [Box<dyn LaneFault>]` and pays virtual
/// dispatch. Both instantiations run the identical algorithm, so their
/// results are interchangeable.
///
/// Each element of `lanes` owns the bit lane of its position in the slice:
/// a sparse [`LaneMemory`] over the cohort's merged involved addresses is
/// filled to `background`, the merged involved-step schedule (the same
/// union [`merged_step_indices`] describes, gathered here with
/// pre-resolved union slots) is dispatched once, and at every step the
/// lanes whose fault involves the step's address run their faulty form
/// while all remaining lanes take the fault-free whole-word `u64`
/// operation. Read steps compare all lanes at once: the observed word is
/// XORed against the splatted expected value and the resulting mismatch
/// mask updates per-lane detection state; under
/// [`DetectionMode::FirstMismatch`] the scan stops as soon as the
/// undetected-lane mask has zero bits left.
///
/// Per lane, the outcome (detected/escaped, mismatch count, first
/// mismatching read) is identical to running that fault alone through the
/// serial per-fault path: lanes are fully independent universes, and in a
/// locality-safe walk the steps outside a fault's involved set can neither
/// mismatch nor influence its cells.
///
/// [`LaneFaultKind`]: crate::faults::LaneFaultKind
///
/// # Panics
///
/// Panics if `lanes` is empty or longer than [`LaneMemory::LANES`], if
/// `walk` is not [`MarchWalk::locality_safe`] (such walks must run the
/// unfiltered per-fault path), if a lane involves no addresses, or if
/// the cohort's union spans more than [`COHORT_ADDRESS_BUDGET`] distinct
/// addresses.
pub fn run_march_lanes<L: LaneFault>(
    walk: &MarchWalk,
    lanes: &mut [L],
    background: bool,
    mode: DetectionMode,
) -> Vec<LaneDetection> {
    let mut scratch = LaneScratch::new();
    run_march_lanes_scratch(walk, lanes, background, mode, &mut scratch);
    scratch.results
}

/// Reusable dispatch buffers of the lane-batched kernel.
///
/// One cohort dispatch needs half a dozen transient arrays — the gathered
/// involved sets, the sorted union, per-slot ownership masks, the sparse
/// [`LaneMemory`], the packed step schedule and the per-lane results.
/// Allocating them per cohort is pure overhead once a sweep runs tens of
/// thousands of cohorts, so [`run_march_lanes_scratch`] takes them from
/// this scratch instead: every buffer is cleared and regrown in place, and
/// a scratch reused across cohorts only allocates when a cohort is larger
/// than any before it. Sweeps keep one `LaneScratch` per worker inside the
/// pool's [`WorkerScratch`](crate::parallel::WorkerScratch).
///
/// A `LaneScratch` carries no cohort state between runs — reusing one is
/// observationally identical to constructing a fresh one per call (the
/// one-shot [`run_march_lanes`] does exactly that).
#[derive(Debug, Default)]
pub struct LaneScratch {
    /// Flat gather of all lanes' involved addresses; lane `l` owns
    /// `involved[involved_ends[l - 1]..involved_ends[l]]` (from `0` for
    /// the first lane).
    involved: Vec<Address>,
    /// Per-lane end offsets into `involved`.
    involved_ends: Vec<u32>,
    /// The cohort's sorted, deduplicated involved-address union.
    union: Vec<Address>,
    /// Per-union-slot mask of the lanes whose fault involves the address.
    owned_masks: Vec<u64>,
    /// The sparse lane store, retargeted per cohort via
    /// [`LaneMemory::reset_sorted`]. `None` until the first run.
    memory: Option<LaneMemory>,
    /// Packed dispatch schedule (see [`run_march_lanes`]'s entry layout).
    schedule: Vec<u64>,
    /// Per-lane outcomes of the most recent run.
    results: Vec<LaneDetection>,
}

impl LaneScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-lane outcomes of the most recent [`run_march_lanes_scratch`]
    /// call through this scratch (empty before the first).
    pub fn results(&self) -> &[LaneDetection] {
        &self.results
    }
}

/// [`run_march_lanes`] with caller-owned dispatch buffers: identical
/// algorithm, identical per-lane outcomes, but every transient array
/// lives in `scratch` so consecutive cohorts on one worker reuse their
/// allocations. Returns the per-lane detections as a borrow of
/// `scratch` (also available as [`LaneScratch::results`] until the next
/// run).
///
/// # Panics
///
/// Exactly as [`run_march_lanes`].
pub fn run_march_lanes_scratch<'s, L: LaneFault>(
    walk: &MarchWalk,
    lanes: &mut [L],
    background: bool,
    mode: DetectionMode,
    scratch: &'s mut LaneScratch,
) -> &'s [LaneDetection] {
    assert!(
        !lanes.is_empty() && lanes.len() <= LaneMemory::LANES,
        "a cohort holds 1..=64 lanes"
    );
    assert!(
        walk.locality_safe(),
        "lane batching requires a locality-safe walk"
    );
    scratch.involved.clear();
    scratch.involved_ends.clear();
    for lane in lanes.iter() {
        lane.involved_into(&mut scratch.involved);
        scratch.involved_ends.push(scratch.involved.len() as u32);
    }
    scratch.union.clear();
    scratch.union.extend_from_slice(&scratch.involved);
    scratch.union.sort_unstable();
    scratch.union.dedup();
    let union = &scratch.union;
    assert!(
        union.len() <= COHORT_ADDRESS_BUDGET,
        "a cohort may involve at most {COHORT_ADDRESS_BUDGET} distinct addresses \
         (the planner enforces this for its own plans)"
    );
    // Owner masks, aligned with the sorted union: which lanes' faults
    // involve each address. The whole-word ops skip these lanes and the
    // per-lane faulty dispatch iterates them straight off the mask bits.
    scratch.owned_masks.clear();
    scratch.owned_masks.resize(union.len(), 0);
    let mut start = 0usize;
    for (lane, &end) in scratch.involved_ends.iter().enumerate() {
        let addresses = &scratch.involved[start..end as usize];
        start = end as usize;
        assert!(
            !addresses.is_empty(),
            "lane {lane} fault involves no addresses"
        );
        for address in addresses {
            let slot = union
                .binary_search(address)
                .expect("union covers all lanes");
            scratch.owned_masks[slot] |= 1u64 << lane;
        }
    }
    match &mut scratch.memory {
        Some(memory) => memory.reset_sorted(walk.capacity(), union),
        slot @ None => *slot = Some(LaneMemory::from_sorted(walk.capacity(), union)),
    }
    let memory = scratch.memory.as_mut().expect("just initialised");
    memory.fill(background);
    let active = lane_mask(lanes.len());
    let mut detected = 0u64;
    scratch.results.clear();
    scratch
        .results
        .resize(lanes.len(), LaneDetection::default());
    // The cohort's dispatch schedule: every walk step touching a union
    // address, ascending, pre-tagged with its union slot and packed
    // payload. Each step touches exactly one address, so the per-address
    // CSR slices are disjoint and a gather-and-sort replaces both a
    // head-minimum merge and a per-step binary search over the union;
    // carrying the payload keeps the dispatch loop entirely off the
    // execution-ordered step array, whose scattered megabit-walk loads
    // would otherwise be one cache miss per step. Each entry packs into
    // one `u64` — step index (32) | element (16) | slot (8) | code (8) —
    // so ordering the schedule is a plain integer sort and step indices
    // are unique, making the order total.
    scratch.schedule.clear();
    scratch.schedule.reserve(
        union
            .iter()
            .map(|&address| walk.steps_touching(address).len())
            .sum(),
    );
    for (slot, &address) in union.iter().enumerate() {
        let indices = walk.steps_touching(address);
        let payloads = walk.step_payloads_touching(address);
        scratch
            .schedule
            .extend(indices.iter().zip(payloads).map(|(&index, &payload)| {
                u64::from(index) << 32
                    | u64::from(payload & 0xFFFF_0000)
                    | (slot as u64) << 8
                    | u64::from(payload & 0xFF)
            }));
    }
    scratch.schedule.sort_unstable();
    for &entry in &scratch.schedule {
        let code = entry as u8;
        let element = (entry >> 16) as u16;
        let slot = (entry >> 8) as u8 as usize;
        let address = union[slot];
        if code & READ_BIT == 0 {
            let value = code & VALUE_BIT != 0;
            let mut owners = scratch.owned_masks[slot];
            while owners != 0 {
                let lane = owners.trailing_zeros();
                lanes[lane as usize].lane_write(memory, lane, address, value);
                owners &= owners - 1;
            }
            memory.write_word_at(slot, value, scratch.owned_masks[slot]);
        } else {
            let expected = code & VALUE_BIT != 0;
            let sensed_before = code & SENSED_BEFORE != 0;
            let mut observed = memory.word_at(slot);
            let mut owners = scratch.owned_masks[slot];
            while owners != 0 {
                let lane = owners.trailing_zeros();
                let bit = lanes[lane as usize].lane_read(memory, lane, address, sensed_before);
                observed = (observed & !(1u64 << lane)) | (u64::from(bit) << lane);
                owners &= owners - 1;
            }
            let expected_word = if expected { u64::MAX } else { 0 };
            let miss = (observed ^ expected_word) & active;
            if miss != 0 {
                let mut fresh = miss & !detected;
                while fresh != 0 {
                    let lane = fresh.trailing_zeros() as usize;
                    scratch.results[lane].first_mismatch = Some(Mismatch {
                        element: usize::from(element),
                        address,
                        expected,
                        observed: observed >> lane & 1 == 1,
                    });
                    fresh &= fresh - 1;
                }
                detected |= miss;
                match mode {
                    DetectionMode::Full => {
                        let mut each = miss;
                        while each != 0 {
                            let lane = each.trailing_zeros() as usize;
                            scratch.results[lane].mismatches += 1;
                            each &= each - 1;
                        }
                    }
                    DetectionMode::FirstMismatch => {
                        if (active & !detected).count_ones() == 0 {
                            break;
                        }
                    }
                }
            }
        }
    }
    for (lane, result) in scratch.results.iter_mut().enumerate() {
        result.detected = detected >> lane & 1 == 1;
        if mode == DetectionMode::FirstMismatch {
            result.mismatches = usize::from(result.detected);
        }
    }
    &scratch.results
}

/// Runs only the steps of `walk` that touch one of the `involved`
/// addresses, reporting every read mismatch among them.
///
/// This is the locality fast path of the kernel: a fault whose behaviour
/// is confined to a few cells (see
/// [`crate::faults::Fault::involved_addresses`]) is observationally
/// equivalent under the full walk and under its filtered slice — skipped
/// cells behave fault-free, and a March read of a fault-free cell always
/// matches its expectation. Instead of `O(ops × cells)` the simulation
/// costs `O(ops × involved)`.
///
/// The returned operation/read/write totals are those of the **full**
/// walk, so the result is directly comparable (and equal, for a fault
/// confined to `involved`) to [`run_march_walk`] on the same memory.
pub fn run_march_walk_filtered<M: MemoryModel + ?Sized>(
    walk: &MarchWalk,
    memory: &mut M,
    involved: &[Address],
) -> MarchResult {
    let mut mismatches = Vec::new();
    for &index in merged_step_indices(walk, involved).iter() {
        let step = &walk.steps[index as usize];
        let address = Address::new(step.address);
        if step.code & READ_BIT == 0 {
            memory.write(address, step.code & VALUE_BIT != 0);
        } else {
            let expected = step.code & VALUE_BIT != 0;
            let observed = memory.read(address);
            if observed != expected {
                mismatches.push(Mismatch {
                    element: usize::from(step.element),
                    address,
                    expected,
                    observed,
                });
            }
        }
    }
    MarchResult {
        mismatches,
        operations: walk.reads + walk.writes,
        reads: walk.reads,
        writes: walk.writes,
    }
}

/// Early-exit variant of [`run_march_walk_filtered`]: runs only the steps
/// touching `involved` addresses and returns `true` at the first
/// mismatching read.
pub fn run_march_until_detected_filtered<M: MemoryModel + ?Sized>(
    walk: &MarchWalk,
    memory: &mut M,
    involved: &[Address],
) -> bool {
    for &index in merged_step_indices(walk, involved).iter() {
        let step = &walk.steps[index as usize];
        let address = Address::new(step.address);
        if step.code & READ_BIT == 0 {
            memory.write(address, step.code & VALUE_BIT != 0);
        } else if memory.read(address) != (step.code & VALUE_BIT != 0) {
            return true;
        }
    }
    false
}

/// Runs `test` on `memory` and reports every read mismatch.
///
/// Builds a throw-away [`MarchWalk`] internally; callers that simulate
/// many faults under the same `(test, order, organization)` should build
/// the walk once and call [`run_march_walk`].
pub fn run_march(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    memory: &mut dyn MemoryModel,
) -> MarchResult {
    let walk = MarchWalk::new(test, order, organization);
    run_march_walk(&walk, memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_order::{ColumnMajor, PseudoRandomOrder, WordLineAfterWordLine};
    use crate::faults::{standard_fault_list, FaultyMemory};
    use crate::library;
    use crate::memory::GoodMemory;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 4).unwrap()
    }

    #[test]
    fn fault_free_memory_passes_every_library_test() {
        let organization = org();
        for test in library::all_algorithms() {
            let mut memory = GoodMemory::new(organization.capacity());
            let result = run_march(&test, &WordLineAfterWordLine, &organization, &mut memory);
            assert!(result.passed(), "{} failed on a good memory", test.name());
            assert_eq!(
                result.operations,
                test.total_operations(u64::from(organization.capacity()))
            );
            assert_eq!(
                result.reads + result.writes,
                result.operations,
                "{}: reads + writes must equal operations",
                test.name()
            );
        }
    }

    #[test]
    fn coverage_independent_of_order_for_good_memory() {
        let organization = org();
        let test = library::march_c_minus();
        let mut m1 = GoodMemory::new(organization.capacity());
        let mut m2 = GoodMemory::new(organization.capacity());
        let r1 = run_march(&test, &WordLineAfterWordLine, &organization, &mut m1);
        let r2 = run_march(&test, &ColumnMajor, &organization, &mut m2);
        assert!(r1.passed() && r2.passed());
    }

    #[test]
    fn stuck_cell_is_detected() {
        // A crude inline stuck-at-0: a memory whose cell 5 never stores 1.
        struct StuckAt0(GoodMemory);
        impl MemoryModel for StuckAt0 {
            fn capacity(&self) -> u32 {
                self.0.capacity()
            }
            fn read(&mut self, address: Address) -> bool {
                self.0.read(address)
            }
            fn write(&mut self, address: Address, value: bool) {
                if address.value() == 5 {
                    self.0.write(address, false);
                } else {
                    self.0.write(address, value);
                }
            }
        }
        let organization = org();
        let mut memory = StuckAt0(GoodMemory::new(organization.capacity()));
        let result = run_march(
            &library::march_c_minus(),
            &WordLineAfterWordLine,
            &organization,
            &mut memory,
        );
        assert!(result.detected_fault());
        assert!(result
            .mismatches
            .iter()
            .all(|m| m.address == Address::new(5)));
    }

    #[test]
    fn walk_enumerates_every_operation_in_order() {
        let organization = org();
        let test = library::mats_plus();
        let steps = march_walk(&test, &WordLineAfterWordLine, &organization);
        assert_eq!(
            steps.len(),
            test.operation_count() * organization.capacity() as usize
        );
        // First element is ⇕(w0): one op per address, each both last-on-
        // address; the final one is also last-of-element.
        assert!(steps[0].last_op_on_address);
        assert!(!steps[0].last_op_of_element);
        let first_element_steps = organization.capacity() as usize;
        assert!(steps[first_element_steps - 1].last_op_of_element);
        // Second element ⇑(r0,w1): alternating last_op_on_address.
        let s = &steps[first_element_steps];
        assert_eq!(s.element, 1);
        assert_eq!(s.op, MarchOp::R0);
        assert!(!s.last_op_on_address);
        assert!(steps[first_element_steps + 1].last_op_on_address);
        // Descending element ends on address 0.
        let last = steps.last().unwrap();
        assert_eq!(last.element, 2);
        assert_eq!(last.address, Address::new(0));
        assert!(last.last_op_of_element);
    }

    #[test]
    fn address_plan_serves_both_directions_from_one_permutation() {
        let organization = ArrayOrganization::new(4, 8).unwrap();
        let order = PseudoRandomOrder::new(99);
        let plan = AddressPlan::new(&order, &organization);
        assert_eq!(plan.len(), 32);
        assert!(!plan.is_empty());
        let up: Vec<Address> = plan.iter(AddressDirection::Ascending).collect();
        let either: Vec<Address> = plan.iter(AddressDirection::Either).collect();
        let mut down: Vec<Address> = plan.iter(AddressDirection::Descending).collect();
        assert_eq!(up, order.ascending(&organization));
        assert_eq!(up, either);
        down.reverse();
        assert_eq!(up, down, "⇓ must be the exact reverse of ⇑");
        assert_eq!(plan.at(AddressDirection::Ascending, 32), None);
        assert_eq!(plan.at(AddressDirection::Descending, 32), None);
    }

    #[test]
    fn walk_based_run_equals_legacy_signature_run() {
        let organization = org();
        for test in library::table1_algorithms() {
            let walk = MarchWalk::new(&test, &ColumnMajor, &organization);
            assert_eq!(walk.test_name(), test.name());
            assert_eq!(walk.order_name(), "column major");
            assert_eq!(walk.capacity(), organization.capacity());
            assert_eq!(
                walk.len() as u64,
                test.total_operations(u64::from(organization.capacity()))
            );
            let mut m1 = GoodMemory::new(organization.capacity());
            let mut m2 = GoodMemory::new(organization.capacity());
            let from_walk = run_march_walk(&walk, &mut m1);
            let from_legacy = run_march(&test, &ColumnMajor, &organization, &mut m2);
            assert_eq!(from_walk, from_legacy, "{}", test.name());
        }
    }

    #[test]
    fn early_exit_agrees_with_the_full_run_on_every_standard_fault() {
        let organization = org();
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
            for factory in &faults {
                let mut full =
                    FaultyMemory::new(GoodMemory::new(organization.capacity()), factory());
                let mut early =
                    FaultyMemory::new(GoodMemory::new(organization.capacity()), factory());
                let full_result = run_march_walk(&walk, &mut full);
                let early_detected = run_march_until_detected(&walk, &mut early);
                assert_eq!(
                    full_result.detected_fault(),
                    early_detected,
                    "{} / {}",
                    test.name(),
                    factory().name()
                );
            }
        }
    }

    #[test]
    fn filtered_run_is_observationally_equivalent_to_the_full_walk() {
        // The locality fast path must agree with the unfiltered kernel on
        // the complete mismatch list — not just the detection bit — for
        // every localised fault, algorithm, order and background.
        for organization in [
            ArrayOrganization::new(4, 4).unwrap(),
            ArrayOrganization::new(3, 7).unwrap(),
        ] {
            let faults = standard_fault_list(&organization);
            for test in library::all_algorithms() {
                for order in [
                    &WordLineAfterWordLine as &dyn crate::address_order::AddressOrder,
                    &ColumnMajor,
                ] {
                    let walk = MarchWalk::new(&test, order, &organization);
                    for factory in &faults {
                        let Some(involved) = factory().involved_addresses() else {
                            continue; // global faults have no filtered path
                        };
                        for background in [false, true] {
                            let mut full_memory = FaultyMemory::new(
                                GoodMemory::filled(organization.capacity(), background),
                                factory(),
                            );
                            let mut filtered_memory = FaultyMemory::new(
                                GoodMemory::filled(organization.capacity(), background),
                                factory(),
                            );
                            let full = run_march_walk(&walk, &mut full_memory);
                            let filtered =
                                run_march_walk_filtered(&walk, &mut filtered_memory, &involved);
                            assert_eq!(
                                full,
                                filtered,
                                "{} / {} / {} / background {background}",
                                test.name(),
                                order.name(),
                                factory().name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn steps_touching_partitions_the_walk() {
        let organization = org();
        let test = library::march_ss();
        let walk = MarchWalk::new(&test, &ColumnMajor, &organization);
        let mut seen = 0usize;
        for raw in 0..organization.capacity() {
            let indices = walk.steps_touching(Address::new(raw));
            let payloads = walk.step_payloads_touching(Address::new(raw));
            assert_eq!(indices.len(), test.operation_count());
            assert_eq!(payloads.len(), indices.len(), "payloads align with indices");
            assert!(indices.windows(2).all(|w| w[0] < w[1]), "ascending order");
            for (&index, &payload) in indices.iter().zip(payloads) {
                let step = walk.steps().nth(index as usize).unwrap();
                assert_eq!(step.address, Address::new(raw));
                // The packed payload must reproduce the step exactly.
                assert_eq!((payload >> 16) as usize, step.element);
                assert_eq!((payload >> 8 & 0xFF) as usize, step.op_index);
                assert_eq!(decode_op(payload as u8), step.op);
                assert_eq!(
                    payload as u8 & LAST_ON_ADDRESS != 0,
                    step.last_op_on_address
                );
            }
            seen += indices.len();
        }
        assert_eq!(seen, walk.len(), "every step belongs to exactly one cell");
    }

    #[test]
    fn merged_step_indices_is_the_shared_involved_step_schedule() {
        let organization = org();
        let test = library::march_ss();
        let walk = MarchWalk::new(&test, &ColumnMajor, &organization);
        // Empty set: empty borrowed schedule.
        assert!(merged_step_indices(&walk, &[]).is_empty());
        // Single address: the CSR slice itself, borrowed.
        let single = merged_step_indices(&walk, &[Address::new(5)]);
        assert!(matches!(single, FilteredSteps::Borrowed(_)));
        assert_eq!(&*single, walk.steps_touching(Address::new(5)));
        // Several addresses (duplicates included): ascending, deduplicated
        // union of their slices.
        let involved = [Address::new(5), Address::new(2), Address::new(5)];
        let merged = merged_step_indices(&walk, &involved);
        assert!(matches!(merged, FilteredSteps::Merged(_)));
        let mut expected: Vec<u32> = walk
            .steps_touching(Address::new(2))
            .iter()
            .chain(walk.steps_touching(Address::new(5)))
            .copied()
            .collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(&*merged, expected.as_slice());
        // The whole array merges back into every step exactly once.
        let all: Vec<Address> = (0..organization.capacity()).map(Address::new).collect();
        let complete = merged_step_indices(&walk, &all);
        assert_eq!(complete.len(), walk.len());
        assert!(complete.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sensed_before_stamp_tracks_the_latest_distinct_read() {
        use crate::element::MarchElement;

        // One cell-pair walk with back-to-back reads: ⇑(w0); ⇑(r0,r0,w1,r1)
        // over two cells. The stamp of a read must be the expected value of
        // the latest earlier read at a *different* address (0 when none) —
        // exactly the bit-line history a stuck-open victim observes.
        let organization = ArrayOrganization::new(1, 2).unwrap();
        let test = MarchTest::new(
            "rr",
            vec![
                MarchElement::ascending(vec![MarchOp::W0]),
                MarchElement::ascending(vec![MarchOp::R0, MarchOp::R0, MarchOp::W1, MarchOp::R1]),
            ],
        );
        let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
        let sensed: Vec<Option<bool>> = walk
            .steps
            .iter()
            .map(|step| (step.code & READ_BIT != 0).then_some(step.code & SENSED_BEFORE != 0))
            .collect();
        assert_eq!(
            sensed,
            vec![
                None,        // w0 @0
                None,        // w0 @1
                Some(false), // r0 @0 — no earlier read at all
                Some(false), // r0 @0 — earlier reads only at @0 itself
                None,        // w1 @0
                Some(false), // r1 @0 — still no read at a different address
                Some(true),  // r0 @1 — latest distinct read is r1 @0, expecting 1
                Some(true),  // r0 @1 — @1's own reads don't refresh the history
                None,        // w1 @1
                Some(true),  // r1 @1 — latest distinct read is still r1 @0
            ],
            "sensed-before stamps"
        );
    }

    #[test]
    fn walk_reports_read_write_split() {
        let organization = org();
        let test = library::march_c_minus();
        let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
        let cells = u64::from(organization.capacity());
        assert_eq!(walk.reads(), test.read_count() as u64 * cells);
        assert_eq!(walk.writes(), test.write_count() as u64 * cells);
        assert!(!walk.is_empty());
    }
}
