//! March test execution.
//!
//! [`run_march`] applies a [`MarchTest`] to any [`MemoryModel`] under a
//! chosen [`AddressOrder`], comparing every read against its expected value
//! and recording mismatches. [`MarchWalk`] exposes the same traversal as a
//! flat iterator of [`MarchStep`]s so that higher layers (the low-power
//! test engine in the `lp-precharge` crate) can map each operation onto a
//! memory clock cycle without re-implementing the ordering rules.

use serde::{Deserialize, Serialize};
use sram_model::address::Address;
use sram_model::config::ArrayOrganization;

use crate::address_order::AddressOrder;
use crate::algorithm::MarchTest;
use crate::memory::MemoryModel;
use crate::operation::MarchOp;

/// One operation of a March test applied to one address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarchStep {
    /// Index of the March element this step belongs to.
    pub element: usize,
    /// Index of the operation within the element.
    pub op_index: usize,
    /// The address the operation targets.
    pub address: Address,
    /// The operation itself.
    pub op: MarchOp,
    /// `true` if this is the last operation applied to this address within
    /// the current element (the next step moves to a new address or a new
    /// element).
    pub last_op_on_address: bool,
    /// `true` if this is the last operation of the element on the last
    /// address of the element's sequence.
    pub last_op_of_element: bool,
}

/// A detected mismatch: a read returned something other than its expected
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mismatch {
    /// The element in which the failing read occurred.
    pub element: usize,
    /// The address that failed.
    pub address: Address,
    /// The value the March test expected.
    pub expected: bool,
    /// The value the memory returned.
    pub observed: bool,
}

/// Result of running a March test.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MarchResult {
    /// Every read mismatch, in occurrence order.
    pub mismatches: Vec<Mismatch>,
    /// Number of operations executed.
    pub operations: u64,
    /// Number of read operations executed.
    pub reads: u64,
    /// Number of write operations executed.
    pub writes: u64,
}

impl MarchResult {
    /// `true` when no read mismatched — the memory passes the test.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// `true` when at least one read mismatched — a fault was detected.
    pub fn detected_fault(&self) -> bool {
        !self.mismatches.is_empty()
    }
}

/// Enumerates every `(element, address, operation)` step of `test` over
/// `organization` under `order`, in execution order.
pub fn march_walk(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
) -> Vec<MarchStep> {
    let mut steps = Vec::with_capacity(
        test.operation_count() * organization.capacity() as usize,
    );
    for (element_index, element) in test.elements().iter().enumerate() {
        let addresses = order.sequence(organization, element.direction());
        let ops = element.ops();
        for (addr_pos, &address) in addresses.iter().enumerate() {
            for (op_index, &op) in ops.iter().enumerate() {
                let last_op_on_address = op_index == ops.len() - 1;
                steps.push(MarchStep {
                    element: element_index,
                    op_index,
                    address,
                    op,
                    last_op_on_address,
                    last_op_of_element: last_op_on_address && addr_pos == addresses.len() - 1,
                });
            }
        }
    }
    steps
}

/// Runs `test` on `memory` and reports every read mismatch.
pub fn run_march(
    test: &MarchTest,
    order: &dyn AddressOrder,
    organization: &ArrayOrganization,
    memory: &mut dyn MemoryModel,
) -> MarchResult {
    let mut result = MarchResult::default();
    for (element_index, element) in test.elements().iter().enumerate() {
        let addresses = order.sequence(organization, element.direction());
        for &address in &addresses {
            for &op in element.ops() {
                result.operations += 1;
                match op {
                    MarchOp::W0 => {
                        memory.write(address, false);
                        result.writes += 1;
                    }
                    MarchOp::W1 => {
                        memory.write(address, true);
                        result.writes += 1;
                    }
                    MarchOp::R0 | MarchOp::R1 => {
                        result.reads += 1;
                        let expected = op.expected_value().expect("reads have expectations");
                        let observed = memory.read(address);
                        if observed != expected {
                            result.mismatches.push(Mismatch {
                                element: element_index,
                                address,
                                expected,
                                observed,
                            });
                        }
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address_order::{ColumnMajor, WordLineAfterWordLine};
    use crate::library;
    use crate::memory::GoodMemory;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 4).unwrap()
    }

    #[test]
    fn fault_free_memory_passes_every_library_test() {
        let organization = org();
        for test in library::all_algorithms() {
            let mut memory = GoodMemory::new(organization.capacity());
            let result = run_march(&test, &WordLineAfterWordLine, &organization, &mut memory);
            assert!(result.passed(), "{} failed on a good memory", test.name());
            assert_eq!(
                result.operations,
                test.total_operations(u64::from(organization.capacity()))
            );
            assert_eq!(
                result.reads + result.writes,
                result.operations,
                "{}: reads + writes must equal operations",
                test.name()
            );
        }
    }

    #[test]
    fn coverage_independent_of_order_for_good_memory() {
        let organization = org();
        let test = library::march_c_minus();
        let mut m1 = GoodMemory::new(organization.capacity());
        let mut m2 = GoodMemory::new(organization.capacity());
        let r1 = run_march(&test, &WordLineAfterWordLine, &organization, &mut m1);
        let r2 = run_march(&test, &ColumnMajor, &organization, &mut m2);
        assert!(r1.passed() && r2.passed());
    }

    #[test]
    fn stuck_cell_is_detected() {
        // A crude inline stuck-at-0: a memory whose cell 5 never stores 1.
        struct StuckAt0(GoodMemory);
        impl MemoryModel for StuckAt0 {
            fn capacity(&self) -> u32 {
                self.0.capacity()
            }
            fn read(&mut self, address: Address) -> bool {
                self.0.read(address)
            }
            fn write(&mut self, address: Address, value: bool) {
                if address.value() == 5 {
                    self.0.write(address, false);
                } else {
                    self.0.write(address, value);
                }
            }
        }
        let organization = org();
        let mut memory = StuckAt0(GoodMemory::new(organization.capacity()));
        let result = run_march(
            &library::march_c_minus(),
            &WordLineAfterWordLine,
            &organization,
            &mut memory,
        );
        assert!(result.detected_fault());
        assert!(result
            .mismatches
            .iter()
            .all(|m| m.address == Address::new(5)));
    }

    #[test]
    fn walk_enumerates_every_operation_in_order() {
        let organization = org();
        let test = library::mats_plus();
        let steps = march_walk(&test, &WordLineAfterWordLine, &organization);
        assert_eq!(
            steps.len(),
            test.operation_count() * organization.capacity() as usize
        );
        // First element is ⇕(w0): one op per address, each both last-on-
        // address; the final one is also last-of-element.
        assert!(steps[0].last_op_on_address);
        assert!(!steps[0].last_op_of_element);
        let first_element_steps = organization.capacity() as usize;
        assert!(steps[first_element_steps - 1].last_op_of_element);
        // Second element ⇑(r0,w1): alternating last_op_on_address.
        let s = &steps[first_element_steps];
        assert_eq!(s.element, 1);
        assert_eq!(s.op, MarchOp::R0);
        assert!(!s.last_op_on_address);
        assert!(steps[first_element_steps + 1].last_op_on_address);
        // Descending element ends on address 0.
        let last = steps.last().unwrap();
        assert_eq!(last.element, 2);
        assert_eq!(last.address, Address::new(0));
        assert!(last.last_op_of_element);
    }
}
