//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace is dependency-free (the build environment has no access
//! to crates.io), so the pseudo-random address order and the randomised
//! tests use this local SplitMix64 generator instead of the `rand` crate.
//! SplitMix64 passes BigCrush, needs two lines of state-update code and —
//! most importantly here — is *stable*: a given seed produces the same
//! sequence on every platform and in every future version, which keeps
//! experiment outputs reproducible.

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; the same seed always produces the
    /// same sequence.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value in `0..bound` (`bound` must be
    /// non-zero). Uses Lemire's multiply-shift reduction, which is unbiased
    /// enough for shuffling and test-case generation.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be non-zero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniformly distributed boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle of `slice`, driven by this generator.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Streaming FNV-1a 64-bit hash.
///
/// The campaign layer journals fixed-width binary records and gates
/// resumed runs on digest equality; like [`SplitMix64`], this hash exists
/// locally because the workspace is dependency-free, and it is *stable*:
/// the same byte stream produces the same digest on every platform and in
/// every future version, which is what lets committed journals and
/// exported campaign outputs be compared byte for byte across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// The FNV-1a 64-bit offset basis.
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    /// The FNV-1a 64-bit prime.
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Absorbs `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, value: u32) {
        self.write(&value.to_le_bytes());
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, value: u8) {
        self.write(&[value]);
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// One-shot digest of `bytes`.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut hasher = Self::new();
        hasher.write(bytes);
        hasher.finish()
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(2006);
        let mut values: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            values, sorted,
            "a 100-element shuffle is the identity with probability 1/100!"
        );
    }

    #[test]
    fn fnv1a_matches_the_published_test_vectors() {
        // Reference digests from the FNV specification (draft-eastlake):
        // the empty string hashes to the offset basis, "a" and "foobar"
        // to the published 64-bit FNV-1a values.
        assert_eq!(Fnv1a::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_streaming_equals_one_shot() {
        let mut streaming = Fnv1a::new();
        streaming.write(b"cam");
        streaming.write_u8(b'p');
        streaming.write(b"aign");
        assert_eq!(streaming.finish(), Fnv1a::hash(b"campaign"));
        let mut words = Fnv1a::new();
        words.write_u32(0xDEAD_BEEF);
        words.write_u64(0x0123_4567_89AB_CDEF);
        let mut bytes = Fnv1a::new();
        bytes.write(&0xDEAD_BEEFu32.to_le_bytes());
        bytes.write(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        assert_eq!(words.finish(), bytes.finish());
    }
}
