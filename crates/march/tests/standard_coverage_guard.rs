//! Regression guard: the golden coverage table of the standard 48-fault
//! library is frozen, and no sweep backend, cohort planner or threading
//! choice may move it.
//!
//! The detected counts below are the reproduction's Table-1-adjacent
//! ground truth (identical at 4×4 and 8×8 — the standard list pins its
//! victims relative to the array, so the counts are size-stable). If a
//! planner swap, kernel rewrite or packing change alters any of them,
//! this test names the algorithm and configuration instead of letting the
//! drift hide inside an equivalence shuffle.

use march_test::address_order::{AddressOrder, ColumnMajor, LinearOrder, WordLineAfterWordLine};
use march_test::coverage::{evaluate_coverage_with, SweepBackend, SweepOptions};
use march_test::dof::verify_order_independence_with;
use march_test::fault_sim::DetectionMode;
use march_test::faults::standard_fault_list;
use march_test::library;
use sram_model::config::ArrayOrganization;

/// The frozen golden table: `(algorithm, detected)` out of the 48-fault
/// standard library under the word-line-after-word-line order.
const GOLDEN_DETECTED: [(&str, usize); 5] = [
    ("March C-", 44),
    ("March SS", 47),
    ("MATS+", 36),
    ("March SR", 45),
    ("March G", 48),
];

const BACKENDS: [SweepBackend; 3] = [
    SweepBackend::PerFault,
    SweepBackend::LaneBatched,
    SweepBackend::LaneBatchedListOrder,
];

#[test]
fn golden_coverage_table_is_stable_across_planners_and_backends() {
    for organization in [
        ArrayOrganization::new(4, 4).unwrap(),
        ArrayOrganization::new(8, 8).unwrap(),
    ] {
        let faults = standard_fault_list(&organization);
        assert_eq!(faults.len(), 48, "the standard library holds 48 faults");
        for (test, &(name, golden_detected)) in
            library::table1_algorithms().iter().zip(&GOLDEN_DETECTED)
        {
            assert_eq!(test.name(), name);
            for backend in BACKENDS {
                for parallel in [false, true] {
                    for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
                        let report = evaluate_coverage_with(
                            test,
                            &WordLineAfterWordLine,
                            &organization,
                            &faults,
                            SweepOptions {
                                background: false,
                                mode,
                                parallel,
                                backend,
                            },
                        );
                        assert_eq!(
                            report.detected(),
                            golden_detected,
                            "{name} @ {}x{} [{backend:?}, parallel={parallel}, {mode:?}]: \
                             the golden coverage table moved",
                            organization.rows(),
                            organization.cols(),
                        );
                        assert_eq!(report.total(), 48);
                    }
                }
            }
        }
    }
}

/// The DOF experiment's verdicts must be as planner-independent as the
/// coverage numbers: the static fault classes stay order-independent and
/// guaranteed coverage survives, whichever backend runs the sweeps.
#[test]
fn dof_verdicts_are_stable_across_planners() {
    let organization = ArrayOrganization::new(4, 4).unwrap();
    let faults = standard_fault_list(&organization);
    let orders: Vec<&dyn AddressOrder> = vec![&WordLineAfterWordLine, &ColumnMajor, &LinearOrder];
    let mut coverages = Vec::new();
    for backend in BACKENDS {
        for test in library::table1_algorithms() {
            let report = verify_order_independence_with(
                &test,
                &orders,
                &organization,
                &faults,
                SweepOptions {
                    background: false,
                    mode: DetectionMode::FirstMismatch,
                    parallel: false,
                    backend,
                },
            );
            assert!(
                report.coverage_is_order_independent(),
                "{} under {backend:?}",
                test.name()
            );
            assert!(
                report.guaranteed_coverage_preserved(),
                "{} under {backend:?}",
                test.name()
            );
            coverages.push(report.coverage());
        }
    }
    // The per-algorithm coverage fractions must be identical across the
    // three backends, not merely internally consistent.
    let per_backend = coverages.len() / BACKENDS.len();
    for backend in 1..BACKENDS.len() {
        assert_eq!(
            coverages[..per_backend],
            coverages[backend * per_backend..(backend + 1) * per_backend],
            "DOF coverage fractions moved under {:?}",
            BACKENDS[backend]
        );
    }
}
