//! Exhaustive equivalence of the lane-batched fault-simulation backend
//! against the serial per-fault golden path.
//!
//! The batched backend must be *bit-identical* in its observable results:
//! detected/escaped per fault, mismatch counts, and the first-detecting
//! element/operation — across the whole fault library, several array
//! organizations, both data backgrounds, every library algorithm, and odd
//! cohort sizes around the 64-lane boundary.

use march_test::address_order::{AddressOrder, ColumnMajor, WordLineAfterWordLine};
use march_test::batch::{sweep_batched, Cohort, FaultBatch};
use march_test::coverage::{evaluate_coverage_with, SweepBackend, SweepOptions};
use march_test::executor::{run_march_lanes, run_march_walk, MarchWalk};
use march_test::fault_sim::DetectionMode;
use march_test::faults::{
    standard_fault_list, CouplingInversionFault, Fault, FaultFactory, FaultyMemory, StuckAtFault,
    TransitionFault, WriteDisturbFault,
};
use march_test::library;
use march_test::memory::GoodMemory;
use sram_model::address::Address;
use sram_model::config::ArrayOrganization;

fn organizations() -> Vec<ArrayOrganization> {
    vec![
        ArrayOrganization::new(4, 4).unwrap(),
        ArrayOrganization::new(3, 7).unwrap(),
        ArrayOrganization::new(8, 8).unwrap(),
    ]
}

/// The core guarantee: for every algorithm × order × organization ×
/// background × detection mode, the batched sweep over the whole standard
/// fault library produces a report identical to the serial per-fault one.
#[test]
fn batched_sweep_equals_the_serial_per_fault_path_everywhere() {
    for organization in organizations() {
        let faults = standard_fault_list(&organization);
        for test in library::all_algorithms() {
            for order in [&WordLineAfterWordLine as &dyn AddressOrder, &ColumnMajor] {
                for background in [false, true] {
                    for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
                        let golden = evaluate_coverage_with(
                            &test,
                            order,
                            &organization,
                            &faults,
                            SweepOptions {
                                background,
                                mode,
                                parallel: false,
                                backend: SweepBackend::PerFault,
                            },
                        );
                        for parallel in [false, true] {
                            let batched = evaluate_coverage_with(
                                &test,
                                order,
                                &organization,
                                &faults,
                                SweepOptions {
                                    background,
                                    mode,
                                    parallel,
                                    backend: SweepBackend::LaneBatched,
                                },
                            );
                            assert_eq!(
                                golden,
                                batched,
                                "{} / {} / background {background} / {mode:?} / \
                                 parallel={parallel}",
                                test.name(),
                                order.name(),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The per-lane first mismatch (element, address, expected, observed) of a
/// batched cohort must equal the first entry of the serial full-walk
/// mismatch list for the same fault — the "first-detecting
/// element+operation" guarantee that coverage reports build on.
#[test]
fn lane_detections_report_the_same_first_mismatch_as_the_full_walk() {
    for organization in organizations() {
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
            for background in [false, true] {
                let instances: Vec<Box<dyn Fault>> =
                    faults.iter().map(|factory| factory()).collect();
                let mut lanes: Vec<_> = instances
                    .iter()
                    .map(|fault| fault.lane_form().expect("standard faults have lane forms"))
                    .collect();
                let detections =
                    run_march_lanes(&walk, &mut lanes, background, DetectionMode::Full);
                assert_eq!(detections.len(), faults.len());
                for (factory, detection) in faults.iter().zip(&detections) {
                    let mut memory = FaultyMemory::new(
                        GoodMemory::filled(organization.capacity(), background),
                        factory(),
                    );
                    let serial = run_march_walk(&walk, &mut memory);
                    let name = factory().name();
                    assert_eq!(
                        detection.detected,
                        serial.detected_fault(),
                        "{} / {name} / background {background}",
                        test.name()
                    );
                    assert_eq!(
                        detection.mismatches,
                        serial.mismatches.len(),
                        "{} / {name} / background {background}",
                        test.name()
                    );
                    assert_eq!(
                        detection.first_mismatch.as_ref(),
                        serial.mismatches.first(),
                        "{} / {name} / background {background}",
                        test.name()
                    );
                }
            }
        }
    }
}

/// The devirtualized kernel instantiation (`&mut [LaneFaultKind]`, match
/// dispatch on inline enum data) must produce detections bit-identical to
/// the boxed instantiation (`&mut [Box<dyn LaneFault>]`, the external
/// escape hatch) for the same cohort — the two are the same algorithm
/// monomorphized twice.
#[test]
fn enum_cohorts_and_boxed_cohorts_report_identical_detections() {
    use march_test::faults::LaneFaultKind;

    for organization in organizations() {
        let faults = standard_fault_list(&organization);
        for test in library::table1_algorithms() {
            let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
            for background in [false, true] {
                for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
                    let mut inline: Vec<LaneFaultKind> = faults
                        .iter()
                        .map(|factory| {
                            factory()
                                .lane_kind()
                                .expect("standard faults have lane kinds")
                        })
                        .collect();
                    let mut boxed: Vec<_> = faults
                        .iter()
                        .map(|factory| {
                            factory()
                                .lane_form()
                                .expect("standard faults have lane forms")
                        })
                        .collect();
                    let via_enum = run_march_lanes(&walk, &mut inline, background, mode);
                    let via_boxed = run_march_lanes(&walk, &mut boxed, background, mode);
                    assert_eq!(
                        via_enum,
                        via_boxed,
                        "{} / background {background} / {mode:?}",
                        test.name()
                    );
                }
            }
        }
    }
}

fn mixed_fault_list(organization: &ArrayOrganization, count: usize) -> Vec<FaultFactory> {
    let capacity = organization.capacity();
    assert!(count as u32 <= capacity, "one victim per fault");
    (0..count)
        .map(|i| {
            let victim = Address::new(i as u32);
            let aggressor = Address::new(if (i as u32) + 1 < capacity {
                i as u32 + 1
            } else {
                i as u32 - 1
            });
            let factory: FaultFactory = match i % 4 {
                0 => Box::new(move || Box::new(StuckAtFault::new(victim, i % 8 == 0))),
                1 => Box::new(move || Box::new(TransitionFault::new(victim, i % 8 == 1))),
                2 => Box::new(move || Box::new(WriteDisturbFault::new(victim))),
                _ => Box::new(move || {
                    Box::new(CouplingInversionFault::new(aggressor, victim, i % 8 == 3))
                }),
            };
            factory
        })
        .collect()
}

/// Cohort sizes straddling the 64-lane word width: 1, 63, 64 and 65
/// faults plan into the expected cohorts and stay outcome-identical to
/// the serial path.
#[test]
fn odd_cohort_sizes_around_the_lane_width_stay_equivalent() {
    let organization = ArrayOrganization::new(16, 8).unwrap();
    let test = library::march_ss();
    let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
    for (count, expected_cohorts) in [(1usize, 1usize), (63, 1), (64, 1), (65, 2)] {
        let faults = mixed_fault_list(&organization, count);
        let plan = FaultBatch::plan(&walk, &faults);
        assert_eq!(plan.cohorts().len(), expected_cohorts, "count {count}");
        assert_eq!(plan.lane_fault_count(), count, "count {count}");
        if count == 65 {
            assert_eq!(plan.cohorts()[0], Cohort::Lanes((0..64).collect()));
            assert_eq!(plan.cohorts()[1], Cohort::Lanes(vec![64]));
        }
        for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
            for background in [false, true] {
                let golden = evaluate_coverage_with(
                    &test,
                    &WordLineAfterWordLine,
                    &organization,
                    &faults,
                    SweepOptions {
                        background,
                        mode,
                        parallel: false,
                        backend: SweepBackend::PerFault,
                    },
                );
                let batched = sweep_batched(&walk, &faults, background, mode, 1);
                assert_eq!(
                    golden.outcomes(),
                    batched.as_slice(),
                    "count {count} / {mode:?} / background {background}"
                );
            }
        }
    }
}

/// The degree-of-freedom experiment (which rides `SweepOptions::fast`,
/// now lane-batched) still reports order-independent coverage.
#[test]
fn dof_experiment_rides_the_batched_backend_unchanged() {
    use march_test::dof::verify_order_independence;
    let organization = ArrayOrganization::new(4, 4).unwrap();
    let faults = march_test::faults::static_fault_list(&organization);
    let orders: Vec<&dyn AddressOrder> = vec![&WordLineAfterWordLine, &ColumnMajor];
    for test in library::table1_algorithms() {
        let report = verify_order_independence(&test, &orders, &organization, &faults);
        assert!(
            report.coverage_is_order_independent(),
            "{} coverage changed with the address order",
            test.name()
        );
        assert!(report.guaranteed_coverage_preserved());
    }
}

/// A `LaneScratch` reused across cohorts of different shapes (different
/// sizes, unions, algorithms, backgrounds) must leave no trace between
/// runs: every scratch dispatch reports detections identical to a fresh
/// one-shot `run_march_lanes` call on the same cohort.
#[test]
fn scratch_reuse_across_cohorts_matches_fresh_dispatches() {
    use march_test::executor::{run_march_lanes_scratch, LaneScratch};
    use march_test::faults::LaneFaultKind;

    let mut scratch = LaneScratch::new();
    for organization in organizations() {
        for (test, count) in [
            (library::march_ss(), 64usize),
            (library::mats_plus(), 1),
            (library::march_c_minus(), 9),
        ] {
            let count = count.min(organization.capacity() as usize);
            let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
            let faults = mixed_fault_list(&organization, count);
            for background in [false, true] {
                for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
                    let lane_kinds = || -> Vec<LaneFaultKind> {
                        faults
                            .iter()
                            .map(|factory| {
                                factory().lane_kind().expect("mixed faults have lane kinds")
                            })
                            .collect()
                    };
                    let fresh = run_march_lanes(&walk, &mut lane_kinds(), background, mode);
                    let reused = run_march_lanes_scratch(
                        &walk,
                        &mut lane_kinds(),
                        background,
                        mode,
                        &mut scratch,
                    );
                    assert_eq!(
                        fresh,
                        reused,
                        "{} / {count} faults / background {background} / {mode:?}",
                        test.name()
                    );
                    assert_eq!(scratch.results(), fresh.as_slice());
                }
            }
        }
    }
}
