//! Property tests for the cohort planners ([`FaultBatch`]).
//!
//! Whatever the population looks like, every plan must satisfy the
//! packing invariants:
//!
//! 1. every input fault lands in exactly one cohort lane, exactly once;
//! 2. no lane cohort exceeds [`LaneMemory::LANES`] members;
//! 3. sweep outcomes reassemble in fault-list order;
//! 4. the address-aware packer's total merged-schedule steps never
//!    exceed the list-order greedy baseline's — and shrink outright on
//!    overlap-heavy populations.
//!
//! Populations are drawn from seeded [`FaultGen`] profiles so any failure
//! reproduces from the printed seed.

use march_test::address_order::WordLineAfterWordLine;
use march_test::batch::{sweep_batched_with, Cohort, CohortPlanner, FaultBatch};
use march_test::executor::MarchWalk;
use march_test::fault_sim::DetectionMode;
use march_test::faultgen::FaultGen;
use march_test::faults::FaultFactory;
use march_test::library;
use march_test::memory::LaneMemory;
use march_test::rng::SplitMix64;
use sram_model::config::ArrayOrganization;

const PLANNERS: [CohortPlanner; 2] = [CohortPlanner::ListOrderGreedy, CohortPlanner::AddressAware];

/// A seed-determined population over a seed-determined organization:
/// mixed, clustered or structured, sometimes shuffled.
fn population_for(seed: u64) -> (ArrayOrganization, Vec<FaultFactory>) {
    let mut rng = SplitMix64::new(seed);
    let rows = 2 + rng.next_below(15) as u32;
    let cols = 2 + rng.next_below(15) as u32;
    let organization = ArrayOrganization::new(rows, cols).expect("valid organization");
    let mut gen = FaultGen::new(organization, rng.next_u64());
    let mut faults = match rng.next_below(3) {
        0 => gen.mixed(1 + rng.next_below(300) as usize),
        1 => gen.overlapping_clusters(1 + rng.next_below(30) as usize, 2, 2),
        _ => {
            let mut faults = gen.stuck_at_per_row(1 + rng.next_below(u64::from(cols)) as u32);
            faults.extend(gen.neighbourhood_coupling(rng.next_below(100) as usize, 1));
            faults
        }
    };
    if rng.next_bool() {
        gen.shuffle(&mut faults);
    }
    (organization, faults)
}

/// Properties 1 + 2: exactly-once lane assignment and the 64-lane cap,
/// for both planners across many random populations.
#[test]
fn every_fault_lands_in_exactly_one_lane_and_cohorts_cap_at_sixty_four() {
    for round in 0..32u64 {
        let seed = 0x9ac4_0000u64 | round;
        let (organization, faults) = population_for(seed);
        for test in [library::march_ss(), library::mats_plus()] {
            let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
            for planner in PLANNERS {
                let plan = FaultBatch::plan_with(&walk, &faults, planner);
                assert_eq!(plan.fault_count(), faults.len(), "seed {seed:#x}");
                let mut seen: Vec<usize> = Vec::with_capacity(faults.len());
                for cohort in plan.cohorts() {
                    match cohort {
                        Cohort::Lanes(indices) | Cohort::BoxedLanes(indices) => {
                            assert!(
                                indices.len() <= LaneMemory::LANES,
                                "seed {seed:#x} [{planner:?}]: cohort of {} lanes",
                                indices.len()
                            );
                            assert!(!cohort.is_empty(), "seed {seed:#x} [{planner:?}]");
                            seen.extend(indices.iter().copied());
                        }
                        Cohort::Serial(index) => seen.push(*index),
                    }
                }
                seen.sort_unstable();
                let expected: Vec<usize> = (0..faults.len()).collect();
                assert_eq!(
                    seen, expected,
                    "seed {seed:#x} [{planner:?}]: every fault exactly once"
                );
            }
        }
    }
}

/// Property 3: sweep outcomes come back in fault-list order — outcome `i`
/// describes fault `i` — for both planners, serial and parallel.
#[test]
fn outcomes_reassemble_in_fault_list_order() {
    for round in 0..8u64 {
        let seed = 0x0de4_0000u64 | round;
        let (organization, faults) = population_for(seed);
        let walk = MarchWalk::new(
            &library::march_c_minus(),
            &WordLineAfterWordLine,
            &organization,
        );
        for planner in PLANNERS {
            for threads in [1, 8] {
                let outcomes = sweep_batched_with(
                    &walk,
                    &faults,
                    false,
                    DetectionMode::Full,
                    threads,
                    planner,
                );
                assert_eq!(outcomes.len(), faults.len(), "seed {seed:#x}");
                for (index, (outcome, factory)) in outcomes.iter().zip(&faults).enumerate() {
                    assert_eq!(
                        outcome.fault_name,
                        factory().name(),
                        "seed {seed:#x} [{planner:?}, threads={threads}]: outcome {index} \
                         must describe fault {index}"
                    );
                }
            }
        }
    }
}

/// Property 4a: the address-aware packer never plans a worse total merged
/// schedule than the greedy baseline — on *any* population (the packer
/// keeps the better of the two groupings by construction, and this pins
/// that contract from the outside).
#[test]
fn packed_schedule_never_exceeds_greedy() {
    for round in 0..32u64 {
        let seed = 0x5c4e_0000u64 | round;
        let (organization, faults) = population_for(seed);
        let walk = MarchWalk::new(&library::march_sr(), &WordLineAfterWordLine, &organization);
        let greedy = FaultBatch::plan_with(&walk, &faults, CohortPlanner::ListOrderGreedy);
        let packed = FaultBatch::plan_with(&walk, &faults, CohortPlanner::AddressAware);
        assert!(
            packed.merged_schedule_steps() <= greedy.merged_schedule_steps(),
            "seed {seed:#x}: packed {} > greedy {}",
            packed.merged_schedule_steps(),
            greedy.merged_schedule_steps()
        );
    }
}

/// Property 4b: on overlap-heavy shuffled populations (many faults per
/// victim, shuffled so list order scatters them) the packer must deliver
/// a *strict, substantial* schedule reduction — the reason it exists.
#[test]
fn packed_schedule_shrinks_substantially_on_overlap_heavy_populations() {
    for seed in [0xbeef_0001u64, 0xbeef_0002, 0xbeef_0003] {
        let mut rng = SplitMix64::new(seed);
        let organization = ArrayOrganization::new(32, 32).expect("valid organization");
        let mut gen = FaultGen::new(organization, rng.next_u64());
        let mut faults = gen.overlapping_clusters(60, 2, 1);
        gen.shuffle(&mut faults);
        let walk = MarchWalk::new(&library::march_ss(), &WordLineAfterWordLine, &organization);
        let greedy = FaultBatch::plan_with(&walk, &faults, CohortPlanner::ListOrderGreedy);
        let packed = FaultBatch::plan_with(&walk, &faults, CohortPlanner::AddressAware);
        let ratio = greedy.merged_schedule_steps() as f64 / packed.merged_schedule_steps() as f64;
        assert!(
            ratio >= 1.5,
            "seed {seed:#x}: packer only saved {ratio:.2}x \
             (greedy {} vs packed {} steps)",
            greedy.merged_schedule_steps(),
            packed.merged_schedule_steps()
        );
    }
}
