//! Seed-driven randomized differential testing of the lane-batched sweep
//! engines against the serial per-fault golden path.
//!
//! The exhaustive equivalence suite (`lane_batch_equivalence.rs`) pins the
//! batched backend on the *standard* 48-fault library; this harness
//! attacks the space the standard list cannot reach: for many SplitMix64
//! seeds it draws a random population (1..=400 faults, every fault kind
//! mixed, random victims/aggressors over a random organization), a random
//! algorithm, address order, data background and detection mode — and
//! asserts the batched path is **bit-identical** to the golden path:
//!
//! * the whole [`CoverageReport`] (detected/escaped and mismatch counts
//!   per fault, in fault-list order) under both cohort planners, serial
//!   and parallel;
//! * the first-detecting element/operation of every lane
//!   ([`LaneDetection::first_mismatch`]) against the first entry of the
//!   serial full-walk mismatch list.
//!
//! Every assertion message carries the scenario seed, so a failure
//! reproduces with `scenario(seed)` alone — no fault list to copy around.
//!
//! [`CoverageReport`]: march_test::coverage::CoverageReport
//! [`LaneDetection::first_mismatch`]: march_test::executor::LaneDetection

use march_test::address_order::{
    AddressOrder, ColumnMajor, LinearOrder, PseudoRandomOrder, WordLineAfterWordLine,
};
use march_test::batch::{Cohort, CohortPlanner, FaultBatch};
use march_test::coverage::{evaluate_coverage_with, SweepBackend, SweepOptions};
use march_test::executor::{run_march_lanes, run_march_walk, MarchResult, MarchWalk};
use march_test::fault_sim::DetectionMode;
use march_test::faultgen::FaultGen;
use march_test::faults::{FaultFactory, FaultyMemory};
use march_test::library;
use march_test::memory::GoodMemory;
use march_test::rng::SplitMix64;
use sram_model::config::ArrayOrganization;

/// One randomized scenario, fully determined by `seed`.
struct Scenario {
    seed: u64,
    organization: ArrayOrganization,
    population: Vec<FaultFactory>,
    test: march_test::algorithm::MarchTest,
    order: Box<dyn AddressOrder>,
    background: bool,
    mode: DetectionMode,
}

impl Scenario {
    /// Human-readable reproduction tag for assertion messages.
    fn tag(&self) -> String {
        format!(
            "seed {:#x} ({} faults on {}x{}, {}, {}, background {}, {:?}) — rerun with \
             Scenario::draw({:#x})",
            self.seed,
            self.population.len(),
            self.organization.rows(),
            self.organization.cols(),
            self.test.name(),
            self.order.name(),
            self.background,
            self.mode,
            self.seed,
        )
    }

    /// Draws the scenario of `seed`: every random choice comes from one
    /// SplitMix64 stream, so the seed alone reproduces it.
    fn draw(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let rows = 2 + rng.next_below(9) as u32;
        let cols = 2 + rng.next_below(9) as u32;
        let organization = ArrayOrganization::new(rows, cols).expect("valid organization");
        let size = 1 + rng.next_below(400) as usize;
        let population = FaultGen::new(organization, rng.next_u64()).mixed(size);
        let tests = library::all_algorithms();
        let test = tests[rng.next_below(tests.len() as u64) as usize].clone();
        let order: Box<dyn AddressOrder> = match rng.next_below(4) {
            0 => Box::new(WordLineAfterWordLine),
            1 => Box::new(ColumnMajor),
            2 => Box::new(LinearOrder),
            _ => Box::new(PseudoRandomOrder::new(rng.next_u64())),
        };
        let background = rng.next_bool();
        let mode = if rng.next_bool() {
            DetectionMode::Full
        } else {
            DetectionMode::FirstMismatch
        };
        Self {
            seed,
            organization,
            population,
            test,
            order,
            background,
            mode,
        }
    }

    /// Asserts every batched configuration reproduces the golden path
    /// bit-identically on this scenario.
    fn check(&self) {
        let golden = evaluate_coverage_with(
            &self.test,
            self.order.as_ref(),
            &self.organization,
            &self.population,
            SweepOptions {
                background: self.background,
                mode: self.mode,
                parallel: false,
                backend: SweepBackend::PerFault,
            },
        );
        assert_eq!(golden.total(), self.population.len(), "{}", self.tag());
        for backend in [
            SweepBackend::LaneBatched,
            SweepBackend::LaneBatchedListOrder,
        ] {
            for parallel in [false, true] {
                let batched = evaluate_coverage_with(
                    &self.test,
                    self.order.as_ref(),
                    &self.organization,
                    &self.population,
                    SweepOptions {
                        background: self.background,
                        mode: self.mode,
                        parallel,
                        backend,
                    },
                );
                assert_eq!(
                    golden,
                    batched,
                    "{} [{backend:?}, parallel={parallel}]",
                    self.tag()
                );
            }
        }
        self.check_first_mismatches();
    }

    /// Asserts the per-lane detection details (detected, mismatch count,
    /// first mismatching element/operation) of every planned lane cohort
    /// equal the serial full-walk results, under both planners.
    fn check_first_mismatches(&self) {
        let walk = MarchWalk::new(&self.test, self.order.as_ref(), &self.organization);
        // The golden full-walk result of each fault, computed once and
        // shared by both planners' comparisons.
        let serial: Vec<MarchResult> = self
            .population
            .iter()
            .map(|factory| {
                let mut memory = FaultyMemory::new(
                    GoodMemory::filled(self.organization.capacity(), self.background),
                    factory(),
                );
                run_march_walk(&walk, &mut memory)
            })
            .collect();
        for planner in [CohortPlanner::AddressAware, CohortPlanner::ListOrderGreedy] {
            let plan = FaultBatch::plan_with(&walk, &self.population, planner);
            assert_eq!(plan.fault_count(), self.population.len(), "{}", self.tag());
            for cohort in plan.cohorts() {
                let Cohort::Lanes(indices) = cohort else {
                    continue;
                };
                let mut lanes: Vec<_> = indices
                    .iter()
                    .map(|&index| {
                        self.population[index]()
                            .lane_form()
                            .expect("planned lane faults have lane forms")
                    })
                    .collect();
                let detections = run_march_lanes(&walk, &mut lanes, self.background, self.mode);
                for (&index, detection) in indices.iter().zip(&detections) {
                    let reference = &serial[index];
                    let name = self.population[index]().name();
                    assert_eq!(
                        detection.detected,
                        reference.detected_fault(),
                        "{} [{planner:?}, fault {index} {name}] detection flag",
                        self.tag()
                    );
                    let expected_mismatches = match self.mode {
                        DetectionMode::Full => reference.mismatches.len(),
                        DetectionMode::FirstMismatch => usize::from(reference.detected_fault()),
                    };
                    assert_eq!(
                        detection.mismatches,
                        expected_mismatches,
                        "{} [{planner:?}, fault {index} {name}] mismatch count",
                        self.tag()
                    );
                    assert_eq!(
                        detection.first_mismatch,
                        reference.mismatches.first().copied(),
                        "{} [{planner:?}, fault {index} {name}] first-detecting operation",
                        self.tag()
                    );
                }
            }
        }
    }
}

/// The committed seed sweep: one scenario per seed, each asserting full
/// bit-identity between the batched engines and the golden path.
#[test]
fn randomized_populations_are_bit_identical_between_batched_and_golden() {
    for round in 0..24u64 {
        Scenario::draw(0xD15E_A5E0_0000_0000u64 | round).check();
    }
}

/// Degenerate-shape seeds: the smallest arrays and populations, where
/// cohort planning edge cases (single fault, single lane, capacity 4)
/// live.
#[test]
fn tiny_populations_and_arrays_stay_bit_identical() {
    for round in 0..12u64 {
        let seed = 0x7E57_0000_0000_0000u64 | round;
        let mut rng = SplitMix64::new(seed);
        let rows = 2 + rng.next_below(2) as u32;
        let cols = 2 + rng.next_below(2) as u32;
        let organization = ArrayOrganization::new(rows, cols).expect("valid organization");
        let population =
            FaultGen::new(organization, rng.next_u64()).mixed(1 + rng.next_below(4) as usize);
        let scenario = Scenario {
            seed,
            organization,
            population,
            test: library::march_ss(),
            order: Box::new(WordLineAfterWordLine),
            background: rng.next_bool(),
            mode: DetectionMode::Full,
        };
        scenario.check();
    }
}
