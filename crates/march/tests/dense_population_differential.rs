//! Seed-driven randomized differential testing of the lane-batched sweep
//! engines against the serial per-fault golden path.
//!
//! The exhaustive equivalence suite (`lane_batch_equivalence.rs`) pins the
//! batched backend on the *standard* 48-fault library; this harness
//! attacks the space the standard list cannot reach: for many SplitMix64
//! seeds it draws a random population (1..=400 faults, every fault kind
//! mixed, random victims/aggressors over a random organization), a random
//! algorithm, address order, data background and detection mode — and
//! asserts the batched path is **bit-identical** to the golden path:
//!
//! * the whole [`CoverageReport`] (detected/escaped and mismatch counts
//!   per fault, in fault-list order) under both cohort planners, serial
//!   and parallel;
//! * the first-detecting element/operation of every lane
//!   ([`LaneDetection::first_mismatch`]) against the first entry of the
//!   serial full-walk mismatch list.
//!
//! Every assertion message carries the scenario seed, so a failure
//! reproduces with `scenario(seed)` alone — no fault list to copy around.
//!
//! [`CoverageReport`]: march_test::coverage::CoverageReport
//! [`LaneDetection::first_mismatch`]: march_test::executor::LaneDetection

use march_test::address_order::{
    AddressOrder, ColumnMajor, LinearOrder, PseudoRandomOrder, WordLineAfterWordLine,
};
use march_test::batch::{Cohort, CohortPlanner, FaultBatch};
use march_test::coverage::{evaluate_coverage_with, SweepBackend, SweepOptions};
use march_test::executor::{run_march_lanes, run_march_walk, MarchResult, MarchWalk};
use march_test::fault_sim::DetectionMode;
use march_test::faultgen::FaultGen;
use march_test::faults::{FaultFactory, FaultyMemory};
use march_test::library;
use march_test::memory::GoodMemory;
use march_test::rng::SplitMix64;
use sram_model::config::ArrayOrganization;

/// One randomized scenario, fully determined by `seed`.
struct Scenario {
    seed: u64,
    organization: ArrayOrganization,
    population: Vec<FaultFactory>,
    test: march_test::algorithm::MarchTest,
    order: Box<dyn AddressOrder>,
    background: bool,
    mode: DetectionMode,
}

impl Scenario {
    /// Human-readable reproduction tag for assertion messages.
    fn tag(&self) -> String {
        format!(
            "seed {:#x} ({} faults on {}x{}, {}, {}, background {}, {:?}) — rerun with \
             Scenario::draw({:#x})",
            self.seed,
            self.population.len(),
            self.organization.rows(),
            self.organization.cols(),
            self.test.name(),
            self.order.name(),
            self.background,
            self.mode,
            self.seed,
        )
    }

    /// Draws the scenario of `seed`: every random choice comes from one
    /// SplitMix64 stream, so the seed alone reproduces it.
    fn draw(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let rows = 2 + rng.next_below(9) as u32;
        let cols = 2 + rng.next_below(9) as u32;
        let organization = ArrayOrganization::new(rows, cols).expect("valid organization");
        let size = 1 + rng.next_below(400) as usize;
        let population = FaultGen::new(organization, rng.next_u64()).mixed(size);
        let tests = library::all_algorithms();
        let test = tests[rng.next_below(tests.len() as u64) as usize].clone();
        let order: Box<dyn AddressOrder> = match rng.next_below(4) {
            0 => Box::new(WordLineAfterWordLine),
            1 => Box::new(ColumnMajor),
            2 => Box::new(LinearOrder),
            _ => Box::new(PseudoRandomOrder::new(rng.next_u64())),
        };
        let background = rng.next_bool();
        let mode = if rng.next_bool() {
            DetectionMode::Full
        } else {
            DetectionMode::FirstMismatch
        };
        Self {
            seed,
            organization,
            population,
            test,
            order,
            background,
            mode,
        }
    }

    /// Asserts every batched configuration reproduces the golden path
    /// bit-identically on this scenario.
    fn check(&self) {
        let golden = evaluate_coverage_with(
            &self.test,
            self.order.as_ref(),
            &self.organization,
            &self.population,
            SweepOptions {
                background: self.background,
                mode: self.mode,
                parallel: false,
                backend: SweepBackend::PerFault,
            },
        );
        assert_eq!(golden.total(), self.population.len(), "{}", self.tag());
        for backend in [
            SweepBackend::LaneBatched,
            SweepBackend::LaneBatchedListOrder,
        ] {
            for parallel in [false, true] {
                let batched = evaluate_coverage_with(
                    &self.test,
                    self.order.as_ref(),
                    &self.organization,
                    &self.population,
                    SweepOptions {
                        background: self.background,
                        mode: self.mode,
                        parallel,
                        backend,
                    },
                );
                assert_eq!(
                    golden,
                    batched,
                    "{} [{backend:?}, parallel={parallel}]",
                    self.tag()
                );
            }
        }
        self.check_first_mismatches();
    }

    /// Asserts the per-lane detection details (detected, mismatch count,
    /// first mismatching element/operation) of every planned lane cohort
    /// equal the serial full-walk results, under both planners.
    fn check_first_mismatches(&self) {
        let walk = MarchWalk::new(&self.test, self.order.as_ref(), &self.organization);
        // The golden full-walk result of each fault, computed once and
        // shared by both planners' comparisons.
        let serial: Vec<MarchResult> = self
            .population
            .iter()
            .map(|factory| {
                let mut memory = FaultyMemory::new(
                    GoodMemory::filled(self.organization.capacity(), self.background),
                    factory(),
                );
                run_march_walk(&walk, &mut memory)
            })
            .collect();
        for planner in [CohortPlanner::AddressAware, CohortPlanner::ListOrderGreedy] {
            let plan = FaultBatch::plan_with(&walk, &self.population, planner);
            assert_eq!(plan.fault_count(), self.population.len(), "{}", self.tag());
            for cohort in plan.cohorts() {
                let Cohort::Lanes(indices) = cohort else {
                    continue;
                };
                let mut lanes: Vec<_> = indices
                    .iter()
                    .map(|&index| {
                        self.population[index]()
                            .lane_form()
                            .expect("planned lane faults have lane forms")
                    })
                    .collect();
                let detections = run_march_lanes(&walk, &mut lanes, self.background, self.mode);
                for (&index, detection) in indices.iter().zip(&detections) {
                    let reference = &serial[index];
                    let name = self.population[index]().name();
                    assert_eq!(
                        detection.detected,
                        reference.detected_fault(),
                        "{} [{planner:?}, fault {index} {name}] detection flag",
                        self.tag()
                    );
                    let expected_mismatches = match self.mode {
                        DetectionMode::Full => reference.mismatches.len(),
                        DetectionMode::FirstMismatch => usize::from(reference.detected_fault()),
                    };
                    assert_eq!(
                        detection.mismatches,
                        expected_mismatches,
                        "{} [{planner:?}, fault {index} {name}] mismatch count",
                        self.tag()
                    );
                    assert_eq!(
                        detection.first_mismatch,
                        reference.mismatches.first().copied(),
                        "{} [{planner:?}, fault {index} {name}] first-detecting operation",
                        self.tag()
                    );
                }
            }
        }
    }
}

/// The committed seed sweep: one scenario per seed, each asserting full
/// bit-identity between the batched engines and the golden path.
#[test]
fn randomized_populations_are_bit_identical_between_batched_and_golden() {
    for round in 0..24u64 {
        Scenario::draw(0xD15E_A5E0_0000_0000u64 | round).check();
    }
}

/// The multiset of per-lane-cohort involved-address unions of a plan —
/// the cohort "schedule" modulo cohort order. Two plans with equal union
/// multisets dispatch identical merged step schedules, whichever faults
/// happen to occupy which lane.
fn cohort_union_multiset(plan: &FaultBatch, faults: &[FaultFactory]) -> Vec<Vec<u32>> {
    let mut unions: Vec<Vec<u32>> = plan
        .cohorts()
        .iter()
        .filter_map(|cohort| {
            let Cohort::Lanes(indices) = cohort else {
                return None;
            };
            let mut union: Vec<u32> = indices
                .iter()
                .flat_map(|&index| {
                    faults[index]()
                        .lane_kind()
                        .expect("planned lane faults have kinds")
                        .involved()
                        .iter()
                        .map(|address| address.value())
                        .collect::<Vec<u32>>()
                })
                .collect();
            union.sort_unstable();
            union.dedup();
            Some(union)
        })
        .collect();
    unions.sort();
    unions
}

/// Shuffled-permutation seeds: a generation-ordered population and a
/// shuffled copy of the *same* population must produce identical
/// per-fault outcomes (outcome `p` of the shuffled sweep equals outcome
/// `perm[p]` of the ordered one, bit for bit) and the address-aware
/// packer must plan identical packed schedules up to cohort order —
/// shuffling is exactly one permutation, never extra work.
#[test]
fn shuffled_permutations_match_generation_order_bit_identically() {
    for round in 0..12u64 {
        let seed = 0x5AFF_1E00_0000_0000u64 | round;
        let mut rng = SplitMix64::new(seed);
        let rows = 4 + rng.next_below(13) as u32;
        let cols = 4 + rng.next_below(13) as u32;
        let organization = ArrayOrganization::new(rows, cols).expect("valid organization");
        let population_seed = rng.next_u64();
        let profile = rng.next_below(2);
        let size = 40 + rng.next_below(260) as usize;
        // Two bit-identical copies of the same population: FaultGen is
        // deterministic in (organization, seed, profile).
        let make = || {
            let mut gen = FaultGen::new(organization, population_seed);
            match profile {
                0 => gen.mixed(size),
                _ => gen.overlapping_clusters(size / 11 + 1, 2, 1),
            }
        };
        let ordered = make();
        let mut slots: Vec<Option<FaultFactory>> = make().into_iter().map(Some).collect();
        let mut perm: Vec<usize> = (0..ordered.len()).collect();
        rng.shuffle(&mut perm);
        let shuffled: Vec<FaultFactory> = perm
            .iter()
            .map(|&index| slots[index].take().expect("perm is a permutation"))
            .collect();

        let tests = library::all_algorithms();
        let test = tests[rng.next_below(tests.len() as u64) as usize].clone();
        let background = rng.next_bool();
        let tag = format!(
            "seed {seed:#x} ({} faults on {rows}x{cols}, {}, profile {profile}, \
             background {background})",
            ordered.len(),
            test.name(),
        );

        // Identical packed schedules up to cohort order: the clustered
        // sort keys on involved-address signatures, not list positions,
        // so the shuffled copy plans the same union multiset and the
        // same total dispatch.
        let walk = MarchWalk::new(&test, &WordLineAfterWordLine, &organization);
        let plan_ordered = FaultBatch::plan_with(&walk, &ordered, CohortPlanner::AddressAware);
        let plan_shuffled = FaultBatch::plan_with(&walk, &shuffled, CohortPlanner::AddressAware);
        assert_eq!(
            plan_ordered.merged_schedule_steps(),
            plan_shuffled.merged_schedule_steps(),
            "{tag}: shuffling must not change the packed dispatch total"
        );
        assert_eq!(
            cohort_union_multiset(&plan_ordered, &ordered),
            cohort_union_multiset(&plan_shuffled, &shuffled),
            "{tag}: packed schedules must be identical up to cohort order"
        );

        // Identical per-fault outcomes, bit for bit, through every
        // batched configuration — and against the per-fault golden path.
        for mode in [DetectionMode::Full, DetectionMode::FirstMismatch] {
            let options = |backend, parallel| SweepOptions {
                background,
                mode,
                parallel,
                backend,
            };
            let golden = evaluate_coverage_with(
                &test,
                &WordLineAfterWordLine,
                &organization,
                &ordered,
                options(SweepBackend::PerFault, false),
            );
            for parallel in [false, true] {
                let ordered_report = evaluate_coverage_with(
                    &test,
                    &WordLineAfterWordLine,
                    &organization,
                    &ordered,
                    options(SweepBackend::LaneBatched, parallel),
                );
                assert_eq!(
                    golden, ordered_report,
                    "{tag} [{mode:?}, parallel={parallel}]"
                );
                let shuffled_report = evaluate_coverage_with(
                    &test,
                    &WordLineAfterWordLine,
                    &organization,
                    &shuffled,
                    options(SweepBackend::LaneBatched, parallel),
                );
                assert_eq!(
                    shuffled_report.total(),
                    ordered_report.total(),
                    "{tag} [{mode:?}, parallel={parallel}]"
                );
                for (position, outcome) in shuffled_report.outcomes().iter().enumerate() {
                    assert_eq!(
                        outcome,
                        &ordered_report.outcomes()[perm[position]],
                        "{tag} [{mode:?}, parallel={parallel}]: shuffled outcome {position} \
                         must equal ordered outcome {}",
                        perm[position]
                    );
                }
            }
        }
    }
}

/// Degenerate-shape seeds: the smallest arrays and populations, where
/// cohort planning edge cases (single fault, single lane, capacity 4)
/// live.
#[test]
fn tiny_populations_and_arrays_stay_bit_identical() {
    for round in 0..12u64 {
        let seed = 0x7E57_0000_0000_0000u64 | round;
        let mut rng = SplitMix64::new(seed);
        let rows = 2 + rng.next_below(2) as u32;
        let cols = 2 + rng.next_below(2) as u32;
        let organization = ArrayOrganization::new(rows, cols).expect("valid organization");
        let population =
            FaultGen::new(organization, rng.next_u64()).mixed(1 + rng.next_below(4) as usize);
        let scenario = Scenario {
            seed,
            organization,
            population,
            test: library::march_ss(),
            order: Box::new(WordLineAfterWordLine),
            background: rng.next_bool(),
            mode: DetectionMode::Full,
        };
        scenario.check();
    }
}
