//! Calibration of the analytic model's parameters from the technology.
//!
//! The paper's closed-form model is driven by four measured quantities:
//!
//! * `P_A` — power of one pre-charge circuit during a RES,
//! * `P_B` — power of a column restoration at a row transition,
//! * `P_r` — memory power during a read operation (functional mode),
//! * `P_w` — memory power during a write operation (functional mode).
//!
//! The authors obtain them from Spice; here they are derived from the same
//! first-order [`TechnologyParams`] the cycle-accurate simulator uses, so
//! the analytic model and the simulation can be cross-checked against each
//! other (they agree within a few percent — see `EXPERIMENTS.md`).

use sram_model::config::{ArrayOrganization, TechnologyParams};
use transient::units::{Joules, Seconds, Watts};

/// The four calibrated parameters of the analytic model, expressed as
/// energy per clock cycle (divide by the clock period for watts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratedParameters {
    /// Energy drawn by one pre-charge circuit replenishing one RES per
    /// cycle (`P_A`).
    pub pa: Joules,
    /// Energy of restoring one column's discharged bit line at a row
    /// transition, averaged over the ~50 % of columns that need it
    /// (`P_B`).
    pub pb: Joules,
    /// Energy of one read operation in functional mode, unselected-column
    /// pre-charge activity included (`P_r`).
    pub pr: Joules,
    /// Energy of one write operation in functional mode (`P_w`).
    pub pw: Joules,
    /// The clock period used to convert energies to powers.
    pub clock_period: Seconds,
}

impl CalibratedParameters {
    /// Derives the four parameters from the technology and array
    /// organization.
    pub fn derive(technology: &TechnologyParams, organization: &ArrayOrganization) -> Self {
        let unselected = organization.cols().saturating_sub(1) as f64;
        let pa = technology.res_replenish_energy();
        // About half of the bit-line pairs have one line fully discharged at
        // a row transition; the average per-column restoration is therefore
        // half a full restore.
        let pb = technology.full_bitline_restore_energy() * 0.5;

        let shared = Joules(pa.value() * unselected)
            + technology.wordline_energy()
            + decoder_estimate(technology, organization);
        let pr = shared
            + technology.read_restore_energy()
            + technology.sense_amp_energy
            + technology.periphery_read_energy;
        let pw = shared
            + technology.full_bitline_restore_energy()
            + technology.write_driver_energy
            + Joules(technology.full_bitline_restore_energy().value() * 0.5)
            + technology.periphery_write_energy;
        Self {
            pa,
            pb,
            pr,
            pw,
            clock_period: technology.clock_period,
        }
    }

    /// `P_A` expressed in watts.
    pub fn pa_power(&self) -> Watts {
        self.pa.over(self.clock_period)
    }

    /// `P_r` expressed in watts.
    pub fn pr_power(&self) -> Watts {
        self.pr.over(self.clock_period)
    }

    /// `P_w` expressed in watts.
    pub fn pw_power(&self) -> Watts {
        self.pw.over(self.clock_period)
    }
}

/// Rough per-operation decoder energy: one row and one column decode of the
/// configured sizes.
fn decoder_estimate(technology: &TechnologyParams, organization: &ArrayOrganization) -> Joules {
    let bits = (organization.rows().max(2) as f64).log2().ceil()
        + (organization.cols().max(2) as f64).log2().ceil();
    Joules(bits * 5e-15 * technology.vdd.value() * technology.vdd.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn derive_default() -> CalibratedParameters {
        CalibratedParameters::derive(
            &TechnologyParams::default_013um(),
            &ArrayOrganization::paper_512x512(),
        )
    }

    #[test]
    fn parameters_have_expected_magnitudes() {
        let p = derive_default();
        // PA is tens of femtojoules per cycle.
        assert!(
            (50.0..100.0).contains(&p.pa.to_femtojoules()),
            "PA = {}",
            p.pa
        );
        // PB is a fraction of a picojoule.
        assert!((0.1..1.0).contains(&p.pb.to_picojoules()), "PB = {}", p.pb);
        // Pr and Pw are tens of picojoules, with writes more expensive.
        assert!(
            (40.0..120.0).contains(&p.pr.to_picojoules()),
            "Pr = {}",
            p.pr
        );
        assert!(
            (40.0..140.0).contains(&p.pw.to_picojoules()),
            "Pw = {}",
            p.pw
        );
        assert!(p.pw > p.pr, "writes must cost more than reads");
    }

    #[test]
    fn res_power_dominance_matches_the_paper_regime() {
        // The (cols - 2) pre-charge circuits that the technique switches off
        // account for roughly half of the per-operation energy, which is
        // what produces the ~50 % PRR of Table 1.
        let p = derive_default();
        let saved = p.pa.value() * 510.0;
        let mean_op = 0.5 * (p.pr.value() + p.pw.value());
        let ratio = saved / mean_op;
        assert!(
            (0.4..0.6).contains(&ratio),
            "saved/total ratio {ratio} outside the expected band"
        );
    }

    #[test]
    fn power_conversions() {
        let p = derive_default();
        assert!((p.pa_power().to_microwatts() - p.pa.value() / 3e-9 * 1e6).abs() < 1e-6);
        assert!(p.pr_power().to_milliwatts() > 0.0);
        assert!(p.pw_power() > p.pr_power());
    }

    #[test]
    fn smaller_arrays_have_smaller_read_energy() {
        let technology = TechnologyParams::default_013um();
        let small =
            CalibratedParameters::derive(&technology, &ArrayOrganization::new(64, 64).unwrap());
        let large = derive_default();
        assert!(small.pr < large.pr);
        assert_eq!(small.pa, large.pa);
    }
}
