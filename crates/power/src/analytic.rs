//! The paper's closed-form power model.
//!
//! Section 5 of the paper expresses the average power per clock cycle in
//! the two modes as
//!
//! ```text
//! P_F   = (#read · P_r + #write · P_w) / #operations
//! P_LPT = P_F − ( (#col − 2) · P_A  −  (#elements / #operations) · P_B )
//! PRR   = 1 − P_LPT / P_F
//! ```
//!
//! where `P_A` is the per-column pre-charge RES power, `P_B` the
//! row-transition column restoration power, and `P_r`/`P_w` the functional
//! read/write powers. [`AnalyticPowerModel`] implements these formulas on
//! top of [`CalibratedParameters`], working in energy-per-cycle units (the
//! conversion to watts is a division by the common clock period and cancels
//! in the PRR).

use sram_model::config::ArrayOrganization;
use transient::units::{Joules, Watts};

use crate::calibration::CalibratedParameters;
use march_test::algorithm::MarchTest;

/// The closed-form `P_F`/`P_LPT`/`PRR` model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticPowerModel {
    parameters: CalibratedParameters,
}

impl AnalyticPowerModel {
    /// Builds the model from calibrated parameters.
    pub fn new(parameters: CalibratedParameters) -> Self {
        Self { parameters }
    }

    /// The underlying parameters.
    pub fn parameters(&self) -> &CalibratedParameters {
        &self.parameters
    }

    /// `P_F`: average energy per cycle in functional-mode test, determined
    /// by the algorithm's read/write mix.
    pub fn functional_energy_per_cycle(&self, test: &MarchTest) -> Joules {
        let reads = test.read_count() as f64;
        let writes = test.write_count() as f64;
        let ops = test.operation_count() as f64;
        Joules((reads * self.parameters.pr.value() + writes * self.parameters.pw.value()) / ops)
    }

    /// The per-cycle energy saved by disabling the pre-charge of the
    /// `#col − 2` uninvolved columns, net of the row-transition restore
    /// overhead.
    pub fn savings_per_cycle(&self, test: &MarchTest, organization: &ArrayOrganization) -> Joules {
        let cols = organization.cols() as f64;
        let elements = test.element_count() as f64;
        let ops = test.operation_count() as f64;
        Joules(
            (cols - 2.0) * self.parameters.pa.value()
                - (elements / ops) * self.parameters.pb.value(),
        )
    }

    /// `P_LPT`: average energy per cycle in the low-power test mode.
    pub fn low_power_energy_per_cycle(
        &self,
        test: &MarchTest,
        organization: &ArrayOrganization,
    ) -> Joules {
        let pf = self.functional_energy_per_cycle(test);
        let saved = self.savings_per_cycle(test, organization);
        Joules((pf.value() - saved.value()).max(0.0))
    }

    /// `PRR = 1 − P_LPT / P_F`.
    pub fn power_reduction_ratio(&self, test: &MarchTest, organization: &ArrayOrganization) -> f64 {
        let pf = self.functional_energy_per_cycle(test);
        if pf.value() <= 0.0 {
            return 0.0;
        }
        let plpt = self.low_power_energy_per_cycle(test, organization);
        1.0 - plpt.value() / pf.value()
    }

    /// `P_F` expressed in watts.
    pub fn functional_power(&self, test: &MarchTest) -> Watts {
        self.functional_energy_per_cycle(test)
            .over(self.parameters.clock_period)
    }

    /// `P_LPT` expressed in watts.
    pub fn low_power_power(&self, test: &MarchTest, organization: &ArrayOrganization) -> Watts {
        self.low_power_energy_per_cycle(test, organization)
            .over(self.parameters.clock_period)
    }

    /// The frequency of row transitions: once every
    /// `#ops-per-element × #columns` cycles (the paper's
    /// `F(row transition)` expression).
    pub fn row_transition_frequency(
        &self,
        test: &MarchTest,
        organization: &ArrayOrganization,
    ) -> f64 {
        1.0 / (test.mean_ops_per_element() * organization.cols() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::library;
    use sram_model::config::TechnologyParams;

    fn model() -> AnalyticPowerModel {
        AnalyticPowerModel::new(CalibratedParameters::derive(
            &TechnologyParams::default_013um(),
            &ArrayOrganization::paper_512x512(),
        ))
    }

    fn org() -> ArrayOrganization {
        ArrayOrganization::paper_512x512()
    }

    #[test]
    fn table1_prr_lands_in_the_paper_band() {
        // Paper: 47.3 % … 50.5 % for the five algorithms on 512×512.
        let model = model();
        let organization = org();
        for test in library::table1_algorithms() {
            let prr = model.power_reduction_ratio(&test, &organization);
            assert!(
                (0.43..=0.56).contains(&prr),
                "{}: PRR {:.1}% outside the expected band",
                test.name(),
                prr * 100.0
            );
        }
    }

    #[test]
    fn functional_energy_follows_read_write_mix() {
        let model = model();
        // March G is write-heavy (13 writes / 10 reads), MATS+ also
        // write-heavy, March SS read-heavy: P_F ordering must follow.
        let pf_ss = model.functional_energy_per_cycle(&library::march_ss());
        let pf_g = model.functional_energy_per_cycle(&library::march_g());
        assert!(pf_g > pf_ss, "write-heavy tests cost more per cycle");
        // P_F is bounded by Pr and Pw.
        let p = model.parameters();
        for test in library::table1_algorithms() {
            let pf = model.functional_energy_per_cycle(&test);
            assert!(pf >= p.pr && pf <= p.pw);
        }
    }

    #[test]
    fn savings_scale_with_column_count() {
        let model = model();
        let test = library::march_c_minus();
        let small = ArrayOrganization::new(512, 64).unwrap();
        let large = ArrayOrganization::new(512, 1024).unwrap();
        assert!(model.savings_per_cycle(&test, &large) > model.savings_per_cycle(&test, &small));
        let prr_small = model.power_reduction_ratio(&test, &small);
        let prr_large = model.power_reduction_ratio(&test, &large);
        assert!(prr_large > prr_small, "wider arrays benefit more");
    }

    #[test]
    fn row_transition_term_is_negligible() {
        // The paper argues the row-transition overhead can be neglected; in
        // the model it must be under 2 % of the gross savings.
        let model = model();
        let organization = org();
        for test in library::table1_algorithms() {
            let gross = (organization.cols() - 2) as f64 * model.parameters().pa.value();
            let net = model.savings_per_cycle(&test, &organization).value();
            let overhead = gross - net;
            assert!(
                overhead / gross < 0.02,
                "{}: row-transition overhead {:.3}% too large",
                test.name(),
                overhead / gross * 100.0
            );
        }
    }

    #[test]
    fn row_transition_frequency_matches_the_paper_example() {
        // "Considering a one operation March element and n = 512, there is a
        // row transition once for each 512 clock cycles. For a four
        // operations element it happens once every 2048 cycles."
        let model = model();
        let organization = org();
        let one_op = march_test::algorithm::MarchTest::new(
            "one-op",
            vec![march_test::element::MarchElement::ascending(vec![
                march_test::operation::MarchOp::R0,
            ])],
        );
        let four_op = march_test::algorithm::MarchTest::new(
            "four-op",
            vec![march_test::element::MarchElement::ascending(vec![
                march_test::operation::MarchOp::R0,
                march_test::operation::MarchOp::W1,
                march_test::operation::MarchOp::R1,
                march_test::operation::MarchOp::W0,
            ])],
        );
        assert!(
            (model.row_transition_frequency(&one_op, &organization) - 1.0 / 512.0).abs() < 1e-12
        );
        assert!(
            (model.row_transition_frequency(&four_op, &organization) - 1.0 / 2048.0).abs() < 1e-12
        );
    }

    #[test]
    fn powers_in_watts_are_consistent_with_energies() {
        let model = model();
        let organization = org();
        let test = library::march_c_minus();
        let pf_w = model.functional_power(&test).value();
        let pf_e = model.functional_energy_per_cycle(&test).value();
        assert!((pf_w - pf_e / 3e-9).abs() / pf_w < 1e-9);
        assert!(model.low_power_power(&test, &organization) < model.functional_power(&test));
    }
}
