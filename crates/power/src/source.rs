//! Enumerated power sources.
//!
//! The variants mirror the component fields of
//! [`sram_model::energy::CycleEnergy`] and the five dissipation sources the
//! paper analyses in its experimental section.

use sram_model::energy::CycleEnergy;
use std::fmt;
use transient::units::Joules;

/// A physical source of test power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PowerSource {
    /// Pre-charge circuits replenishing RES droop on unselected columns.
    PrechargeRes,
    /// Pre-charge restoration of the selected column.
    PrechargeSelected,
    /// Row-transition (all columns) restoration.
    PrechargeRowTransition,
    /// Word-line switching.
    WordLine,
    /// Sense amplifiers.
    SenseAmp,
    /// Write drivers.
    WriteDriver,
    /// Address decoders.
    Decoders,
    /// Lumped periphery (control, clock, I/O).
    Periphery,
    /// Modified pre-charge control logic.
    ControlLogic,
    /// `LPtest` mode line driver.
    LpTestDriver,
}

impl PowerSource {
    /// All sources in the fixed reporting order.
    pub fn all() -> [PowerSource; 10] {
        [
            PowerSource::PrechargeRes,
            PowerSource::PrechargeSelected,
            PowerSource::PrechargeRowTransition,
            PowerSource::WordLine,
            PowerSource::SenseAmp,
            PowerSource::WriteDriver,
            PowerSource::Decoders,
            PowerSource::Periphery,
            PowerSource::ControlLogic,
            PowerSource::LpTestDriver,
        ]
    }

    /// Extracts this source's energy from a cycle (or aggregated) record.
    pub fn energy_of(self, energy: &CycleEnergy) -> Joules {
        match self {
            PowerSource::PrechargeRes => energy.precharge_res,
            PowerSource::PrechargeSelected => energy.precharge_selected,
            PowerSource::PrechargeRowTransition => energy.precharge_row_transition,
            PowerSource::WordLine => energy.wordline,
            PowerSource::SenseAmp => energy.sense_amp,
            PowerSource::WriteDriver => energy.write_driver,
            PowerSource::Decoders => energy.decoders,
            PowerSource::Periphery => energy.periphery,
            PowerSource::ControlLogic => energy.control_logic,
            PowerSource::LpTestDriver => energy.lptest_driver,
        }
    }

    /// Whether this source is part of the pre-charge activity the paper's
    /// technique targets.
    pub fn is_precharge_related(self) -> bool {
        matches!(
            self,
            PowerSource::PrechargeRes
                | PowerSource::PrechargeSelected
                | PowerSource::PrechargeRowTransition
        )
    }
}

impl fmt::Display for PowerSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PowerSource::PrechargeRes => "pre-charge (RES, unselected columns)",
            PowerSource::PrechargeSelected => "pre-charge (selected column)",
            PowerSource::PrechargeRowTransition => "pre-charge (row-transition restore)",
            PowerSource::WordLine => "word line",
            PowerSource::SenseAmp => "sense amplifier",
            PowerSource::WriteDriver => "write driver",
            PowerSource::Decoders => "address decoders",
            PowerSource::Periphery => "periphery (control, clock, I/O)",
            PowerSource::ControlLogic => "modified pre-charge control logic",
            PowerSource::LpTestDriver => "LPtest line driver",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_extract_matching_components() {
        let mut e = CycleEnergy::new();
        e.precharge_res = Joules(1.0);
        e.wordline = Joules(2.0);
        e.lptest_driver = Joules(3.0);
        assert_eq!(PowerSource::PrechargeRes.energy_of(&e), Joules(1.0));
        assert_eq!(PowerSource::WordLine.energy_of(&e), Joules(2.0));
        assert_eq!(PowerSource::LpTestDriver.energy_of(&e), Joules(3.0));
        assert_eq!(PowerSource::SenseAmp.energy_of(&e), Joules::ZERO);
        // The enumeration covers every component of CycleEnergy.
        let sum: Joules = PowerSource::all().iter().map(|s| s.energy_of(&e)).sum();
        assert_eq!(sum, e.total());
    }

    #[test]
    fn precharge_classification() {
        assert!(PowerSource::PrechargeRes.is_precharge_related());
        assert!(PowerSource::PrechargeSelected.is_precharge_related());
        assert!(PowerSource::PrechargeRowTransition.is_precharge_related());
        assert!(!PowerSource::WordLine.is_precharge_related());
        assert!(!PowerSource::Periphery.is_precharge_related());
    }

    #[test]
    fn display_names_are_informative() {
        assert!(PowerSource::PrechargeRes.to_string().contains("RES"));
        assert!(PowerSource::LpTestDriver.to_string().contains("LPtest"));
    }
}
