//! Peak (per-cycle maximum) power tracking.
//!
//! The paper reports *average* power per clock cycle, but test-power limits
//! in practice are often set by the peak cycle (supply droop, thermal
//! hot-spots). The low-power test mode changes the peak picture too: the
//! ordinary cycles get much cheaper, while the row-transition restore cycle
//! concentrates the restoration of ~half of all bit lines into a single
//! cycle. [`PeakTracker`] records the most expensive cycle of a run so the
//! experiments can quantify that trade-off.

use sram_model::energy::CycleEnergy;
use transient::units::{Joules, Seconds, Watts};

/// Tracks the most expensive cycle observed in a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakTracker {
    clock_period: Seconds,
    peak_energy: Joules,
    peak_cycle: Option<u64>,
    cycles_observed: u64,
}

impl PeakTracker {
    /// Creates a tracker for a memory clocked at `clock_period`.
    ///
    /// # Panics
    ///
    /// Panics if the clock period is not strictly positive.
    pub fn new(clock_period: Seconds) -> Self {
        assert!(clock_period.value() > 0.0, "clock period must be positive");
        Self {
            clock_period,
            peak_energy: Joules::ZERO,
            peak_cycle: None,
            cycles_observed: 0,
        }
    }

    /// Records the energy of one cycle.
    pub fn record(&mut self, energy: &CycleEnergy) {
        let total = energy.total();
        if self.peak_cycle.is_none() || total > self.peak_energy {
            self.peak_energy = total;
            self.peak_cycle = Some(self.cycles_observed);
        }
        self.cycles_observed += 1;
    }

    /// Records a pre-computed cycle total (when the caller already has the
    /// sum).
    pub fn record_total(&mut self, total: Joules) {
        if self.peak_cycle.is_none() || total > self.peak_energy {
            self.peak_energy = total;
            self.peak_cycle = Some(self.cycles_observed);
        }
        self.cycles_observed += 1;
    }

    /// Energy of the most expensive cycle seen so far.
    pub fn peak_energy(&self) -> Joules {
        self.peak_energy
    }

    /// Power of the most expensive cycle seen so far.
    pub fn peak_power(&self) -> Watts {
        if self.cycles_observed == 0 {
            return Watts::ZERO;
        }
        self.peak_energy.over(self.clock_period)
    }

    /// Index of the most expensive cycle, if any cycle was recorded.
    pub fn peak_cycle_index(&self) -> Option<u64> {
        self.peak_cycle
    }

    /// Number of cycles observed.
    pub fn cycles_observed(&self) -> u64 {
        self.cycles_observed
    }

    /// Peak-to-average ratio given the run's average power.
    pub fn peak_to_average(&self, average: Watts) -> f64 {
        if average.value() <= 0.0 {
            return 0.0;
        }
        self.peak_power().value() / average.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_the_largest_cycle() {
        let mut tracker = PeakTracker::new(Seconds::from_nanoseconds(3.0));
        let mut small = CycleEnergy::new();
        small.periphery = Joules::from_picojoules(10.0);
        let mut big = CycleEnergy::new();
        big.precharge_row_transition = Joules::from_picojoules(300.0);
        tracker.record(&small);
        tracker.record(&big);
        tracker.record(&small);
        assert_eq!(tracker.peak_cycle_index(), Some(1));
        assert!((tracker.peak_energy().to_picojoules() - 300.0).abs() < 1e-9);
        assert_eq!(tracker.cycles_observed(), 3);
        // 300 pJ / 3 ns = 100 mW
        assert!((tracker.peak_power().to_milliwatts() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn record_total_and_ratio() {
        let mut tracker = PeakTracker::new(Seconds::from_nanoseconds(3.0));
        tracker.record_total(Joules::from_picojoules(30.0));
        tracker.record_total(Joules::from_picojoules(90.0));
        let average = Watts(60.0e-12 / 3.0e-9);
        assert!((tracker.peak_to_average(average) - 1.5).abs() < 1e-9);
        assert_eq!(tracker.peak_to_average(Watts::ZERO), 0.0);
    }

    #[test]
    fn empty_tracker_is_zero() {
        let tracker = PeakTracker::new(Seconds::from_nanoseconds(3.0));
        assert_eq!(tracker.peak_power(), Watts::ZERO);
        assert_eq!(tracker.peak_cycle_index(), None);
    }

    #[test]
    #[should_panic(expected = "clock period must be positive")]
    fn zero_clock_rejected() {
        let _ = PeakTracker::new(Seconds::ZERO);
    }
}
