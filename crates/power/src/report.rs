//! Serialisable experiment records.
//!
//! These types are the exchange format between the experiment engines and
//! the `repro` harness/`EXPERIMENTS.md`: one row of the Table 1
//! reproduction, the per-mode measurement behind it, and the formatted
//! table renderer.

use std::fmt;
use transient::units::{Joules, Watts};

use crate::breakdown::PowerBreakdown;
use crate::meter::PowerMeter;

/// Measurements of one March test run in one operating mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeReport {
    /// Total number of clock cycles executed.
    pub cycles: u64,
    /// Total energy of the run.
    pub total_energy: Joules,
    /// Average energy per cycle.
    pub energy_per_cycle: Joules,
    /// Average power per cycle.
    pub average_power: Watts,
    /// Share of the energy attributable to pre-charge activity.
    pub precharge_fraction: f64,
}

impl ModeReport {
    /// Builds the report from a finished meter and its breakdown, computing
    /// every derived quantity exactly once (`CoverageReport`-style caching:
    /// the fields are plain values afterwards, so repeated accesses never
    /// re-derive them from the meter).
    pub fn from_meter(meter: &PowerMeter, breakdown: &PowerBreakdown) -> Self {
        Self {
            cycles: meter.cycles(),
            total_energy: meter.total_energy(),
            energy_per_cycle: meter.energy_per_cycle(),
            average_power: meter.average_power(),
            precharge_fraction: breakdown.precharge_fraction(),
        }
    }
}

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of March elements (`#elm`).
    pub elements: usize,
    /// Number of operations (`#oper`).
    pub operations: usize,
    /// Number of reads (`#read`).
    pub reads: usize,
    /// Number of writes (`#write`).
    pub writes: usize,
    /// Power reduction ratio measured by the cycle-accurate simulation, in
    /// percent.
    pub prr_simulated_percent: f64,
    /// Power reduction ratio predicted by the paper's analytic formula, in
    /// percent.
    pub prr_analytic_percent: f64,
    /// The value reported in the paper, in percent (for side-by-side
    /// comparison).
    pub prr_paper_percent: f64,
}

/// A full PRR comparison between the two modes for one algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct PrrRecord {
    /// Algorithm name.
    pub algorithm: String,
    /// Functional-mode measurements.
    pub functional: ModeReport,
    /// Low-power-test-mode measurements.
    pub low_power: ModeReport,
    /// `1 − P_LPT / P_F` from the measured powers.
    pub prr: f64,
}

impl PrrRecord {
    /// PRR in percent.
    pub fn prr_percent(&self) -> f64 {
        self.prr * 100.0
    }
}

/// Renders a collection of [`Table1Row`]s in the layout of the paper's
/// Table 1 (plus the analytic and paper reference columns).
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>5} {:>6} {:>6} {:>7} {:>10} {:>10} {:>8}\n",
        "Algorithm", "#elm", "#oper", "#read", "#write", "PRR(sim)", "PRR(ana)", "paper"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:>5} {:>6} {:>6} {:>7} {:>9.1}% {:>9.1}% {:>7.1}%\n",
            row.algorithm,
            row.elements,
            row.operations,
            row.reads,
            row.writes,
            row.prr_simulated_percent,
            row.prr_analytic_percent,
            row.prr_paper_percent
        ));
    }
    out
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} elements, {} ops ({}r/{}w) — PRR sim {:.1}%, analytic {:.1}%, paper {:.1}%",
            self.algorithm,
            self.elements,
            self.operations,
            self.reads,
            self.writes,
            self.prr_simulated_percent,
            self.prr_analytic_percent,
            self.prr_paper_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transient::units::Seconds;

    fn mode(pj: f64) -> ModeReport {
        let energy = Joules::from_picojoules(pj);
        ModeReport {
            cycles: 100,
            total_energy: energy * 100.0,
            energy_per_cycle: energy,
            average_power: energy.over(Seconds::from_nanoseconds(3.0)),
            precharge_fraction: 0.5,
        }
    }

    #[test]
    fn prr_record_percent() {
        let record = PrrRecord {
            algorithm: "March C-".to_string(),
            functional: mode(73.0),
            low_power: mode(36.5),
            prr: 0.5,
        };
        assert!((record.prr_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let rows = vec![
            Table1Row {
                algorithm: "March C-".to_string(),
                elements: 6,
                operations: 10,
                reads: 5,
                writes: 5,
                prr_simulated_percent: 49.5,
                prr_analytic_percent: 50.1,
                prr_paper_percent: 47.3,
            },
            Table1Row {
                algorithm: "MATS+".to_string(),
                elements: 3,
                operations: 5,
                reads: 2,
                writes: 3,
                prr_simulated_percent: 48.2,
                prr_analytic_percent: 48.8,
                prr_paper_percent: 48.1,
            },
        ];
        let table = format_table1(&rows);
        assert!(table.contains("March C-"));
        assert!(table.contains("MATS+"));
        assert_eq!(table.lines().count(), 3);
        let line = rows[0].to_string();
        assert!(line.contains("PRR sim 49.5%"));
    }

    #[test]
    fn display_round_trips_the_key_figures() {
        let row = Table1Row {
            algorithm: "March SS".to_string(),
            elements: 6,
            operations: 22,
            reads: 13,
            writes: 9,
            prr_simulated_percent: 50.0,
            prr_analytic_percent: 50.5,
            prr_paper_percent: 50.0,
        };
        let line = row.to_string();
        assert!(line.starts_with("March SS: 6 elements, 22 ops (13r/9w)"));
        assert!(line.contains("analytic 50.5%"));
        assert_eq!(row.clone(), row);
    }
}
