//! Per-source power breakdown (the paper's Section 5 analysis).

use sram_model::energy::CycleEnergy;
use std::fmt;
use transient::units::Joules;

use crate::source::PowerSource;

/// One line of a breakdown: a source, its energy and its share of the
/// total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakdownEntry {
    /// The physical source.
    pub source: PowerSource,
    /// Total energy attributed to the source.
    pub energy: Joules,
    /// Fraction of the run total in `[0, 1]`.
    pub fraction: f64,
}

/// A per-source decomposition of a run's energy.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    entries: Vec<BreakdownEntry>,
    total: Joules,
    /// Pre-charge share of the total, cached at construction so repeated
    /// accesses never rescan the entries.
    precharge_fraction: f64,
}

impl PowerBreakdown {
    /// Builds the breakdown of an aggregated energy record.
    pub fn from_energy(energy: &CycleEnergy) -> Self {
        let total = energy.total();
        let entries: Vec<BreakdownEntry> = PowerSource::all()
            .into_iter()
            .map(|source| {
                let e = source.energy_of(energy);
                BreakdownEntry {
                    source,
                    energy: e,
                    fraction: if total.value() > 0.0 {
                        e.value() / total.value()
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let precharge_fraction = entries
            .iter()
            .filter(|e| e.source.is_precharge_related())
            .map(|e| e.fraction)
            .sum();
        Self {
            entries,
            total,
            precharge_fraction,
        }
    }

    /// All entries in the fixed source order.
    pub fn entries(&self) -> &[BreakdownEntry] {
        &self.entries
    }

    /// Total energy across all sources.
    pub fn total(&self) -> Joules {
        self.total
    }

    /// The entry for a specific source.
    pub fn entry(&self, source: PowerSource) -> BreakdownEntry {
        self.entries
            .iter()
            .copied()
            .find(|e| e.source == source)
            .expect("every source has an entry")
    }

    /// Fraction of the total attributable to pre-charge activity (the
    /// quantity the paper's reference \[8\] puts at 70–80 % of SRAM
    /// power). Cached at construction — no rescan.
    pub fn precharge_fraction(&self) -> f64 {
        self.precharge_fraction
    }

    /// The largest contributor.
    pub fn dominant_source(&self) -> PowerSource {
        self.entries
            .iter()
            .max_by(|a, b| a.energy.value().total_cmp(&b.energy.value()))
            .map(|e| e.source)
            .expect("breakdown always has entries")
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<45} {:>14} {:>8}", "source", "energy", "share")?;
        for entry in &self.entries {
            writeln!(
                f,
                "{:<45} {:>11.3} pJ {:>7.2}%",
                entry.source.to_string(),
                entry.energy.to_picojoules(),
                entry.fraction * 100.0
            )?;
        }
        write!(
            f,
            "{:<45} {:>11.3} pJ {:>7.2}%",
            "total",
            self.total.to_picojoules(),
            100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CycleEnergy {
        let mut e = CycleEnergy::new();
        e.precharge_res = Joules::from_picojoules(36.0);
        e.precharge_selected = Joules::from_picojoules(1.0);
        e.precharge_row_transition = Joules::from_picojoules(1.0);
        e.wordline = Joules::from_picojoules(1.0);
        e.periphery = Joules::from_picojoules(11.0);
        e
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = PowerBreakdown::from_energy(&sample());
        let sum: f64 = b.entries().iter().map(|e| e.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((b.total().to_picojoules() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn precharge_fraction_and_dominant_source() {
        let b = PowerBreakdown::from_energy(&sample());
        assert!((b.precharge_fraction() - 38.0 / 50.0).abs() < 1e-9);
        assert_eq!(b.dominant_source(), PowerSource::PrechargeRes);
        assert_eq!(
            b.entry(PowerSource::Periphery).energy,
            Joules::from_picojoules(11.0)
        );
    }

    #[test]
    fn zero_energy_breakdown_is_well_formed() {
        let b = PowerBreakdown::from_energy(&CycleEnergy::new());
        assert_eq!(b.total(), Joules::ZERO);
        assert!(b.entries().iter().all(|e| e.fraction == 0.0));
    }

    #[test]
    fn display_renders_a_table() {
        let b = PowerBreakdown::from_energy(&sample());
        let text = b.to_string();
        assert!(text.contains("pre-charge (RES, unselected columns)"));
        assert!(text.contains("total"));
        assert!(text.lines().count() >= 11);
    }
}
