//! Test-power accounting for the SRAM low-power test reproduction.
//!
//! This crate turns the raw per-cycle energies reported by the
//! `sram-model` simulator into the quantities the paper reports:
//!
//! * [`meter::PowerMeter`] — accumulates [`sram_model::energy::CycleEnergy`]
//!   records over a run and produces average power and per-source totals,
//! * [`breakdown::PowerBreakdown`] — the Section-5 style per-source
//!   decomposition (pre-charge circuits, row transition, RES, control
//!   logic, …) with fractions of the total,
//! * [`analytic::AnalyticPowerModel`] — the paper's closed-form model
//!   `P_F`, `P_LPT` and `PRR = 1 − P_LPT/P_F` parameterised by `P_A`,
//!   `P_B`, `P_r`, `P_w`,
//! * [`calibration`] — derives those four parameters from the
//!   [`sram_model::config::TechnologyParams`] so the analytic model and the
//!   cycle-accurate simulation can be cross-checked,
//! * [`report`] — serialisable records for the Table 1 reproduction and
//!   the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod breakdown;
pub mod calibration;
pub mod meter;
pub mod peak;
pub mod report;
pub mod source;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::analytic::AnalyticPowerModel;
    pub use crate::breakdown::PowerBreakdown;
    pub use crate::calibration::CalibratedParameters;
    pub use crate::meter::PowerMeter;
    pub use crate::peak::PeakTracker;
    pub use crate::report::{ModeReport, PrrRecord, Table1Row};
    pub use crate::source::PowerSource;
}
