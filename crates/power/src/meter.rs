//! Energy accumulation over a run.

use sram_model::energy::CycleEnergy;
use transient::units::{Joules, Seconds, Watts};

use crate::breakdown::PowerBreakdown;

/// Accumulates per-cycle energy records and reports run-level statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMeter {
    clock_period: Seconds,
    cycles: u64,
    total: CycleEnergy,
}

impl PowerMeter {
    /// Creates a meter for a memory clocked at `clock_period`.
    ///
    /// # Panics
    ///
    /// Panics if the clock period is not strictly positive.
    pub fn new(clock_period: Seconds) -> Self {
        assert!(clock_period.value() > 0.0, "clock period must be positive");
        Self {
            clock_period,
            cycles: 0,
            total: CycleEnergy::new(),
        }
    }

    /// Records the energy of one executed cycle.
    pub fn record(&mut self, energy: &CycleEnergy) {
        self.total.accumulate(energy);
        self.cycles += 1;
    }

    /// Records an already-aggregated energy total covering `cycles` cycles
    /// (used when the simulator returns its own accumulated record).
    pub fn record_aggregate(&mut self, energy: &CycleEnergy, cycles: u64) {
        self.total.accumulate(energy);
        self.cycles += cycles;
    }

    /// Number of cycles recorded.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The clock period the meter was configured with.
    pub fn clock_period(&self) -> Seconds {
        self.clock_period
    }

    /// Total energy over the run.
    pub fn total_energy(&self) -> Joules {
        self.total.total()
    }

    /// The aggregated per-source record.
    pub fn aggregate(&self) -> &CycleEnergy {
        &self.total
    }

    /// Average energy per clock cycle.
    pub fn energy_per_cycle(&self) -> Joules {
        if self.cycles == 0 {
            return Joules::ZERO;
        }
        self.total.total() / self.cycles as f64
    }

    /// Average power per clock cycle — the quantity the paper's `P_F` and
    /// `P_LPT` denote.
    pub fn average_power(&self) -> Watts {
        if self.cycles == 0 {
            return Watts::ZERO;
        }
        self.energy_per_cycle().over(self.clock_period)
    }

    /// Per-source breakdown of the accumulated energy.
    pub fn breakdown(&self) -> PowerBreakdown {
        PowerBreakdown::from_energy(&self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(pj_periphery: f64, pj_res: f64) -> CycleEnergy {
        let mut e = CycleEnergy::new();
        e.periphery = Joules::from_picojoules(pj_periphery);
        e.precharge_res = Joules::from_picojoules(pj_res);
        e
    }

    #[test]
    fn accumulates_cycles_and_energy() {
        let mut meter = PowerMeter::new(Seconds::from_nanoseconds(3.0));
        meter.record(&cycle(2.0, 1.0));
        meter.record(&cycle(4.0, 1.0));
        assert_eq!(meter.cycles(), 2);
        assert!((meter.total_energy().to_picojoules() - 8.0).abs() < 1e-9);
        assert!((meter.energy_per_cycle().to_picojoules() - 4.0).abs() < 1e-9);
        // 4 pJ / 3 ns = 1.333 mW
        assert!((meter.average_power().to_milliwatts() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_record() {
        let mut meter = PowerMeter::new(Seconds::from_nanoseconds(3.0));
        let mut agg = CycleEnergy::new();
        agg.periphery = Joules::from_picojoules(100.0);
        meter.record_aggregate(&agg, 50);
        assert_eq!(meter.cycles(), 50);
        assert!((meter.energy_per_cycle().to_picojoules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_is_zero() {
        let meter = PowerMeter::new(Seconds::from_nanoseconds(3.0));
        assert_eq!(meter.total_energy(), Joules::ZERO);
        assert_eq!(meter.energy_per_cycle(), Joules::ZERO);
        assert_eq!(meter.average_power(), Watts::ZERO);
    }

    #[test]
    fn breakdown_reflects_components() {
        let mut meter = PowerMeter::new(Seconds::from_nanoseconds(3.0));
        meter.record(&cycle(3.0, 1.0));
        let breakdown = meter.breakdown();
        assert!((breakdown.total().to_picojoules() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "clock period must be positive")]
    fn zero_clock_rejected() {
        let _ = PowerMeter::new(Seconds::ZERO);
    }
}
