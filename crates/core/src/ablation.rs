//! Ablations of the design choices behind the low-power schedule.
//!
//! The paper fixes two parameters without exploring alternatives: exactly
//! *one* look-ahead column is kept pre-charged next to the selected one, and
//! the row transition is handled by a *single* all-columns restore cycle.
//! These ablations justify both choices experimentally:
//!
//! * with **zero** look-ahead columns the next access lands on a column
//!   whose bit lines were left floating, the sense amplifier can no longer
//!   resolve reliably and reads start failing — the schedule is broken;
//! * with **more** look-ahead columns correctness is unchanged but every
//!   extra column pays RES and restoration energy every cycle, eroding the
//!   savings;
//! * without the **row-transition restore** the energy is marginally lower
//!   but cells of the next row are corrupted (the Figure 7 hazard).

use sram_model::config::SramConfig;
use sram_model::error::SramError;

use march_test::algorithm::MarchTest;
use transient::units::Watts;

use crate::engine::TestSession;
use crate::mode::OperatingMode;
use crate::scheduler::LpOptions;

/// Result of running the low-power schedule with one set of options.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Number of look-ahead columns kept pre-charged.
    pub lookahead_columns: u32,
    /// Whether the row-transition restore cycle was enabled.
    pub row_transition_restore: bool,
    /// Average power of the run.
    pub average_power: Watts,
    /// Power reduction ratio versus the functional-mode run of the same
    /// test.
    pub prr: f64,
    /// Whether every read matched and no cell was corrupted.
    pub functionally_correct: bool,
    /// Number of reads flagged unreliable by the sense amplifier.
    pub unreliable_reads: u64,
    /// Number of faulty swaps observed.
    pub faulty_swaps: u64,
}

/// Sweeps the look-ahead width (0..=`max_lookahead`) for `test` on `config`
/// and appends the no-restore variant, returning one [`AblationPoint`] per
/// configuration.
///
/// # Errors
///
/// Propagates any [`SramError`] from the memory model.
pub fn lookahead_ablation(
    config: &SramConfig,
    test: &MarchTest,
    max_lookahead: u32,
) -> Result<Vec<AblationPoint>, SramError> {
    let functional = TestSession::new(*config).run(test, OperatingMode::Functional)?;
    let pf = functional.report.average_power.value();

    let mut points = Vec::new();
    for lookahead in 0..=max_lookahead {
        let options = LpOptions {
            lookahead_columns: lookahead,
            row_transition_restore: true,
        };
        points.push(run_point(config, test, options, pf)?);
    }
    points.push(run_point(
        config,
        test,
        LpOptions {
            lookahead_columns: 1,
            row_transition_restore: false,
        },
        pf,
    )?);
    Ok(points)
}

fn run_point(
    config: &SramConfig,
    test: &MarchTest,
    options: LpOptions,
    functional_power: f64,
) -> Result<AblationPoint, SramError> {
    let outcome = TestSession::new(*config)
        .with_options(options)
        .run_with_background(test, OperatingMode::LowPowerTest, true)?;
    let plpt = outcome.report.average_power.value();
    Ok(AblationPoint {
        lookahead_columns: options.lookahead_columns,
        row_transition_restore: options.row_transition_restore,
        average_power: outcome.report.average_power,
        prr: if functional_power > 0.0 {
            1.0 - plpt / functional_power
        } else {
            0.0
        },
        functionally_correct: outcome.is_functionally_correct(),
        unreliable_reads: outcome.unreliable_reads,
        faulty_swaps: outcome.faulty_swaps,
    })
}

/// Convenience selector: among the correct ablation points, the one with the
/// highest PRR (the paper's choice of one look-ahead column plus the restore
/// cycle is expected to win).
pub fn best_correct_point(points: &[AblationPoint]) -> Option<&AblationPoint> {
    points
        .iter()
        .filter(|p| p.functionally_correct && p.unreliable_reads == 0)
        .max_by(|a, b| a.prr.total_cmp(&b.prr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::library;

    fn config() -> SramConfig {
        SramConfig::small_for_tests(8, 32).unwrap()
    }

    #[test]
    fn zero_lookahead_breaks_read_reliability() {
        let points = lookahead_ablation(&config(), &library::mats_plus(), 2).unwrap();
        let zero = points.iter().find(|p| p.lookahead_columns == 0).unwrap();
        assert!(
            zero.unreliable_reads > 0,
            "reading a never-pre-charged column must be flagged"
        );
    }

    #[test]
    fn paper_choice_is_the_best_correct_point() {
        let points = lookahead_ablation(&config(), &library::mats_plus(), 3).unwrap();
        let best = best_correct_point(&points).expect("at least one correct point");
        assert_eq!(best.lookahead_columns, 1, "one look-ahead column wins");
        assert!(best.row_transition_restore);
        // Wider look-ahead stays correct but saves less.
        let two = points
            .iter()
            .find(|p| p.lookahead_columns == 2 && p.row_transition_restore)
            .unwrap();
        assert!(two.functionally_correct);
        assert!(two.prr <= best.prr + 1e-9);
    }

    #[test]
    fn removing_the_restore_is_cheaper_but_incorrect() {
        let points = lookahead_ablation(&config(), &library::march_c_minus(), 1).unwrap();
        let with = points
            .iter()
            .find(|p| p.lookahead_columns == 1 && p.row_transition_restore)
            .unwrap();
        let without = points.iter().find(|p| !p.row_transition_restore).unwrap();
        assert!(with.functionally_correct);
        assert!(!without.functionally_correct || without.faulty_swaps > 0);
        assert!(without.faulty_swaps > 0);
        // Skipping the restore can only reduce the energy (it removes work),
        // which is exactly why correctness, not power, forces it.
        assert!(without.average_power.value() <= with.average_power.value() + 1e-9);
    }
}
