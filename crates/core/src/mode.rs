//! Operating modes of the modified SRAM.

use std::fmt;

/// The two operating modes offered by the modified pre-charge control
/// circuitry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatingMode {
    /// Normal operation: every column's pre-charge circuit is always
    /// active, because the next access is unpredictable.
    Functional,
    /// The paper's low-power test mode: the address sequence is fixed to
    /// "word line after word line" and only the selected column plus the
    /// following one are pre-charged each cycle.
    LowPowerTest,
}

impl OperatingMode {
    /// Both modes, functional first.
    pub fn both() -> [OperatingMode; 2] {
        [OperatingMode::Functional, OperatingMode::LowPowerTest]
    }

    /// Returns `true` for the low-power test mode.
    pub fn is_low_power(self) -> bool {
        matches!(self, OperatingMode::LowPowerTest)
    }
}

impl fmt::Display for OperatingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperatingMode::Functional => f.write_str("functional mode"),
            OperatingMode::LowPowerTest => f.write_str("low-power test mode"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_and_display() {
        assert!(!OperatingMode::Functional.is_low_power());
        assert!(OperatingMode::LowPowerTest.is_low_power());
        assert_eq!(OperatingMode::both().len(), 2);
        assert_eq!(OperatingMode::Functional.to_string(), "functional mode");
        assert_eq!(
            OperatingMode::LowPowerTest.to_string(),
            "low-power test mode"
        );
    }
}
