//! Table 1 reproduction harness.
//!
//! Builds the rows of the paper's Table 1 — one per March algorithm — with
//! three PRR columns side by side: the cycle-accurate simulation, the
//! analytic formula and the value printed in the paper.

use sram_model::config::SramConfig;
use sram_model::error::SramError;

use march_test::algorithm::MarchTest;
use march_test::library;
use power_model::analytic::AnalyticPowerModel;
use power_model::calibration::CalibratedParameters;
use power_model::report::Table1Row;

use crate::engine::TestSession;

/// The PRR values printed in the paper's Table 1, in percent, keyed by
/// algorithm name.
pub fn paper_table1_reference() -> Vec<(&'static str, f64)> {
    vec![
        ("March C-", 47.3),
        ("March SS", 50.0),
        ("MATS+", 48.1),
        ("March SR", 49.5),
        ("March G", 50.5),
    ]
}

/// Looks up the paper's reported PRR for an algorithm, if it appears in
/// Table 1.
pub fn paper_prr_for(algorithm: &str) -> Option<f64> {
    paper_table1_reference()
        .into_iter()
        .find(|(name, _)| *name == algorithm)
        .map(|(_, prr)| prr)
}

/// Builds one Table 1 row for `test` on the given configuration, running
/// both the cycle-accurate simulation and the analytic model.
///
/// # Errors
///
/// Propagates any [`SramError`] from the memory model.
pub fn table1_row(config: &SramConfig, test: &MarchTest) -> Result<Table1Row, SramError> {
    let session = TestSession::new(*config);
    let record = session.compare(test)?;
    let analytic = AnalyticPowerModel::new(CalibratedParameters::derive(
        config.technology(),
        config.organization(),
    ));
    Ok(Table1Row {
        algorithm: test.name().to_string(),
        elements: test.element_count(),
        operations: test.operation_count(),
        reads: test.read_count(),
        writes: test.write_count(),
        prr_simulated_percent: record.prr * 100.0,
        prr_analytic_percent: analytic.power_reduction_ratio(test, config.organization()) * 100.0,
        prr_paper_percent: paper_prr_for(test.name()).unwrap_or(f64::NAN),
    })
}

/// Reproduces the full Table 1 (the five algorithms of the paper) on the
/// given configuration, fanning the per-algorithm sessions out through
/// the workspace's [`sched`] worker pool as
/// [`PowerSession`](sched::WorkKind::PowerSession) work items.
///
/// Every row is computed by an independent session, and the pool's
/// chunked fan-out concatenates per-chunk outputs in input order, so the
/// result is byte-identical to [`reproduce_table1_serial`] — same rows,
/// same order, same floating-point bits (asserted by the golden tests).
///
/// # Errors
///
/// Propagates any [`SramError`] from the memory model.
pub fn reproduce_table1(config: &SramConfig) -> Result<Vec<Table1Row>, SramError> {
    let tests = library::table1_algorithms();
    let threads = march_test::parallel::max_threads().min(tests.len());
    let rows = sched::map_chunks(
        sched::WorkKind::PowerSession,
        &tests,
        threads,
        threads,
        |chunk, _scratch| chunk.iter().map(|test| table1_row(config, test)).collect(),
    );
    assert_eq!(rows.len(), tests.len(), "one row per algorithm");
    rows.into_iter().collect()
}

/// The strictly serial Table 1 reproduction — the reference the parallel
/// path is compared against.
///
/// # Errors
///
/// Propagates any [`SramError`] from the memory model.
pub fn reproduce_table1_serial(config: &SramConfig) -> Result<Vec<Table1Row>, SramError> {
    library::table1_algorithms()
        .iter()
        .map(|test| table1_row(config, test))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_has_five_rows_in_the_expected_band() {
        let reference = paper_table1_reference();
        assert_eq!(reference.len(), 5);
        for (_, prr) in &reference {
            assert!((47.0..51.0).contains(prr));
        }
        assert_eq!(paper_prr_for("March C-"), Some(47.3));
        assert_eq!(paper_prr_for("March Z"), None);
    }

    #[test]
    fn table1_row_on_a_small_array_is_consistent() {
        // A small array keeps the unit test fast; the PRR is lower than the
        // paper's because fewer columns are switched off, but every column
        // of the row must still be internally consistent.
        let config = SramConfig::small_for_tests(8, 32).unwrap();
        let row = table1_row(&config, &library::mats_plus()).unwrap();
        assert_eq!(row.algorithm, "MATS+");
        assert_eq!(row.elements, 3);
        assert_eq!(row.operations, 5);
        assert_eq!(row.reads, 2);
        assert_eq!(row.writes, 3);
        assert!(row.prr_simulated_percent > 0.0);
        assert!(row.prr_analytic_percent > 0.0);
        assert!((row.prr_paper_percent - 48.1).abs() < 1e-9);
        // Simulation and analytic model agree within a few points even on
        // the small array.
        assert!(
            (row.prr_simulated_percent - row.prr_analytic_percent).abs() < 8.0,
            "simulated {} vs analytic {}",
            row.prr_simulated_percent,
            row.prr_analytic_percent
        );
    }
}
