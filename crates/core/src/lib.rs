//! The paper's contribution: low-power SRAM test through reduced
//! pre-charge activity.
//!
//! This crate sits on top of the three substrates of the workspace
//! (`sram-model`, `march-test`, `power-model`) and implements the technique
//! of *"Minimizing Test Power in SRAM through Reduction of Pre-charge
//! Activity"* (DATE 2006):
//!
//! * [`control_logic`] — the modified per-column pre-charge control element
//!   of the paper's Figure 8: a two-transmission-gate multiplexer plus a
//!   NAND gate (ten transistors per column) that selects between the normal
//!   pre-charge signal and the previous column's selection signal under an
//!   `LPtest` mode input,
//! * [`scheduler`] — the "word line after word line" low-power schedule:
//!   every cycle only the selected column and the next one are pre-charged,
//!   and the last operation on the last cell of each row re-enables every
//!   pre-charge circuit for one cycle (the faulty-swap fix of Figure 7),
//! * [`engine`] — the [`engine::TestSession`] that runs any March test on
//!   the cycle-accurate SRAM model in either operating [`mode`], meters the
//!   power and computes the Power Reduction Ratio,
//! * [`verification`] — the checks the paper argues for: no faulty swaps,
//!   data-background independence and unchanged fault coverage,
//! * [`timing`] — the (negligible) delay impact of the added control logic,
//! * [`word_oriented`] — the word-oriented extension sketched as future
//!   work in the paper's conclusions,
//! * [`report`] — the Table 1 reproduction harness.
//!
//! # Example
//!
//! ```
//! use lp_precharge::prelude::*;
//! use march_test::library;
//! use sram_model::config::SramConfig;
//!
//! // A small array keeps the doctest fast; the experiments use 512×512.
//! let session = TestSession::new(SramConfig::small_for_tests(16, 16)?);
//! let record = session.compare(&library::mats_plus())?;
//! assert!(record.prr > 0.0, "the low-power mode must save power");
//! # Ok::<(), sram_model::error::SramError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod control_logic;
pub mod engine;
pub mod mode;
pub mod report;
pub mod scheduler;
pub mod timing;
pub mod verification;
pub mod word_oriented;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::ablation::{best_correct_point, lookahead_ablation, AblationPoint};
    pub use crate::control_logic::{
        ControlInputs, ModifiedPrechargeController, PrechargeControlElement,
    };
    pub use crate::engine::{SessionOutcome, TestSession};
    pub use crate::mode::OperatingMode;
    pub use crate::report::{paper_table1_reference, reproduce_table1, reproduce_table1_serial};
    pub use crate::scheduler::{LowPowerSchedule, LpOptions, ScheduledCycle};
    pub use crate::timing::TimingImpact;
    pub use crate::verification::VerificationReport;
    pub use crate::word_oriented::WordOrientedExtension;
}
