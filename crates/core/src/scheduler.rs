//! The low-power test schedule.
//!
//! The scheduler turns a March test into the per-cycle [`CycleCommand`]s
//! the memory controller executes. In functional mode every cycle simply
//! enables all pre-charge circuits. In the paper's low-power test mode the
//! schedule implements three rules:
//!
//! 1. the address order is fixed to *word line after word line* (the first
//!    March degree of freedom),
//! 2. each cycle pre-charges only the selected column and the next column
//!    to be accessed (the column that "immediately follows"),
//! 3. the last operation on the last cell of each row runs with every
//!    pre-charge circuit enabled for that single cycle, restoring all bit
//!    lines to `V_DD` before the word line of the next row rises — the fix
//!    that prevents the faulty swap of Figure 7 and keeps the technique
//!    independent of the data background.
//!
//! [`LowPowerSchedule`] is a lazy iterator: a full 512×512 March G run is
//! about six million cycles, so commands are produced on demand rather
//! than materialised. The address ordering comes from the march crate's
//! shared [`AddressPlan`]: the ⇑ permutation is computed once per schedule
//! and serves every element in both directions by index arithmetic,
//! instead of one materialised `Vec<Address>` per element.

use sram_model::config::ArrayOrganization;
use sram_model::operation::{CycleCommand, MemOperation};

use march_test::algorithm::MarchTest;
use march_test::element::AddressDirection;
use march_test::executor::AddressPlan;
use march_test::operation::MarchOp;

use crate::mode::OperatingMode;

/// Tuning knobs of the low-power schedule (the paper's choices are the
/// defaults; the alternatives exist for the ablation experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpOptions {
    /// Number of upcoming columns to keep pre-charged in addition to the
    /// selected one. The paper uses 1 (the "column that immediately
    /// follows"); 0 breaks the next access, larger values waste power.
    pub lookahead_columns: u32,
    /// Whether the last operation of each row re-enables every pre-charge
    /// circuit for one cycle. Disabling this reproduces the faulty-swap
    /// hazard of Figure 7.
    pub row_transition_restore: bool,
}

impl Default for LpOptions {
    fn default() -> Self {
        Self {
            lookahead_columns: 1,
            row_transition_restore: true,
        }
    }
}

/// One scheduled clock cycle: the command to execute plus the value any
/// read is expected to return.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCycle {
    /// The memory-controller command.
    pub command: CycleCommand,
    /// Expected read data (`None` for writes).
    pub expected_read: Option<bool>,
    /// Index of the March element this cycle belongs to.
    pub element: usize,
    /// Whether this cycle is a row-transition restore cycle.
    pub is_row_transition_restore: bool,
}

/// Lazy generator of the cycle-by-cycle schedule of a March test.
#[derive(Debug, Clone)]
pub struct LowPowerSchedule {
    mode: OperatingMode,
    options: LpOptions,
    organization: ArrayOrganization,
    plan: AddressPlan,
    elements: Vec<(AddressDirection, Vec<MarchOp>)>,
    element_cursor: usize,
    address_cursor: usize,
    op_cursor: usize,
}

impl LowPowerSchedule {
    /// Builds the schedule of `test` over `organization` in `mode`, using
    /// the paper's default options and the word-line-after-word-line order.
    pub fn new(test: &MarchTest, organization: ArrayOrganization, mode: OperatingMode) -> Self {
        Self::with_options(test, organization, mode, LpOptions::default())
    }

    /// Builds the schedule with explicit options (ablation experiments).
    pub fn with_options(
        test: &MarchTest,
        organization: ArrayOrganization,
        mode: OperatingMode,
        options: LpOptions,
    ) -> Self {
        let plan = AddressPlan::new(
            &march_test::address_order::WordLineAfterWordLine,
            &organization,
        );
        let elements = test
            .elements()
            .iter()
            .map(|element| (element.direction(), element.ops().to_vec()))
            .collect();
        Self {
            mode,
            options,
            organization,
            plan,
            elements,
            element_cursor: 0,
            address_cursor: 0,
            op_cursor: 0,
        }
    }

    /// Total number of cycles the schedule will produce.
    pub fn len(&self) -> u64 {
        let ops: u64 = self
            .elements
            .iter()
            .map(|(_, ops)| ops.len() as u64)
            .sum();
        ops * self.plan.len() as u64
    }

    /// Returns `true` if the schedule produces no cycles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The operating mode the schedule targets.
    pub fn mode(&self) -> OperatingMode {
        self.mode
    }

    /// The options the schedule was built with.
    pub fn options(&self) -> &LpOptions {
        &self.options
    }

    fn build_cycle(&self) -> ScheduledCycle {
        let (direction, ops) = &self.elements[self.element_cursor];
        let element_index = self.element_cursor;
        let address = self
            .plan
            .at(*direction, self.address_cursor)
            .expect("cursor within plan");
        let op = ops[self.op_cursor];
        let mem_op = match op {
            MarchOp::W0 => MemOperation::Write(false),
            MarchOp::W1 => MemOperation::Write(true),
            MarchOp::R0 | MarchOp::R1 => MemOperation::Read,
        };
        let expected_read = op.expected_value();

        if !self.mode.is_low_power() {
            return ScheduledCycle {
                command: CycleCommand::functional(address, mem_op),
                expected_read,
                element: element_index,
                is_row_transition_restore: false,
            };
        }

        let row = address.row(&self.organization);
        let col = address.col(&self.organization).value();
        let last_op_on_address = self.op_cursor == ops.len() - 1;
        let next_address = self.plan.at(*direction, self.address_cursor + 1);
        let next_in_same_row =
            next_address.map(|a| a.row(&self.organization) == row).unwrap_or(false);

        let needs_restore = self.options.row_transition_restore
            && last_op_on_address
            && !next_in_same_row;
        if needs_restore {
            return ScheduledCycle {
                command: CycleCommand::low_power_restore_all(address, mem_op),
                expected_read,
                element: element_index,
                is_row_transition_restore: true,
            };
        }

        // The selected column plus the configured lookahead of upcoming
        // columns (only those in the same row: past the row boundary the
        // restore cycle takes over).
        let mut columns = vec![col];
        for ahead in 1..=self.options.lookahead_columns as usize {
            if let Some(a) = self.plan.at(*direction, self.address_cursor + ahead) {
                if a.row(&self.organization) == row {
                    let c = a.col(&self.organization).value();
                    if !columns.contains(&c) {
                        columns.push(c);
                    }
                }
            }
        }
        ScheduledCycle {
            command: CycleCommand::low_power(address, mem_op, columns),
            expected_read,
            element: element_index,
            is_row_transition_restore: false,
        }
    }

    fn advance(&mut self) {
        let ops_len = self.elements[self.element_cursor].1.len();
        let addr_len = self.plan.len();
        self.op_cursor += 1;
        if self.op_cursor == ops_len {
            self.op_cursor = 0;
            self.address_cursor += 1;
            if self.address_cursor == addr_len {
                self.address_cursor = 0;
                self.element_cursor += 1;
            }
        }
    }
}

impl Iterator for LowPowerSchedule {
    type Item = ScheduledCycle;

    fn next(&mut self) -> Option<ScheduledCycle> {
        if self.element_cursor >= self.elements.len() {
            return None;
        }
        let cycle = self.build_cycle();
        self.advance();
        Some(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::library;
    use sram_model::operation::PrechargePolicy;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 8).unwrap()
    }

    #[test]
    fn functional_schedule_enables_all_columns_every_cycle() {
        let organization = org();
        let test = library::mats_plus();
        let schedule =
            LowPowerSchedule::new(&test, organization, OperatingMode::Functional);
        assert_eq!(schedule.len(), 5 * 32);
        for cycle in schedule {
            assert_eq!(cycle.command.precharge, PrechargePolicy::AllColumns);
            assert!(!cycle.command.lp_test_mode);
        }
    }

    #[test]
    fn low_power_schedule_precharges_selected_and_next_column() {
        let organization = org();
        let test = library::mats_plus();
        let schedule =
            LowPowerSchedule::new(&test, organization, OperatingMode::LowPowerTest);
        let cycles: Vec<ScheduledCycle> = schedule.collect();
        assert_eq!(cycles.len(), 5 * 32);

        // A mid-row cycle of the ascending element ⇑(r0,w1): address row 0,
        // col 2 — the mask must be exactly {2, 3}.
        let mid = cycles
            .iter()
            .find(|c| {
                c.element == 1
                    && c.command.address.col(&organization).value() == 2
                    && c.command.address.row(&organization).value() == 0
            })
            .unwrap();
        match &mid.command.precharge {
            PrechargePolicy::Columns(cols) => assert_eq!(cols, &vec![2, 3]),
            PrechargePolicy::AllColumns => panic!("mid-row cycle must not restore all"),
        }
        assert!(mid.command.lp_test_mode);
    }

    #[test]
    fn last_operation_of_each_row_is_a_restore_cycle() {
        let organization = org();
        let test = library::mats_plus();
        let schedule =
            LowPowerSchedule::new(&test, organization, OperatingMode::LowPowerTest);
        let cycles: Vec<ScheduledCycle> = schedule.collect();
        // Element 1 is ⇑(r0,w1): for each of the 4 rows, the w1 on the last
        // column of the row must be the restore cycle.
        let restores: Vec<&ScheduledCycle> = cycles
            .iter()
            .filter(|c| c.element == 1 && c.is_row_transition_restore)
            .collect();
        assert_eq!(restores.len(), 4, "one restore per row");
        for restore in restores {
            assert_eq!(restore.command.address.col(&organization).value(), 7);
            assert_eq!(restore.command.precharge, PrechargePolicy::AllColumns);
            assert!(restore.command.lp_test_mode);
        }
        // Descending elements restore on column 0 instead.
        let descending_restores: Vec<&ScheduledCycle> = cycles
            .iter()
            .filter(|c| c.element == 2 && c.is_row_transition_restore)
            .collect();
        assert_eq!(descending_restores.len(), 4);
        for restore in descending_restores {
            assert_eq!(restore.command.address.col(&organization).value(), 0);
        }
    }

    #[test]
    fn restore_can_be_disabled_for_the_hazard_ablation() {
        let organization = org();
        let test = library::mats_plus();
        let options = LpOptions {
            row_transition_restore: false,
            ..LpOptions::default()
        };
        let schedule = LowPowerSchedule::with_options(
            &test,
            organization,
            OperatingMode::LowPowerTest,
            options,
        );
        assert!(schedule.clone().all(|c| !c.is_row_transition_restore));
        assert_eq!(schedule.options().lookahead_columns, 1);
    }

    #[test]
    fn lookahead_width_is_configurable() {
        let organization = org();
        let test = library::mats_plus();
        let options = LpOptions {
            lookahead_columns: 2,
            ..LpOptions::default()
        };
        let schedule = LowPowerSchedule::with_options(
            &test,
            organization,
            OperatingMode::LowPowerTest,
            options,
        );
        let cycle = schedule
            .into_iter()
            .find(|c| {
                c.element == 1 && c.command.address.col(&organization).value() == 1
            })
            .unwrap();
        match &cycle.command.precharge {
            PrechargePolicy::Columns(cols) => assert_eq!(cols, &vec![1, 2, 3]),
            PrechargePolicy::AllColumns => panic!("unexpected restore"),
        }
    }

    #[test]
    fn expected_read_values_follow_the_march_ops() {
        let organization = org();
        let test = library::mats_plus();
        let schedule =
            LowPowerSchedule::new(&test, organization, OperatingMode::LowPowerTest);
        for cycle in schedule {
            match cycle.command.op {
                MemOperation::Read => assert!(cycle.expected_read.is_some()),
                MemOperation::Write(_) => assert!(cycle.expected_read.is_none()),
            }
        }
    }

    #[test]
    fn schedule_length_matches_test_length() {
        let organization = org();
        for test in library::table1_algorithms() {
            let schedule =
                LowPowerSchedule::new(&test, organization, OperatingMode::LowPowerTest);
            assert_eq!(
                schedule.len(),
                test.total_operations(u64::from(organization.capacity()))
            );
            assert!(!schedule.is_empty());
            assert_eq!(schedule.mode(), OperatingMode::LowPowerTest);
        }
    }
}
