//! The low-power test schedule.
//!
//! The scheduler turns a March test into the per-cycle [`CycleCommand`]s
//! the memory controller executes. In functional mode every cycle simply
//! enables all pre-charge circuits. In the paper's low-power test mode the
//! schedule implements three rules:
//!
//! 1. the address order is fixed to *word line after word line* (the first
//!    March degree of freedom),
//! 2. each cycle pre-charges only the selected column and the next column
//!    to be accessed (the column that "immediately follows"),
//! 3. the last operation on the last cell of each row runs with every
//!    pre-charge circuit enabled for that single cycle, restoring all bit
//!    lines to `V_DD` before the word line of the next row rises — the fix
//!    that prevents the faulty swap of Figure 7 and keeps the technique
//!    independent of the data background.
//!
//! # The precomputed schedule plan
//!
//! A full 512×512 March G run is about six million cycles, so the
//! per-cycle data must be cheap to produce. The whole per-cycle command
//! stream is determined by `(organization, options)` alone — the March
//! test only selects which element directions walk it and which operation
//! runs each cycle. [`SchedulePlan`] therefore precomputes, once per
//! organization, the per-position arrays every cycle reads from: the
//! address, its physical column, whether the position sits on a row
//! boundary (the restore-cycle trigger) and the explicit pre-charge mask
//! of the low-power mode, stored as slices into one flat column array
//! (analogous to the march crate's `MarchWalk`/`AddressPlan`). Plans are
//! shared read-only across modes, runs and threads through
//! [`SchedulePlan::shared`], so the five Table 1 algorithms and both
//! operating modes of a PRR comparison all walk the same arrays.
//!
//! [`LowPowerSchedule`] stays a lazy iterator over that plan: commands are
//! produced on demand by index arithmetic, with no divisions, neighbour
//! lookups or allocations beyond the mask `Vec` the public
//! [`CycleCommand`] type requires.

use std::sync::{Arc, Mutex, OnceLock};

use sram_model::address::Address;
use sram_model::config::ArrayOrganization;
use sram_model::operation::{CycleCommand, MemOperation};

use march_test::algorithm::MarchTest;
use march_test::element::AddressDirection;
use march_test::executor::AddressPlan;
use march_test::operation::MarchOp;

use crate::mode::OperatingMode;

/// Tuning knobs of the low-power schedule (the paper's choices are the
/// defaults; the alternatives exist for the ablation experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpOptions {
    /// Number of upcoming columns to keep pre-charged in addition to the
    /// selected one. The paper uses 1 (the "column that immediately
    /// follows"); 0 breaks the next access, larger values waste power.
    pub lookahead_columns: u32,
    /// Whether the last operation of each row re-enables every pre-charge
    /// circuit for one cycle. Disabling this reproduces the faulty-swap
    /// hazard of Figure 7.
    pub row_transition_restore: bool,
}

impl Default for LpOptions {
    fn default() -> Self {
        Self {
            lookahead_columns: 1,
            row_transition_restore: true,
        }
    }
}

/// One scheduled clock cycle: the command to execute plus the value any
/// read is expected to return.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCycle {
    /// The memory-controller command.
    pub command: CycleCommand,
    /// Expected read data (`None` for writes).
    pub expected_read: Option<bool>,
    /// Index of the March element this cycle belongs to.
    pub element: usize,
    /// Whether this cycle is a row-transition restore cycle.
    pub is_row_transition_restore: bool,
}

/// The per-position arrays of one walk direction.
#[derive(Debug)]
struct DirectionSteps {
    /// Address visited at each position.
    addresses: Vec<Address>,
    /// Physical column of each position.
    cols: Vec<u32>,
    /// Whether the next position falls on a different row (or past the
    /// end) — the row-transition restore trigger.
    row_boundary: Vec<bool>,
    /// Start of each position's pre-charge mask in `mask_data`.
    mask_offsets: Vec<u32>,
    /// Length of each position's pre-charge mask (`1 + lookahead`
    /// entries in general, so a full-width `u32` — never truncated).
    mask_lens: Vec<u32>,
    /// Flat storage of all pre-charge masks.
    mask_data: Vec<u32>,
}

impl DirectionSteps {
    fn build(
        plan: &AddressPlan,
        direction: AddressDirection,
        organization: &ArrayOrganization,
        options: LpOptions,
    ) -> Self {
        let len = plan.len();
        let mut addresses = Vec::with_capacity(len);
        let mut cols = Vec::with_capacity(len);
        let mut row_boundary = Vec::with_capacity(len);
        let mut mask_offsets = Vec::with_capacity(len);
        let mut mask_lens = Vec::with_capacity(len);
        let mut mask_data = Vec::with_capacity(len * (1 + options.lookahead_columns as usize));
        let mut scratch: Vec<u32> = Vec::new();

        for pos in 0..len {
            let address = plan.at(direction, pos).expect("position within plan");
            let row = address.row(organization);
            let col = address.col(organization).value();
            let next = plan.at(direction, pos + 1);
            let next_in_same_row = next.map(|a| a.row(organization) == row).unwrap_or(false);

            scratch.clear();
            scratch.push(col);
            for ahead in 1..=options.lookahead_columns as usize {
                if let Some(a) = plan.at(direction, pos + ahead) {
                    if a.row(organization) == row {
                        let c = a.col(organization).value();
                        if !scratch.contains(&c) {
                            scratch.push(c);
                        }
                    }
                }
            }

            addresses.push(address);
            cols.push(col);
            row_boundary.push(!next_in_same_row);
            mask_offsets.push(mask_data.len() as u32);
            mask_lens.push(scratch.len() as u32);
            mask_data.extend_from_slice(&scratch);
        }

        Self {
            addresses,
            cols,
            row_boundary,
            mask_offsets,
            mask_lens,
            mask_data,
        }
    }

    #[inline]
    fn mask(&self, pos: usize) -> &[u32] {
        let offset = self.mask_offsets[pos] as usize;
        let len = self.mask_lens[pos] as usize;
        &self.mask_data[offset..offset + len]
    }
}

/// The precomputed per-cycle command stream of the low-power schedule,
/// independent of any particular March test: per-position addresses,
/// columns, row boundaries and pre-charge masks for both walk directions.
///
/// Built once per `(organization, options)` and shared read-only across
/// operating modes, runs and threads (see [`SchedulePlan::shared`]).
#[derive(Debug)]
pub struct SchedulePlan {
    organization: ArrayOrganization,
    options: LpOptions,
    ascending: DirectionSteps,
    descending: DirectionSteps,
}

type PlanKey = (u32, u32, u32, bool);
type PlanCache = Mutex<Vec<(PlanKey, Arc<SchedulePlan>)>>;

fn plan_cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Number of distinct `(organization, options)` plans kept in the shared
/// cache; experiments cycle through a handful of organizations at most.
const PLAN_CACHE_CAPACITY: usize = 8;

impl SchedulePlan {
    /// Precomputes the schedule arrays of `organization` under `options`,
    /// using the paper's word-line-after-word-line order.
    pub fn new(organization: ArrayOrganization, options: LpOptions) -> Self {
        let plan = AddressPlan::new(
            &march_test::address_order::WordLineAfterWordLine,
            &organization,
        );
        let ascending =
            DirectionSteps::build(&plan, AddressDirection::Ascending, &organization, options);
        let descending =
            DirectionSteps::build(&plan, AddressDirection::Descending, &organization, options);
        Self {
            organization,
            options,
            ascending,
            descending,
        }
    }

    /// Returns the shared plan for `(organization, options)`, computing and
    /// caching it on first use. Subsequent calls (from any thread) reuse
    /// the same arrays, so the five Table 1 sessions and the two modes of a
    /// PRR comparison never rebuild the stream.
    pub fn shared(organization: ArrayOrganization, options: LpOptions) -> Arc<Self> {
        let key = (
            organization.rows(),
            organization.cols(),
            options.lookahead_columns,
            options.row_transition_restore,
        );
        let mut cache = plan_cache().lock().expect("schedule plan cache poisoned");
        if let Some((_, plan)) = cache.iter().find(|(k, _)| *k == key) {
            return Arc::clone(plan);
        }
        let plan = Arc::new(Self::new(organization, options));
        if cache.len() == PLAN_CACHE_CAPACITY {
            cache.remove(0);
        }
        cache.push((key, Arc::clone(&plan)));
        plan
    }

    /// The organization the plan was built for.
    pub fn organization(&self) -> &ArrayOrganization {
        &self.organization
    }

    /// The options the plan was built with.
    pub fn options(&self) -> &LpOptions {
        &self.options
    }

    /// Number of addresses in one directional walk.
    pub fn len(&self) -> usize {
        self.ascending.addresses.len()
    }

    /// `true` when the plan covers no addresses.
    pub fn is_empty(&self) -> bool {
        self.ascending.addresses.is_empty()
    }

    #[inline]
    fn steps(&self, direction: AddressDirection) -> &DirectionSteps {
        match direction {
            AddressDirection::Ascending | AddressDirection::Either => &self.ascending,
            AddressDirection::Descending => &self.descending,
        }
    }

    /// The address at `position` of a walk in `direction`.
    #[inline]
    pub fn address_at(&self, direction: AddressDirection, position: usize) -> Address {
        self.steps(direction).addresses[position]
    }

    /// The physical column at `position` of a walk in `direction`.
    #[inline]
    pub fn col_at(&self, direction: AddressDirection, position: usize) -> u32 {
        self.steps(direction).cols[position]
    }

    /// Whether `position` is the last address of its row in `direction`.
    #[inline]
    pub fn row_boundary_at(&self, direction: AddressDirection, position: usize) -> bool {
        self.steps(direction).row_boundary[position]
    }

    /// The low-power pre-charge mask at `position` of a walk in
    /// `direction`: the selected column followed by the configured
    /// lookahead of upcoming same-row columns.
    #[inline]
    pub fn mask_at(&self, direction: AddressDirection, position: usize) -> &[u32] {
        self.steps(direction).mask(position)
    }

    /// Builds the full [`ScheduledCycle`] of one `(position, op)` pair — the
    /// same command the lazy iterator produces, usable for rehearsing
    /// arbitrary schedule windows.
    pub fn cycle(
        &self,
        direction: AddressDirection,
        position: usize,
        op: MarchOp,
        last_op_on_address: bool,
        mode: OperatingMode,
        element: usize,
    ) -> ScheduledCycle {
        let address = self.address_at(direction, position);
        let mem_op = match op {
            MarchOp::W0 => MemOperation::Write(false),
            MarchOp::W1 => MemOperation::Write(true),
            MarchOp::R0 | MarchOp::R1 => MemOperation::Read,
        };
        let expected_read = op.expected_value();

        if !mode.is_low_power() {
            return ScheduledCycle {
                command: CycleCommand::functional(address, mem_op),
                expected_read,
                element,
                is_row_transition_restore: false,
            };
        }

        let needs_restore = self.options.row_transition_restore
            && last_op_on_address
            && self.row_boundary_at(direction, position);
        if needs_restore {
            return ScheduledCycle {
                command: CycleCommand::low_power_restore_all(address, mem_op),
                expected_read,
                element,
                is_row_transition_restore: true,
            };
        }

        ScheduledCycle {
            command: CycleCommand::low_power(
                address,
                mem_op,
                self.mask_at(direction, position).to_vec(),
            ),
            expected_read,
            element,
            is_row_transition_restore: false,
        }
    }
}

/// Lazy generator of the cycle-by-cycle schedule of a March test, reading
/// from a shared precomputed [`SchedulePlan`].
#[derive(Debug, Clone)]
pub struct LowPowerSchedule {
    mode: OperatingMode,
    options: LpOptions,
    plan: Arc<SchedulePlan>,
    elements: Vec<(AddressDirection, Vec<MarchOp>)>,
    element_cursor: usize,
    address_cursor: usize,
    op_cursor: usize,
}

impl LowPowerSchedule {
    /// Builds the schedule of `test` over `organization` in `mode`, using
    /// the paper's default options and the word-line-after-word-line order.
    pub fn new(test: &MarchTest, organization: ArrayOrganization, mode: OperatingMode) -> Self {
        Self::with_options(test, organization, mode, LpOptions::default())
    }

    /// Builds the schedule with explicit options (ablation experiments).
    pub fn with_options(
        test: &MarchTest,
        organization: ArrayOrganization,
        mode: OperatingMode,
        options: LpOptions,
    ) -> Self {
        Self::on_plan(test, SchedulePlan::shared(organization, options), mode)
    }

    /// Builds the schedule of `test` over an existing shared plan.
    pub fn on_plan(test: &MarchTest, plan: Arc<SchedulePlan>, mode: OperatingMode) -> Self {
        let options = *plan.options();
        let elements = test
            .elements()
            .iter()
            .map(|element| (element.direction(), element.ops().to_vec()))
            .collect();
        Self {
            mode,
            options,
            plan,
            elements,
            element_cursor: 0,
            address_cursor: 0,
            op_cursor: 0,
        }
    }

    /// The shared plan the schedule walks.
    pub fn plan(&self) -> &Arc<SchedulePlan> {
        &self.plan
    }

    /// Total number of cycles the schedule will produce.
    pub fn len(&self) -> u64 {
        let ops: u64 = self.elements.iter().map(|(_, ops)| ops.len() as u64).sum();
        ops * self.plan.len() as u64
    }

    /// Returns `true` if the schedule produces no cycles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The operating mode the schedule targets.
    pub fn mode(&self) -> OperatingMode {
        self.mode
    }

    /// The options the schedule was built with.
    pub fn options(&self) -> &LpOptions {
        &self.options
    }

    fn build_cycle(&self) -> ScheduledCycle {
        let (direction, ops) = &self.elements[self.element_cursor];
        let op = ops[self.op_cursor];
        self.plan.cycle(
            *direction,
            self.address_cursor,
            op,
            self.op_cursor == ops.len() - 1,
            self.mode,
            self.element_cursor,
        )
    }

    fn advance(&mut self) {
        let ops_len = self.elements[self.element_cursor].1.len();
        let addr_len = self.plan.len();
        self.op_cursor += 1;
        if self.op_cursor == ops_len {
            self.op_cursor = 0;
            self.address_cursor += 1;
            if self.address_cursor == addr_len {
                self.address_cursor = 0;
                self.element_cursor += 1;
            }
        }
    }
}

impl Iterator for LowPowerSchedule {
    type Item = ScheduledCycle;

    fn next(&mut self) -> Option<ScheduledCycle> {
        if self.element_cursor >= self.elements.len() {
            return None;
        }
        let cycle = self.build_cycle();
        self.advance();
        Some(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::library;
    use sram_model::operation::PrechargePolicy;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(4, 8).unwrap()
    }

    #[test]
    fn functional_schedule_enables_all_columns_every_cycle() {
        let organization = org();
        let test = library::mats_plus();
        let schedule = LowPowerSchedule::new(&test, organization, OperatingMode::Functional);
        assert_eq!(schedule.len(), 5 * 32);
        for cycle in schedule {
            assert_eq!(cycle.command.precharge, PrechargePolicy::AllColumns);
            assert!(!cycle.command.lp_test_mode);
        }
    }

    #[test]
    fn low_power_schedule_precharges_selected_and_next_column() {
        let organization = org();
        let test = library::mats_plus();
        let schedule = LowPowerSchedule::new(&test, organization, OperatingMode::LowPowerTest);
        let cycles: Vec<ScheduledCycle> = schedule.collect();
        assert_eq!(cycles.len(), 5 * 32);

        // A mid-row cycle of the ascending element ⇑(r0,w1): address row 0,
        // col 2 — the mask must be exactly {2, 3}.
        let mid = cycles
            .iter()
            .find(|c| {
                c.element == 1
                    && c.command.address.col(&organization).value() == 2
                    && c.command.address.row(&organization).value() == 0
            })
            .unwrap();
        match &mid.command.precharge {
            PrechargePolicy::Columns(cols) => assert_eq!(cols, &vec![2, 3]),
            PrechargePolicy::AllColumns => panic!("mid-row cycle must not restore all"),
        }
        assert!(mid.command.lp_test_mode);
    }

    #[test]
    fn last_operation_of_each_row_is_a_restore_cycle() {
        let organization = org();
        let test = library::mats_plus();
        let schedule = LowPowerSchedule::new(&test, organization, OperatingMode::LowPowerTest);
        let cycles: Vec<ScheduledCycle> = schedule.collect();
        // Element 1 is ⇑(r0,w1): for each of the 4 rows, the w1 on the last
        // column of the row must be the restore cycle.
        let restores: Vec<&ScheduledCycle> = cycles
            .iter()
            .filter(|c| c.element == 1 && c.is_row_transition_restore)
            .collect();
        assert_eq!(restores.len(), 4, "one restore per row");
        for restore in restores {
            assert_eq!(restore.command.address.col(&organization).value(), 7);
            assert_eq!(restore.command.precharge, PrechargePolicy::AllColumns);
            assert!(restore.command.lp_test_mode);
        }
        // Descending elements restore on column 0 instead.
        let descending_restores: Vec<&ScheduledCycle> = cycles
            .iter()
            .filter(|c| c.element == 2 && c.is_row_transition_restore)
            .collect();
        assert_eq!(descending_restores.len(), 4);
        for restore in descending_restores {
            assert_eq!(restore.command.address.col(&organization).value(), 0);
        }
    }

    #[test]
    fn restore_can_be_disabled_for_the_hazard_ablation() {
        let organization = org();
        let test = library::mats_plus();
        let options = LpOptions {
            row_transition_restore: false,
            ..LpOptions::default()
        };
        let schedule = LowPowerSchedule::with_options(
            &test,
            organization,
            OperatingMode::LowPowerTest,
            options,
        );
        assert!(schedule.clone().all(|c| !c.is_row_transition_restore));
        assert_eq!(schedule.options().lookahead_columns, 1);
    }

    #[test]
    fn lookahead_width_is_configurable() {
        let organization = org();
        let test = library::mats_plus();
        let options = LpOptions {
            lookahead_columns: 2,
            ..LpOptions::default()
        };
        let schedule = LowPowerSchedule::with_options(
            &test,
            organization,
            OperatingMode::LowPowerTest,
            options,
        );
        let cycle = schedule
            .into_iter()
            .find(|c| c.element == 1 && c.command.address.col(&organization).value() == 1)
            .unwrap();
        match &cycle.command.precharge {
            PrechargePolicy::Columns(cols) => assert_eq!(cols, &vec![1, 2, 3]),
            PrechargePolicy::AllColumns => panic!("unexpected restore"),
        }
    }

    #[test]
    fn very_wide_lookahead_masks_are_not_truncated() {
        // Lookahead widths beyond 255 must keep their full mask length.
        let organization = ArrayOrganization::new(1, 512).unwrap();
        let plan = SchedulePlan::new(
            organization,
            LpOptions {
                lookahead_columns: 300,
                ..LpOptions::default()
            },
        );
        let mask = plan.mask_at(AddressDirection::Ascending, 0);
        assert_eq!(mask.len(), 301);
        assert_eq!(mask[0], 0);
        assert_eq!(mask[300], 300);
    }

    #[test]
    fn expected_read_values_follow_the_march_ops() {
        let organization = org();
        let test = library::mats_plus();
        let schedule = LowPowerSchedule::new(&test, organization, OperatingMode::LowPowerTest);
        for cycle in schedule {
            match cycle.command.op {
                MemOperation::Read => assert!(cycle.expected_read.is_some()),
                MemOperation::Write(_) => assert!(cycle.expected_read.is_none()),
            }
        }
    }

    #[test]
    fn schedule_length_matches_test_length() {
        let organization = org();
        for test in library::table1_algorithms() {
            let schedule = LowPowerSchedule::new(&test, organization, OperatingMode::LowPowerTest);
            assert_eq!(
                schedule.len(),
                test.total_operations(u64::from(organization.capacity()))
            );
            assert!(!schedule.is_empty());
            assert_eq!(schedule.mode(), OperatingMode::LowPowerTest);
        }
    }

    #[test]
    fn shared_plans_are_reused_across_modes_and_tests() {
        let organization = org();
        let a = SchedulePlan::shared(organization, LpOptions::default());
        let b = SchedulePlan::shared(organization, LpOptions::default());
        assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");

        let functional = LowPowerSchedule::new(
            &library::mats_plus(),
            organization,
            OperatingMode::Functional,
        );
        let low_power = LowPowerSchedule::new(
            &library::march_c_minus(),
            organization,
            OperatingMode::LowPowerTest,
        );
        assert!(Arc::ptr_eq(functional.plan(), low_power.plan()));

        let other = SchedulePlan::shared(
            organization,
            LpOptions {
                lookahead_columns: 2,
                ..LpOptions::default()
            },
        );
        assert!(
            !Arc::ptr_eq(&a, &other),
            "different options, different plan"
        );
    }

    #[test]
    fn plan_arrays_match_the_lazy_iterator() {
        let organization = org();
        let plan = SchedulePlan::shared(organization, LpOptions::default());
        assert_eq!(plan.len(), 32);
        assert!(!plan.is_empty());
        assert_eq!(plan.organization(), &organization);
        // Ascending masks: mid-row {c, c+1}, row end {c}.
        for pos in 0..plan.len() {
            let col = plan.col_at(AddressDirection::Ascending, pos);
            let mask = plan.mask_at(AddressDirection::Ascending, pos);
            assert_eq!(mask[0], col);
            if plan.row_boundary_at(AddressDirection::Ascending, pos) {
                assert_eq!(mask.len(), 1, "no same-row lookahead past a boundary");
                assert_eq!(col, 7);
            } else {
                assert_eq!(mask, &[col, col + 1]);
            }
        }
        // Descending positions mirror the ascending ones.
        for pos in 0..plan.len() {
            assert_eq!(
                plan.address_at(AddressDirection::Descending, pos),
                plan.address_at(AddressDirection::Ascending, plan.len() - 1 - pos)
            );
        }
    }
}
