//! The test session engine: run a March test, meter the power, compute the
//! PRR.
//!
//! [`TestSession`] ties the workspace together: it builds the
//! cycle-accurate [`MemoryController`], lets the [`LowPowerSchedule`]
//! produce one [`sram_model::operation::CycleCommand`] per clock cycle,
//! feeds the per-cycle energies into a [`PowerMeter`] and reports the
//! run-level measurements the paper's Table 1 is built from.

use sram_model::config::SramConfig;
use sram_model::controller::MemoryController;
use sram_model::error::SramError;
use sram_model::stress::StressReport;

use march_test::algorithm::MarchTest;
use power_model::breakdown::PowerBreakdown;
use power_model::meter::PowerMeter;
use power_model::peak::PeakTracker;
use power_model::report::{ModeReport, PrrRecord};
use transient::units::Watts;

use crate::mode::OperatingMode;
use crate::scheduler::{LowPowerSchedule, LpOptions};

/// Everything measured while running one March test in one operating mode.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The operating mode of the run.
    pub mode: OperatingMode,
    /// Name of the March test.
    pub test_name: String,
    /// Power/energy measurements.
    pub report: ModeReport,
    /// Per-source energy breakdown.
    pub breakdown: PowerBreakdown,
    /// RES/corruption statistics.
    pub stress: StressReport,
    /// Number of faulty swaps the controller observed.
    pub faulty_swaps: u64,
    /// Number of reads that returned a value different from the March
    /// expectation (zero on a fault-free memory when the schedule is
    /// correct).
    pub read_mismatches: u64,
    /// Number of reads the sense amplifier flagged as unreliable (e.g. when
    /// an ablated schedule forgets to pre-charge the selected column).
    pub unreliable_reads: u64,
    /// Power of the single most expensive clock cycle of the run.
    pub peak_power: Watts,
    /// Ratio between the peak cycle and the average cycle power.
    pub peak_to_average: f64,
}

impl SessionOutcome {
    /// `true` when every read matched its expectation and no cell was
    /// corrupted — the run is functionally indistinguishable from a
    /// functional-mode test.
    pub fn is_functionally_correct(&self) -> bool {
        self.read_mismatches == 0 && self.faulty_swaps == 0
    }
}

/// Runs March tests on a configured SRAM in either operating mode.
#[derive(Debug, Clone)]
pub struct TestSession {
    config: SramConfig,
    options: LpOptions,
}

impl TestSession {
    /// Creates a session for the given memory configuration with the
    /// paper's default low-power options.
    pub fn new(config: SramConfig) -> Self {
        Self {
            config,
            options: LpOptions::default(),
        }
    }

    /// Creates a session for the paper's 512×512 / 0.13 µm configuration.
    pub fn paper_default() -> Self {
        Self::new(SramConfig::paper_default())
    }

    /// Overrides the low-power schedule options (ablation experiments).
    pub fn with_options(mut self, options: LpOptions) -> Self {
        self.options = options;
        self
    }

    /// The memory configuration of the session.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// The low-power options of the session.
    pub fn options(&self) -> &LpOptions {
        &self.options
    }

    /// Runs `test` in `mode` on a freshly initialised memory (all cells at
    /// `0`, all bit lines pre-charged).
    ///
    /// # Errors
    ///
    /// Propagates any [`SramError`] from the memory model; with a
    /// well-formed configuration this does not happen.
    pub fn run(&self, test: &MarchTest, mode: OperatingMode) -> Result<SessionOutcome, SramError> {
        self.run_with_background(test, mode, false)
    }

    /// Runs `test` in `mode` with every cell initialised to `background`
    /// before the test starts (data-background independence experiments).
    ///
    /// # Errors
    ///
    /// Propagates any [`SramError`] from the memory model.
    pub fn run_with_background(
        &self,
        test: &MarchTest,
        mode: OperatingMode,
        background: bool,
    ) -> Result<SessionOutcome, SramError> {
        let mut controller = MemoryController::new(self.config);
        controller.array_mut().fill(background);
        let technology = *self.config.technology();

        let schedule = LowPowerSchedule::with_options(
            test,
            *self.config.organization(),
            mode,
            self.options,
        );

        let mut read_mismatches = 0u64;
        let mut unreliable_reads = 0u64;
        let mut peak = PeakTracker::new(technology.clock_period);
        for cycle in schedule {
            let outcome = controller.execute(cycle.command)?;
            peak.record_total(outcome.energy.total());
            if outcome.read_value.is_some() && !outcome.read_reliable {
                unreliable_reads += 1;
            }
            if let (Some(expected), Some(observed)) = (cycle.expected_read, outcome.read_value) {
                if expected != observed {
                    read_mismatches += 1;
                }
            }
        }

        let mut meter = PowerMeter::new(technology.clock_period);
        meter.record_aggregate(controller.accumulated_energy(), controller.cycles());

        let breakdown = meter.breakdown();
        let report = ModeReport {
            cycles: meter.cycles(),
            total_energy: meter.total_energy(),
            energy_per_cycle: meter.energy_per_cycle(),
            average_power: meter.average_power(),
            precharge_fraction: breakdown.precharge_fraction(),
        };

        let peak_to_average = peak.peak_to_average(report.average_power);
        Ok(SessionOutcome {
            mode,
            test_name: test.name().to_string(),
            report,
            breakdown,
            stress: controller.stress_report(),
            faulty_swaps: controller.total_faulty_swaps(),
            read_mismatches,
            unreliable_reads,
            peak_power: peak.peak_power(),
            peak_to_average,
        })
    }

    /// Runs `test` in both modes and computes the measured Power Reduction
    /// Ratio `PRR = 1 − P_LPT / P_F`.
    ///
    /// # Errors
    ///
    /// Propagates any [`SramError`] from the memory model.
    pub fn compare(&self, test: &MarchTest) -> Result<PrrRecord, SramError> {
        let functional = self.run(test, OperatingMode::Functional)?;
        let low_power = self.run(test, OperatingMode::LowPowerTest)?;
        let pf = functional.report.average_power.value();
        let plpt = low_power.report.average_power.value();
        let prr = if pf > 0.0 { 1.0 - plpt / pf } else { 0.0 };
        Ok(PrrRecord {
            algorithm: test.name().to_string(),
            functional: functional.report,
            low_power: low_power.report,
            prr,
        })
    }
}

impl Default for TestSession {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::library;

    fn small_session() -> TestSession {
        TestSession::new(SramConfig::small_for_tests(8, 16).unwrap())
    }

    #[test]
    fn functional_run_is_correct_and_stresses_all_columns() {
        let session = small_session();
        let outcome = session
            .run(&library::mats_plus(), OperatingMode::Functional)
            .unwrap();
        assert!(outcome.is_functionally_correct());
        assert_eq!(outcome.report.cycles, 5 * 128);
        // Every cycle stresses cols-1 = 15 cells.
        assert!((outcome.stress.full_res_per_cycle() - 15.0).abs() < 1e-9);
        assert!(outcome.report.total_energy.value() > 0.0);
    }

    #[test]
    fn low_power_run_is_correct_and_saves_energy() {
        let session = small_session();
        let functional = session
            .run(&library::march_c_minus(), OperatingMode::Functional)
            .unwrap();
        let low_power = session
            .run(&library::march_c_minus(), OperatingMode::LowPowerTest)
            .unwrap();
        assert!(low_power.is_functionally_correct(), "no mismatches, no swaps");
        assert!(
            low_power.report.total_energy < functional.report.total_energy,
            "LP mode must consume less energy"
        );
        // In LP mode only ~1 full RES per cycle (the next column).
        assert!(low_power.stress.full_res_per_cycle() < 2.0);
        assert!(functional.stress.full_res_per_cycle() > 10.0);
    }

    #[test]
    fn compare_produces_a_positive_prr() {
        let session = small_session();
        let record = session.compare(&library::mats_plus()).unwrap();
        assert!(record.prr > 0.0 && record.prr < 1.0);
        assert_eq!(record.algorithm, "MATS+");
        assert!(record.functional.average_power > record.low_power.average_power);
    }

    #[test]
    fn background_independence() {
        let session = small_session();
        for background in [false, true] {
            let outcome = session
                .run_with_background(
                    &library::march_c_minus(),
                    OperatingMode::LowPowerTest,
                    background,
                )
                .unwrap();
            assert!(
                outcome.is_functionally_correct(),
                "background {background} must not break the low-power test"
            );
        }
    }

    #[test]
    fn disabling_the_row_restore_breaks_correctness() {
        // The ablation that motivates the row-transition restore: without
        // it, discharged bit lines corrupt cells of the next row and reads
        // start failing (with the all-ones background the very first
        // element's reads already see it).
        let session = small_session().with_options(LpOptions {
            row_transition_restore: false,
            ..LpOptions::default()
        });
        let outcome = session
            .run_with_background(&library::march_c_minus(), OperatingMode::LowPowerTest, true)
            .unwrap();
        assert!(
            outcome.faulty_swaps > 0,
            "expected faulty swaps without the restore cycle"
        );
    }

    #[test]
    fn peak_power_is_tracked_and_exceeds_the_average() {
        let session = small_session();
        let functional = session
            .run(&library::march_c_minus(), OperatingMode::Functional)
            .unwrap();
        let low_power = session
            .run(&library::march_c_minus(), OperatingMode::LowPowerTest)
            .unwrap();
        assert!(functional.peak_power >= functional.report.average_power);
        assert!(low_power.peak_power >= low_power.report.average_power);
        assert!(functional.peak_to_average >= 1.0);
        // The low-power mode concentrates restoration into the
        // row-transition cycle, so its peak-to-average ratio is larger.
        assert!(low_power.peak_to_average > functional.peak_to_average);
        assert_eq!(functional.unreliable_reads, 0);
        assert_eq!(low_power.unreliable_reads, 0);
    }

    #[test]
    fn precharge_fraction_is_lower_in_low_power_mode() {
        let session = small_session();
        let functional = session
            .run(&library::mats_plus(), OperatingMode::Functional)
            .unwrap();
        let low_power = session
            .run(&library::mats_plus(), OperatingMode::LowPowerTest)
            .unwrap();
        assert!(
            low_power.report.precharge_fraction < functional.report.precharge_fraction,
            "removing pre-charge activity must reduce its share of the total"
        );
    }
}
