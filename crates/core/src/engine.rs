//! The test session engine: run a March test, meter the power, compute the
//! PRR.
//!
//! [`TestSession`] ties the workspace together: it builds the
//! cycle-accurate [`MemoryController`], lets the [`LowPowerSchedule`]
//! produce one [`sram_model::operation::CycleCommand`] per clock cycle,
//! feeds the per-cycle energies into a [`PowerMeter`] and reports the
//! run-level measurements the paper's Table 1 is built from.
//!
//! # The row-replay kernel
//!
//! Simulating every one of the ~6 million cycles of a 512×512 March G run
//! through the full analog controller is the slowest path in the
//! workspace. The standard schedule (row-transition restore enabled,
//! lookahead ≥ 1) makes it unnecessary: every row of an element starts
//! from the identical state — all bit lines restored to `V_DD` by the
//! row-transition restore cycle — and every per-cycle energy in the model
//! depends only on the *position within the row* and the *operation*,
//! never on the stored data (sense and write energies are
//! deficit/constant based, decode energy depends only on whether the
//! row/column changed, and discharge trajectories always start from
//! `V_DD`). Rows 1..R of an element are therefore cycle-for-cycle
//! identical, and row 0 differs only through the element-boundary decode
//! state.
//!
//! [`TestSession::run`] exploits this: it *rehearses* the first two row
//! groups of each element on the real [`MemoryController`] (priming the
//! controller with the previous element's final restore cycle so decode
//! boundaries are exact), records the per-cycle [`CycleEnergy`] profiles,
//! and *replays* those profiles for the remaining rows — accumulating
//! energy per cycle in the identical order, feeding the
//! [`PeakTracker`] the identical per-cycle totals, and simulating cell
//! contents with a plain bit model for the read-expectation checks. The
//! replayed run is allocation-flat and reproduces the fully simulated
//! [`SessionOutcome`] bit for bit (asserted by the golden tests and by
//! the `power_engine_bench` equivalence gate), at well over an order of
//! magnitude higher throughput. Ablation schedules that disable the
//! restore cycle (where state genuinely leaks across rows) keep using the
//! full cycle-by-cycle simulation.

use sram_model::config::SramConfig;
use sram_model::controller::MemoryController;
use sram_model::energy::CycleEnergy;
use sram_model::error::SramError;
use sram_model::stress::StressReport;

use march_test::algorithm::MarchTest;
use march_test::element::AddressDirection;
use march_test::operation::MarchOp;
use power_model::breakdown::PowerBreakdown;
use power_model::meter::PowerMeter;
use power_model::peak::PeakTracker;
use power_model::report::{ModeReport, PrrRecord};
use transient::units::{Joules, Watts};

use crate::mode::OperatingMode;
use crate::scheduler::{LowPowerSchedule, LpOptions, SchedulePlan};

/// Everything measured while running one March test in one operating mode.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The operating mode of the run.
    pub mode: OperatingMode,
    /// Name of the March test.
    pub test_name: String,
    /// Power/energy measurements.
    pub report: ModeReport,
    /// Per-source energy breakdown.
    pub breakdown: PowerBreakdown,
    /// RES/corruption statistics.
    pub stress: StressReport,
    /// Number of faulty swaps the controller observed.
    pub faulty_swaps: u64,
    /// Number of reads that returned a value different from the March
    /// expectation (zero on a fault-free memory when the schedule is
    /// correct).
    pub read_mismatches: u64,
    /// Number of reads the sense amplifier flagged as unreliable (e.g. when
    /// an ablated schedule forgets to pre-charge the selected column).
    pub unreliable_reads: u64,
    /// Power of the single most expensive clock cycle of the run.
    pub peak_power: Watts,
    /// Ratio between the peak cycle and the average cycle power.
    pub peak_to_average: f64,
}

impl SessionOutcome {
    /// `true` when every read matched its expectation and no cell was
    /// corrupted — the run is functionally indistinguishable from a
    /// functional-mode test.
    pub fn is_functionally_correct(&self) -> bool {
        self.read_mismatches == 0 && self.faulty_swaps == 0
    }
}

/// Per-cycle measurements of one rehearsed row group: everything the
/// replay needs to reproduce the remaining rows bit for bit.
#[derive(Debug, Clone, Default)]
struct RowProfile {
    /// Per-cycle energy records, in schedule order.
    energies: Vec<CycleEnergy>,
    /// Per-cycle totals (precomputed for the peak tracker).
    totals: Vec<Joules>,
    /// Reads flagged unreliable during the row group.
    unreliable_reads: u64,
    /// Full read-equivalent stresses applied during the row group.
    full_res_events: u64,
    /// Reduced read-equivalent stresses applied during the row group.
    reduced_res_events: u64,
}

impl RowProfile {
    fn with_capacity(cycles: usize) -> Self {
        Self {
            energies: Vec::with_capacity(cycles),
            totals: Vec::with_capacity(cycles),
            ..Self::default()
        }
    }
}

/// Runs March tests on a configured SRAM in either operating mode.
#[derive(Debug, Clone)]
pub struct TestSession {
    config: SramConfig,
    options: LpOptions,
}

impl TestSession {
    /// Creates a session for the given memory configuration with the
    /// paper's default low-power options.
    pub fn new(config: SramConfig) -> Self {
        Self {
            config,
            options: LpOptions::default(),
        }
    }

    /// Creates a session for the paper's 512×512 / 0.13 µm configuration.
    pub fn paper_default() -> Self {
        Self::new(SramConfig::paper_default())
    }

    /// Overrides the low-power schedule options (ablation experiments).
    pub fn with_options(mut self, options: LpOptions) -> Self {
        self.options = options;
        self
    }

    /// The memory configuration of the session.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// The low-power options of the session.
    pub fn options(&self) -> &LpOptions {
        &self.options
    }

    /// Runs `test` in `mode` on a freshly initialised memory (all cells at
    /// `0`, all bit lines pre-charged).
    ///
    /// # Errors
    ///
    /// Propagates any [`SramError`] from the memory model; with a
    /// well-formed configuration this does not happen.
    pub fn run(&self, test: &MarchTest, mode: OperatingMode) -> Result<SessionOutcome, SramError> {
        self.run_with_background(test, mode, false)
    }

    /// Runs `test` in `mode` with every cell initialised to `background`
    /// before the test starts (data-background independence experiments).
    ///
    /// # Errors
    ///
    /// Propagates any [`SramError`] from the memory model.
    pub fn run_with_background(
        &self,
        test: &MarchTest,
        mode: OperatingMode,
        background: bool,
    ) -> Result<SessionOutcome, SramError> {
        // The row-replay kernel requires the state-isolation property of
        // the paper's schedule: with the row-transition restore and a
        // non-empty lookahead every row starts from fully restored bit
        // lines, so rows are cycle-identical and can be replayed. The
        // ablation schedules that break that property (the Figure 7
        // hazard) fall back to the full cycle-by-cycle simulation.
        if self.options.row_transition_restore && self.options.lookahead_columns >= 1 {
            self.run_replayed(test, mode, background)
        } else {
            self.run_simulated(test, mode, background)
        }
    }

    /// Runs the full cycle-by-cycle simulation unconditionally, bypassing
    /// the row-replay kernel. This is the reference path: the golden tests
    /// and the `power_engine_bench` equivalence gate assert that
    /// [`TestSession::run`] reproduces its [`SessionOutcome`] bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates any [`SramError`] from the memory model.
    pub fn run_fully_simulated(
        &self,
        test: &MarchTest,
        mode: OperatingMode,
        background: bool,
    ) -> Result<SessionOutcome, SramError> {
        self.run_simulated(test, mode, background)
    }

    /// The full cycle-by-cycle simulation: every command of the schedule
    /// is executed on the analog [`MemoryController`].
    fn run_simulated(
        &self,
        test: &MarchTest,
        mode: OperatingMode,
        background: bool,
    ) -> Result<SessionOutcome, SramError> {
        let mut controller = MemoryController::new(self.config);
        controller.array_mut().fill(background);
        let technology = *self.config.technology();

        let schedule =
            LowPowerSchedule::with_options(test, *self.config.organization(), mode, self.options);

        let mut read_mismatches = 0u64;
        let mut unreliable_reads = 0u64;
        let mut peak = PeakTracker::new(technology.clock_period);
        for cycle in schedule {
            let outcome = controller.execute(cycle.command)?;
            peak.record_total(outcome.energy.total());
            if outcome.read_value.is_some() && !outcome.read_reliable {
                unreliable_reads += 1;
            }
            if let (Some(expected), Some(observed)) = (cycle.expected_read, outcome.read_value) {
                if expected != observed {
                    read_mismatches += 1;
                }
            }
        }

        let mut meter = PowerMeter::new(technology.clock_period);
        meter.record_aggregate(controller.accumulated_energy(), controller.cycles());

        let breakdown = meter.breakdown();
        let report = ModeReport::from_meter(&meter, &breakdown);

        let peak_to_average = peak.peak_to_average(report.average_power);
        Ok(SessionOutcome {
            mode,
            test_name: test.name().to_string(),
            report,
            breakdown,
            stress: controller.stress_report(),
            faulty_swaps: controller.total_faulty_swaps(),
            read_mismatches,
            unreliable_reads,
            peak_power: peak.peak_power(),
            peak_to_average,
        })
    }

    /// The row-replay kernel (see the module documentation): rehearses the
    /// first two row groups of each element on the real controller and
    /// replays the recorded per-cycle profiles for the remaining rows.
    fn run_replayed(
        &self,
        test: &MarchTest,
        mode: OperatingMode,
        background: bool,
    ) -> Result<SessionOutcome, SramError> {
        let organization = *self.config.organization();
        let technology = *self.config.technology();
        let rows = organization.rows() as usize;
        let cols = organization.cols() as usize;
        let plan = SchedulePlan::shared(organization, self.options);

        let elements: Vec<(AddressDirection, Vec<MarchOp>)> = test
            .elements()
            .iter()
            .map(|element| (element.direction(), element.ops().to_vec()))
            .collect();

        // --- Rehearsal: record the first two row groups of each element.
        // One controller carries the analog state through the run; before
        // each element it is primed with the previous element's final
        // restore cycle so the decode/word-line boundary state at the
        // element start is exact, then its statistics are cleared so the
        // profiles contain only the rehearsed rows.
        let mut controller = MemoryController::new(self.config);
        let mut profiles: Vec<Vec<RowProfile>> = Vec::with_capacity(elements.len());
        let mut last_cycle: Option<(AddressDirection, MarchOp, usize)> = None;
        for (element_index, (direction, ops)) in elements.iter().enumerate() {
            if ops.is_empty() {
                profiles.push(Vec::new());
                continue;
            }
            if let Some((prev_direction, prev_op, prev_element)) = last_cycle.take() {
                let prime = plan.cycle(
                    prev_direction,
                    plan.len() - 1,
                    prev_op,
                    true,
                    mode,
                    prev_element,
                );
                controller.execute(prime.command)?;
                controller.reset_statistics();
            }

            let rehearse_rows = rows.min(2);
            let mut element_profiles = Vec::with_capacity(rehearse_rows);
            for row in 0..rehearse_rows {
                let mut profile = RowProfile::with_capacity(cols * ops.len());
                let stress_before = controller.stress_report();
                for pos in row * cols..(row + 1) * cols {
                    for (op_index, &op) in ops.iter().enumerate() {
                        let cycle = plan.cycle(
                            *direction,
                            pos,
                            op,
                            op_index == ops.len() - 1,
                            mode,
                            element_index,
                        );
                        let outcome = controller.execute(cycle.command)?;
                        profile.energies.push(outcome.energy);
                        profile.totals.push(outcome.energy.total());
                        if outcome.read_value.is_some() && !outcome.read_reliable {
                            profile.unreliable_reads += 1;
                        }
                    }
                }
                let stress_after = controller.stress_report();
                profile.full_res_events =
                    stress_after.full_res_events - stress_before.full_res_events;
                profile.reduced_res_events =
                    stress_after.reduced_res_events - stress_before.reduced_res_events;
                element_profiles.push(profile);
            }
            profiles.push(element_profiles);
            last_cycle = Some((
                *direction,
                *ops.last().expect("non-empty ops"),
                element_index,
            ));
        }

        // --- Replay: accumulate the recorded profiles for every row, in
        // the exact per-cycle order of the full simulation, while a plain
        // bit model of the array carries the read-expectation checks.
        let mut accumulated = CycleEnergy::new();
        let mut peak = PeakTracker::new(technology.clock_period);
        let mut cells = vec![background; rows * cols];
        let mut cycles = 0u64;
        let mut read_mismatches = 0u64;
        let mut unreliable_reads = 0u64;
        let mut full_res_events = 0u64;
        let mut reduced_res_events = 0u64;

        for (element_index, (direction, ops)) in elements.iter().enumerate() {
            let element_profiles = &profiles[element_index];
            if element_profiles.is_empty() {
                continue;
            }
            for row in 0..rows {
                let profile = if row == 0 {
                    &element_profiles[0]
                } else {
                    &element_profiles[element_profiles.len() - 1]
                };
                for i in 0..profile.energies.len() {
                    accumulated.accumulate(&profile.energies[i]);
                    peak.record_total(profile.totals[i]);
                }
                cycles += profile.energies.len() as u64;
                unreliable_reads += profile.unreliable_reads;
                full_res_events += profile.full_res_events;
                reduced_res_events += profile.reduced_res_events;

                for pos in row * cols..(row + 1) * cols {
                    let index = plan.address_at(*direction, pos).value() as usize;
                    for &op in ops {
                        if let Some(value) = op.write_value() {
                            cells[index] = value;
                        } else {
                            let expected = op.expected_value().expect("reads expect a value");
                            if cells[index] != expected {
                                read_mismatches += 1;
                            }
                        }
                    }
                }
            }
        }

        let mut meter = PowerMeter::new(technology.clock_period);
        meter.record_aggregate(&accumulated, cycles);
        let breakdown = meter.breakdown();
        let report = ModeReport::from_meter(&meter, &breakdown);
        let peak_to_average = peak.peak_to_average(report.average_power);
        Ok(SessionOutcome {
            mode,
            test_name: test.name().to_string(),
            report,
            breakdown,
            // The restore cycle guarantees no floating line survives a row
            // transition, so the replayed run is corruption free — exactly
            // like the simulated one (asserted by the golden tests).
            stress: StressReport {
                full_res_events,
                reduced_res_events,
                corrupted_cells: 0,
                cycles,
            },
            faulty_swaps: 0,
            read_mismatches,
            unreliable_reads,
            peak_power: peak.peak_power(),
            peak_to_average,
        })
    }

    /// Runs `test` in both modes and computes the measured Power Reduction
    /// Ratio `PRR = 1 − P_LPT / P_F`.
    ///
    /// # Errors
    ///
    /// Propagates any [`SramError`] from the memory model.
    pub fn compare(&self, test: &MarchTest) -> Result<PrrRecord, SramError> {
        let functional = self.run(test, OperatingMode::Functional)?;
        let low_power = self.run(test, OperatingMode::LowPowerTest)?;
        let pf = functional.report.average_power.value();
        let plpt = low_power.report.average_power.value();
        let prr = if pf > 0.0 { 1.0 - plpt / pf } else { 0.0 };
        Ok(PrrRecord {
            algorithm: test.name().to_string(),
            functional: functional.report,
            low_power: low_power.report,
            prr,
        })
    }
}

impl Default for TestSession {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::library;

    fn small_session() -> TestSession {
        TestSession::new(SramConfig::small_for_tests(8, 16).unwrap())
    }

    #[test]
    fn functional_run_is_correct_and_stresses_all_columns() {
        let session = small_session();
        let outcome = session
            .run(&library::mats_plus(), OperatingMode::Functional)
            .unwrap();
        assert!(outcome.is_functionally_correct());
        assert_eq!(outcome.report.cycles, 5 * 128);
        // Every cycle stresses cols-1 = 15 cells.
        assert!((outcome.stress.full_res_per_cycle() - 15.0).abs() < 1e-9);
        assert!(outcome.report.total_energy.value() > 0.0);
    }

    #[test]
    fn low_power_run_is_correct_and_saves_energy() {
        let session = small_session();
        let functional = session
            .run(&library::march_c_minus(), OperatingMode::Functional)
            .unwrap();
        let low_power = session
            .run(&library::march_c_minus(), OperatingMode::LowPowerTest)
            .unwrap();
        assert!(
            low_power.is_functionally_correct(),
            "no mismatches, no swaps"
        );
        assert!(
            low_power.report.total_energy < functional.report.total_energy,
            "LP mode must consume less energy"
        );
        // In LP mode only ~1 full RES per cycle (the next column).
        assert!(low_power.stress.full_res_per_cycle() < 2.0);
        assert!(functional.stress.full_res_per_cycle() > 10.0);
    }

    #[test]
    fn compare_produces_a_positive_prr() {
        let session = small_session();
        let record = session.compare(&library::mats_plus()).unwrap();
        assert!(record.prr > 0.0 && record.prr < 1.0);
        assert_eq!(record.algorithm, "MATS+");
        assert!(record.functional.average_power > record.low_power.average_power);
    }

    #[test]
    fn background_independence() {
        let session = small_session();
        for background in [false, true] {
            let outcome = session
                .run_with_background(
                    &library::march_c_minus(),
                    OperatingMode::LowPowerTest,
                    background,
                )
                .unwrap();
            assert!(
                outcome.is_functionally_correct(),
                "background {background} must not break the low-power test"
            );
        }
    }

    #[test]
    fn disabling_the_row_restore_breaks_correctness() {
        // The ablation that motivates the row-transition restore: without
        // it, discharged bit lines corrupt cells of the next row and reads
        // start failing (with the all-ones background the very first
        // element's reads already see it).
        let session = small_session().with_options(LpOptions {
            row_transition_restore: false,
            ..LpOptions::default()
        });
        let outcome = session
            .run_with_background(&library::march_c_minus(), OperatingMode::LowPowerTest, true)
            .unwrap();
        assert!(
            outcome.faulty_swaps > 0,
            "expected faulty swaps without the restore cycle"
        );
    }

    #[test]
    fn peak_power_is_tracked_and_exceeds_the_average() {
        let session = small_session();
        let functional = session
            .run(&library::march_c_minus(), OperatingMode::Functional)
            .unwrap();
        let low_power = session
            .run(&library::march_c_minus(), OperatingMode::LowPowerTest)
            .unwrap();
        assert!(functional.peak_power >= functional.report.average_power);
        assert!(low_power.peak_power >= low_power.report.average_power);
        assert!(functional.peak_to_average >= 1.0);
        // The low-power mode concentrates restoration into the
        // row-transition cycle, so its peak-to-average ratio is larger.
        assert!(low_power.peak_to_average > functional.peak_to_average);
        assert_eq!(functional.unreliable_reads, 0);
        assert_eq!(low_power.unreliable_reads, 0);
    }

    #[test]
    fn precharge_fraction_is_lower_in_low_power_mode() {
        let session = small_session();
        let functional = session
            .run(&library::mats_plus(), OperatingMode::Functional)
            .unwrap();
        let low_power = session
            .run(&library::mats_plus(), OperatingMode::LowPowerTest)
            .unwrap();
        assert!(
            low_power.report.precharge_fraction < functional.report.precharge_fraction,
            "removing pre-charge activity must reduce its share of the total"
        );
    }
}
