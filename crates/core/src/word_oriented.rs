//! Word-oriented extension (the paper's future work).
//!
//! The paper studies a bit-oriented memory: one cell is accessed per
//! operation. Its conclusions mention extending the method to
//! word-oriented memories, where a `w`-bit word is read or written per
//! operation and `w` columns are active simultaneously (one per column-mux
//! group). The extension is straightforward: in the low-power test mode
//! the pre-charge must stay active for the `w` selected columns and the
//! `w` columns of the next word, so the per-cycle saving becomes
//! `(#col − 2·w) · P_A` instead of `(#col − 2) · P_A`.

use sram_model::config::ArrayOrganization;
use transient::units::Joules;

use march_test::algorithm::MarchTest;
use power_model::calibration::CalibratedParameters;

/// The analytic model extended to `word_width`-bit words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordOrientedExtension {
    parameters: CalibratedParameters,
    word_width: u32,
}

impl WordOrientedExtension {
    /// Creates the extension for words of `word_width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `word_width` is zero.
    pub fn new(parameters: CalibratedParameters, word_width: u32) -> Self {
        assert!(word_width > 0, "word width must be at least one bit");
        Self {
            parameters,
            word_width,
        }
    }

    /// The word width in bits.
    pub fn word_width(&self) -> u32 {
        self.word_width
    }

    /// Functional-mode energy per cycle. The read/write mix argument is the
    /// same as in the bit-oriented model; accessing a word activates
    /// `word_width` columns, but the unselected-column RES power dominates
    /// in exactly the same way.
    pub fn functional_energy_per_cycle(&self, test: &MarchTest) -> Joules {
        let reads = test.read_count() as f64;
        let writes = test.write_count() as f64;
        let ops = test.operation_count() as f64;
        let word = self.word_width as f64;
        // The selected-column portion of Pr/Pw scales with the word width;
        // approximate it by adding (w-1) extra column operations on top of
        // the calibrated single-column figures.
        let extra_read = self.parameters.pa.value() * (word - 1.0);
        let extra_write = self.parameters.pa.value() * (word - 1.0);
        Joules(
            (reads * (self.parameters.pr.value() + extra_read)
                + writes * (self.parameters.pw.value() + extra_write))
                / ops,
        )
    }

    /// Per-cycle savings with `2·w` columns kept pre-charged.
    pub fn savings_per_cycle(&self, test: &MarchTest, organization: &ArrayOrganization) -> Joules {
        let cols = organization.cols() as f64;
        let active = 2.0 * self.word_width as f64;
        let elements = test.element_count() as f64;
        let ops = test.operation_count() as f64;
        Joules(
            ((cols - active).max(0.0)) * self.parameters.pa.value()
                - (elements / ops) * self.parameters.pb.value(),
        )
    }

    /// The PRR of the word-oriented memory.
    pub fn power_reduction_ratio(&self, test: &MarchTest, organization: &ArrayOrganization) -> f64 {
        let pf = self.functional_energy_per_cycle(test).value();
        if pf <= 0.0 {
            return 0.0;
        }
        let saved = self.savings_per_cycle(test, organization).value().max(0.0);
        (saved / pf).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::library;
    use sram_model::config::TechnologyParams;

    fn extension(width: u32) -> WordOrientedExtension {
        WordOrientedExtension::new(
            CalibratedParameters::derive(
                &TechnologyParams::default_013um(),
                &ArrayOrganization::paper_512x512(),
            ),
            width,
        )
    }

    #[test]
    fn bit_oriented_limit_matches_the_base_model() {
        let organization = ArrayOrganization::paper_512x512();
        let test = library::march_c_minus();
        let ext = extension(1);
        let prr = ext.power_reduction_ratio(&test, &organization);
        assert!((0.43..0.56).contains(&prr), "PRR {prr}");
        assert_eq!(ext.word_width(), 1);
    }

    #[test]
    fn wider_words_reduce_the_savings() {
        let organization = ArrayOrganization::paper_512x512();
        let test = library::march_c_minus();
        let prr_1 = extension(1).power_reduction_ratio(&test, &organization);
        let prr_8 = extension(8).power_reduction_ratio(&test, &organization);
        let prr_32 = extension(32).power_reduction_ratio(&test, &organization);
        assert!(prr_1 > prr_8);
        assert!(prr_8 > prr_32);
        // Even at 32-bit words the technique still saves a substantial
        // fraction on a 512-column array.
        assert!(prr_32 > 0.3, "PRR at 32-bit words: {prr_32}");
    }

    #[test]
    fn savings_never_negative_even_for_extreme_word_widths() {
        let organization = ArrayOrganization::new(64, 64).unwrap();
        let test = library::mats_plus();
        let ext = extension(64);
        let prr = ext.power_reduction_ratio(&test, &organization);
        assert!((0.0..=1.0).contains(&prr));
    }

    #[test]
    #[should_panic(expected = "word width must be at least one bit")]
    fn zero_word_width_rejected() {
        let _ = extension(0);
    }
}
