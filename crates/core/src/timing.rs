//! Delay impact of the modified pre-charge control logic.
//!
//! The paper argues that inserting the mux/NAND element in front of each
//! pre-charge driver has a negligible effect on normal operation because
//! the transmission gate adds only a small series resistance in the `Pr_j`
//! path. This module quantifies that claim with the same first-order RC
//! reasoning used elsewhere in the workspace: the added delay is the
//! transmission-gate resistance times the pre-charge driver input
//! capacitance, compared against the clock period.

use sram_model::config::TechnologyParams;
use transient::units::{Farads, Ohms, Seconds};

/// Electrical assumptions for the added control element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlElementTiming {
    /// ON resistance of one transmission gate.
    pub transmission_gate_resistance: Ohms,
    /// Input capacitance of the pre-charge driver the element feeds.
    pub precharge_driver_input_capacitance: Farads,
    /// Additional junction/wiring capacitance introduced by the element.
    pub parasitic_capacitance: Farads,
}

impl Default for ControlElementTiming {
    fn default() -> Self {
        Self {
            transmission_gate_resistance: Ohms(2_500.0),
            precharge_driver_input_capacitance: Farads::from_femtofarads(4.0),
            parasitic_capacitance: Farads::from_femtofarads(1.0),
        }
    }
}

/// The computed delay impact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingImpact {
    /// Extra propagation delay added to the `Pr_j` path.
    pub added_delay: Seconds,
    /// The clock period it is compared against.
    pub clock_period: Seconds,
    /// `added_delay / clock_period`.
    pub cycle_fraction: f64,
}

impl TimingImpact {
    /// Evaluates the delay added by one control element under the given
    /// technology.
    pub fn evaluate(timing: &ControlElementTiming, technology: &TechnologyParams) -> Self {
        let c = Farads(
            timing.precharge_driver_input_capacitance.value()
                + timing.parasitic_capacitance.value(),
        );
        // One RC time constant of the transmission gate driving the
        // pre-charge driver input, times ln(2) ≈ 0.69 for a 50 % swing.
        let tau = timing.transmission_gate_resistance.value() * c.value();
        let added_delay = Seconds(0.69 * tau);
        let clock_period = technology.clock_period;
        Self {
            added_delay,
            clock_period,
            cycle_fraction: added_delay.value() / clock_period.value(),
        }
    }

    /// Evaluates the impact with the default element assumptions.
    pub fn with_defaults(technology: &TechnologyParams) -> Self {
        Self::evaluate(&ControlElementTiming::default(), technology)
    }

    /// The paper's claim: the impact is negligible. We call it negligible
    /// when the added delay is below one percent of the clock period.
    pub fn is_negligible(&self) -> bool {
        self.cycle_fraction < 0.01
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn added_delay_is_a_few_picoseconds() {
        let impact = TimingImpact::with_defaults(&TechnologyParams::default_013um());
        let ps = impact.added_delay.to_picoseconds();
        assert!((1.0..30.0).contains(&ps), "added delay {ps} ps");
    }

    #[test]
    fn impact_is_negligible_at_the_paper_operating_point() {
        let impact = TimingImpact::with_defaults(&TechnologyParams::default_013um());
        assert!(
            impact.is_negligible(),
            "fraction = {}",
            impact.cycle_fraction
        );
        assert!((impact.clock_period.to_nanoseconds() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn slower_gates_eventually_stop_being_negligible() {
        let timing = ControlElementTiming {
            transmission_gate_resistance: Ohms(2.0e6),
            precharge_driver_input_capacitance: Farads::from_femtofarads(40.0),
            parasitic_capacitance: Farads::from_femtofarads(10.0),
        };
        let impact = TimingImpact::evaluate(&timing, &TechnologyParams::default_013um());
        assert!(!impact.is_negligible());
    }
}
