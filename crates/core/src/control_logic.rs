//! The modified pre-charge control logic (Figure 8 of the paper).
//!
//! Each column `j` gains one small control element in front of its
//! pre-charge driver:
//!
//! * a 2:1 multiplexer built from **two transmission gates and one
//!   inverter** selects, under the `LPtest` mode signal, between the
//!   column's normal pre-charge signal `Pr_j` (functional mode) and the
//!   complemented selection signal of the *previous* column
//!   `CS̄_{j-1}` (low-power test mode, so that selecting column `j−1`
//!   pre-charges column `j`, the next one to be accessed);
//! * a **NAND gate** forces the functional behaviour for the column while
//!   it is itself selected for a read or write, regardless of `LPtest`.
//!
//! The pre-charge input is **active low** (`NPr_j = 0` ⇒ pre-charge ON).
//! The element costs ten transistors per column (2 + 2 for the
//! transmission gates, 2 for the inverter, 4 for the NAND), which is the
//! hardware overhead the paper quotes. The selection signal of the last
//! column is not fed back to the first column: the row-transition restore
//! cycle makes column 0 ready instead.

/// Transistors per control element (two transmission gates, one inverter,
/// one NAND gate), as stated in the paper.
pub const TRANSISTORS_PER_ELEMENT: u32 = 10;

/// Transistors of one 6T SRAM cell, used for overhead comparisons.
pub const TRANSISTORS_PER_CELL: u32 = 6;

/// The input signals of one column's control element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlInputs {
    /// Global low-power-test mode select.
    pub lp_test: bool,
    /// The column's normal pre-charge signal, active low (`false` = the
    /// functional controller wants the pre-charge ON).
    pub pr: bool,
    /// Selection signal of the previous column (`CS_{j-1}`), active high.
    /// `false` for column 0, whose element has no previous-column input.
    pub cs_prev: bool,
    /// The column's own selection signal (`CS_j`), active high.
    pub cs_own: bool,
}

/// One column's modified pre-charge control element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrechargeControlElement;

impl PrechargeControlElement {
    /// Creates a control element.
    pub fn new() -> Self {
        Self
    }

    /// Evaluates the element: returns the new pre-charge signal `NPr_j`
    /// (active low — `false` means the pre-charge circuit is driving).
    ///
    /// Gate-level behaviour:
    /// * when the column is selected (`cs_own`), the NAND forces the
    ///   functional path: `NPr_j = Pr_j`;
    /// * otherwise the mux picks `Pr_j` in functional mode and
    ///   `CS̄_{j-1}` in low-power test mode.
    pub fn evaluate(&self, inputs: ControlInputs) -> bool {
        if inputs.cs_own {
            inputs.pr
        } else if inputs.lp_test {
            !inputs.cs_prev
        } else {
            inputs.pr
        }
    }

    /// Whether the pre-charge circuit ends up ON for these inputs
    /// (convenience wrapper around the active-low output).
    pub fn precharge_enabled(&self, inputs: ControlInputs) -> bool {
        !self.evaluate(inputs)
    }

    /// Transistor count of the element.
    pub fn transistor_count(&self) -> u32 {
        TRANSISTORS_PER_ELEMENT
    }
}

/// The per-array collection of control elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModifiedPrechargeController {
    columns: u32,
    lp_test: bool,
}

impl ModifiedPrechargeController {
    /// Creates the controller for an array of `columns` columns, starting
    /// in functional mode.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is zero.
    pub fn new(columns: u32) -> Self {
        assert!(columns > 0, "the array must have at least one column");
        Self {
            columns,
            lp_test: false,
        }
    }

    /// Number of columns (and control elements).
    pub fn columns(&self) -> u32 {
        self.columns
    }

    /// Sets the global `LPtest` signal.
    pub fn set_lp_test(&mut self, enabled: bool) {
        self.lp_test = enabled;
    }

    /// Current state of the `LPtest` signal.
    pub fn lp_test(&self) -> bool {
        self.lp_test
    }

    /// Evaluates every column's element for the cycle in which
    /// `selected_col` is addressed. `functional_precharge_off_selected`
    /// mirrors the normal controller behaviour: the selected column's
    /// `Pr_j` is high (pre-charge off) during the operation half-cycle and
    /// the circuit restores it afterwards; unselected columns' `Pr_j` is
    /// low (pre-charge on).
    ///
    /// Returns the list of columns whose pre-charge circuit is enabled for
    /// the (second half of the) cycle.
    pub fn enabled_columns(&self, selected_col: u32) -> Vec<u32> {
        let element = PrechargeControlElement::new();
        (0..self.columns)
            .filter(|&col| {
                let inputs = ControlInputs {
                    lp_test: self.lp_test,
                    // The functional pre-charge signal is active (low) for
                    // every column; the selected column's restore phase is
                    // also an active pre-charge.
                    pr: false,
                    cs_prev: col > 0 && col - 1 == selected_col,
                    cs_own: col == selected_col,
                };
                element.precharge_enabled(inputs)
            })
            .collect()
    }

    /// Total transistor overhead of the modification for this array.
    pub fn total_transistors(&self) -> u64 {
        u64::from(self.columns) * u64::from(TRANSISTORS_PER_ELEMENT)
    }

    /// Overhead relative to the cell array transistor count.
    pub fn area_overhead_fraction(&self, rows: u32) -> f64 {
        let cells = u64::from(rows) * u64::from(self.columns) * u64::from(TRANSISTORS_PER_CELL);
        self.total_transistors() as f64 / cells as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_mode_passes_pr_through() {
        let element = PrechargeControlElement::new();
        for cs_prev in [false, true] {
            for cs_own in [false, true] {
                for pr in [false, true] {
                    let inputs = ControlInputs {
                        lp_test: false,
                        pr,
                        cs_prev,
                        cs_own,
                    };
                    assert_eq!(
                        element.evaluate(inputs),
                        pr,
                        "functional mode must be transparent to Pr"
                    );
                }
            }
        }
    }

    #[test]
    fn low_power_mode_uses_previous_column_selection() {
        let element = PrechargeControlElement::new();
        // Unselected column, LP test: pre-charge ON exactly when the
        // previous column is selected.
        let on = ControlInputs {
            lp_test: true,
            pr: true,
            cs_prev: true,
            cs_own: false,
        };
        assert!(element.precharge_enabled(on));
        let off = ControlInputs {
            lp_test: true,
            pr: true,
            cs_prev: false,
            cs_own: false,
        };
        assert!(!element.precharge_enabled(off));
    }

    #[test]
    fn selected_column_follows_functional_timing_even_in_lp_mode() {
        let element = PrechargeControlElement::new();
        // Operation half-cycle: Pr high (pre-charge off).
        let operating = ControlInputs {
            lp_test: true,
            pr: true,
            cs_prev: false,
            cs_own: true,
        };
        assert!(!element.precharge_enabled(operating));
        // Restore half-cycle: Pr low (pre-charge on).
        let restoring = ControlInputs {
            lp_test: true,
            pr: false,
            cs_prev: false,
            cs_own: true,
        };
        assert!(element.precharge_enabled(restoring));
    }

    #[test]
    fn controller_enables_exactly_selected_and_next_in_lp_mode() {
        let mut controller = ModifiedPrechargeController::new(8);
        controller.set_lp_test(true);
        assert!(controller.lp_test());
        assert_eq!(controller.enabled_columns(3), vec![3, 4]);
        // Last column: no wrap-around to column 0.
        assert_eq!(controller.enabled_columns(7), vec![7]);
        assert_eq!(controller.columns(), 8);
    }

    #[test]
    fn controller_enables_every_column_in_functional_mode() {
        let controller = ModifiedPrechargeController::new(8);
        assert_eq!(controller.enabled_columns(3).len(), 8);
    }

    #[test]
    fn hardware_overhead_matches_the_paper() {
        let element = PrechargeControlElement::new();
        assert_eq!(element.transistor_count(), 10);
        let controller = ModifiedPrechargeController::new(512);
        assert_eq!(controller.total_transistors(), 5_120);
        // 10 transistors per column vs 512 rows × 6 transistors per cell:
        // about 0.33 % of the cell array.
        let overhead = controller.area_overhead_fraction(512);
        assert!(
            overhead < 0.004,
            "overhead {overhead} should be below 0.4 %"
        );
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_column_controller_rejected() {
        let _ = ModifiedPrechargeController::new(0);
    }
}
