//! Verification harness for the low-power test mode.
//!
//! The paper's technique is only acceptable if it changes *nothing* about
//! what the test observes: no cell may be corrupted by the floating bit
//! lines (faulty swaps), the result must not depend on the data background,
//! and the March algorithms must keep their fault coverage when the address
//! order is fixed to word-line-after-word-line. This module packages those
//! three checks, plus the negative control that *demonstrates* the faulty
//! swap when the row-transition restore is disabled.

use sram_model::config::SramConfig;
use sram_model::error::SramError;

use march_test::address_order::{
    AddressOrder, ColumnMajor, PseudoRandomOrder, WordLineAfterWordLine,
};
use march_test::algorithm::MarchTest;
use march_test::dof::verify_order_independence;
use march_test::faults::static_fault_list;

use crate::engine::TestSession;
use crate::mode::OperatingMode;
use crate::scheduler::LpOptions;

/// Outcome of the functional-equivalence checks for one March test.
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationReport {
    /// Name of the March test verified.
    pub test_name: String,
    /// Whether the low-power run produced zero faulty swaps and zero read
    /// mismatches for every data background tried.
    pub functionally_equivalent: bool,
    /// Whether the run without the row-transition restore produced at
    /// least one faulty swap (the hazard the restore exists to prevent).
    pub hazard_demonstrated: bool,
    /// Whether fault coverage is identical across address orders
    /// (the degree-of-freedom argument).
    pub coverage_preserved: bool,
    /// Average number of stressed cells per cycle in low-power mode — the
    /// paper's `α`, expected between 2 and 10.
    pub alpha_stressed_cells: f64,
}

impl VerificationReport {
    /// `true` when every check passed.
    pub fn all_checks_passed(&self) -> bool {
        self.functionally_equivalent && self.hazard_demonstrated && self.coverage_preserved
    }
}

/// Runs the full verification suite for `test` on `config`.
///
/// The fault-coverage check runs on a small auxiliary array (coverage does
/// not depend on the array size, and fault simulation of a 512×512 array
/// for every fault would dominate the runtime).
///
/// # Errors
///
/// Propagates any [`SramError`] from the memory model.
pub fn verify_technique(
    config: &SramConfig,
    test: &MarchTest,
) -> Result<VerificationReport, SramError> {
    // 1. Functional equivalence across data backgrounds.
    let session = TestSession::new(*config);
    let mut functionally_equivalent = true;
    let mut alpha = 0.0;
    for background in [false, true] {
        let outcome = session.run_with_background(test, OperatingMode::LowPowerTest, background)?;
        functionally_equivalent &= outcome.is_functionally_correct();
        alpha = outcome.stress.stressed_cells_per_cycle();
    }

    // 2. Negative control: without the row-transition restore the floating
    //    bit lines corrupt cells of the next row.
    let hazardous_session = TestSession::new(*config).with_options(LpOptions {
        row_transition_restore: false,
        ..LpOptions::default()
    });
    let hazardous =
        hazardous_session.run_with_background(test, OperatingMode::LowPowerTest, true)?;
    let hazard_demonstrated = hazardous.faulty_swaps > 0;

    // 3. Degree of freedom #1: coverage identical across address orders.
    //    The comparison uses the static fault classes only — the stuck-open
    //    fault is sequence-dependent by nature and outside DOF-1's
    //    guarantee (see `march_test::faults::static_fault_list`).
    let coverage_org = sram_model::config::ArrayOrganization::new(4, 4)?;
    let faults = static_fault_list(&coverage_org);
    let random_order = PseudoRandomOrder::new(0xD0F1);
    let orders: Vec<&dyn AddressOrder> = vec![&WordLineAfterWordLine, &ColumnMajor, &random_order];
    let dof_report = verify_order_independence(test, &orders, &coverage_org, &faults);
    // "Preserved" means: every fault class the algorithm fully covers under
    // the reference order stays fully covered under every order. Accidental
    // detections of faults outside the algorithm's target classes may vary
    // with the order and do not count against the technique.
    let coverage_preserved = dof_report.guaranteed_coverage_preserved();

    Ok(VerificationReport {
        test_name: test.name().to_string(),
        functionally_equivalent,
        hazard_demonstrated,
        coverage_preserved,
        alpha_stressed_cells: alpha,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::library;

    #[test]
    fn march_c_minus_passes_the_full_verification_suite() {
        let config = SramConfig::small_for_tests(8, 32).unwrap();
        let report = verify_technique(&config, &library::march_c_minus()).unwrap();
        assert!(
            report.functionally_equivalent,
            "no swaps / mismatches expected"
        );
        assert!(
            report.hazard_demonstrated,
            "removing the restore must corrupt cells"
        );
        assert!(report.coverage_preserved, "DOF-1 must hold");
        assert!(report.all_checks_passed());
        assert_eq!(report.test_name, "March C-");
    }

    #[test]
    fn alpha_is_in_the_paper_band_for_wider_arrays() {
        // With 32 columns and the 0.13 µm discharge rate, the number of
        // cells still being stressed each cycle in low-power mode sits in
        // the paper's 2 < α < 10 band plus the single full-RES cell.
        let config = SramConfig::small_for_tests(8, 32).unwrap();
        let report = verify_technique(&config, &library::mats_plus()).unwrap();
        assert!(
            report.alpha_stressed_cells > 1.0 && report.alpha_stressed_cells < 12.0,
            "α = {}",
            report.alpha_stressed_cells
        );
    }
}
