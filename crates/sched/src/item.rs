//! The unified unit of work.
//!
//! Everything the workspace fans out — fault-sweep cohort chunks, Table 1
//! power sessions, campaign jobs — is wrapped in a [`WorkItem`] before it
//! reaches the pool. The pool itself never looks inside: it dispatches
//! every item through the one [`WorkItem::execute`] entry point with the
//! claiming worker's [`WorkerScratch`], and only reads the variant tag to
//! account for what ran where ([`crate::PoolStats`]).

use crate::scratch::WorkerScratch;

/// The run type a [`WorkItem`] belongs to, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkKind {
    /// A fault-simulation chunk: cohort dispatches, per-fault golden-path
    /// simulations, DOF sweep slices.
    FaultSweep,
    /// A Table 1 power session (cycle-accurate or replayed).
    PowerSession,
    /// One attempt of a journaled campaign job.
    CampaignJob,
}

/// One closure's worth of work, tagged with its run type.
///
/// The closure receives the executing worker's scratch and returns
/// nothing — results travel through whatever the closure captured
/// (write-once output slots, shared result maps), which is what keeps the
/// pool ignorant of result types and the fan-outs order-preserving.
pub struct Task<'a> {
    run: Box<dyn FnOnce(&mut WorkerScratch) + Send + 'a>,
}

impl<'a> Task<'a> {
    /// Wraps a closure as a task.
    pub fn new(run: impl FnOnce(&mut WorkerScratch) + Send + 'a) -> Self {
        Self { run: Box::new(run) }
    }

    /// Consumes the task, running its closure with `scratch`.
    pub fn run(self, scratch: &mut WorkerScratch) {
        (self.run)(scratch);
    }
}

impl std::fmt::Debug for Task<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Task")
    }
}

/// The unified work item: the three run types behind one dispatch.
///
/// # Examples
///
/// ```
/// use sched::{WorkItem, WorkKind, WorkerScratch};
///
/// let mut total = 0u32;
/// let item = WorkItem::fault_sweep(|_scratch: &mut WorkerScratch| total += 42);
/// assert_eq!(item.kind(), WorkKind::FaultSweep);
///
/// let mut scratch = WorkerScratch::new();
/// item.execute(&mut scratch);
/// assert_eq!(total, 42);
/// ```
#[derive(Debug)]
pub enum WorkItem<'a> {
    /// A fault-simulation chunk.
    FaultSweep(Task<'a>),
    /// A Table 1 power session.
    PowerSession(Task<'a>),
    /// A campaign job attempt.
    CampaignJob(Task<'a>),
}

impl<'a> WorkItem<'a> {
    /// Wraps `run` as an item of the given kind.
    pub fn new(kind: WorkKind, run: impl FnOnce(&mut WorkerScratch) + Send + 'a) -> Self {
        let task = Task::new(run);
        match kind {
            WorkKind::FaultSweep => Self::FaultSweep(task),
            WorkKind::PowerSession => Self::PowerSession(task),
            WorkKind::CampaignJob => Self::CampaignJob(task),
        }
    }

    /// A [`WorkKind::FaultSweep`] item.
    pub fn fault_sweep(run: impl FnOnce(&mut WorkerScratch) + Send + 'a) -> Self {
        Self::new(WorkKind::FaultSweep, run)
    }

    /// A [`WorkKind::PowerSession`] item.
    pub fn power_session(run: impl FnOnce(&mut WorkerScratch) + Send + 'a) -> Self {
        Self::new(WorkKind::PowerSession, run)
    }

    /// A [`WorkKind::CampaignJob`] item.
    pub fn campaign_job(run: impl FnOnce(&mut WorkerScratch) + Send + 'a) -> Self {
        Self::new(WorkKind::CampaignJob, run)
    }

    /// The item's run type.
    pub fn kind(&self) -> WorkKind {
        match self {
            Self::FaultSweep(_) => WorkKind::FaultSweep,
            Self::PowerSession(_) => WorkKind::PowerSession,
            Self::CampaignJob(_) => WorkKind::CampaignJob,
        }
    }

    /// Runs the item on the claiming worker — the one dispatch every run
    /// type goes through.
    pub fn execute(self, scratch: &mut WorkerScratch) {
        match self {
            Self::FaultSweep(task) | Self::PowerSession(task) | Self::CampaignJob(task) => {
                task.run(scratch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_constructors() {
        for kind in [
            WorkKind::FaultSweep,
            WorkKind::PowerSession,
            WorkKind::CampaignJob,
        ] {
            let item = WorkItem::new(kind, |_| {});
            assert_eq!(item.kind(), kind);
        }
        assert_eq!(WorkItem::fault_sweep(|_| {}).kind(), WorkKind::FaultSweep);
        assert_eq!(
            WorkItem::power_session(|_| {}).kind(),
            WorkKind::PowerSession
        );
        assert_eq!(WorkItem::campaign_job(|_| {}).kind(), WorkKind::CampaignJob);
    }

    #[test]
    fn execute_hands_the_worker_scratch_to_the_closure() {
        let mut scratch = WorkerScratch::new();
        scratch.get_or_insert_with(|| 5u64);
        let item = WorkItem::campaign_job(|scratch: &mut WorkerScratch| {
            *scratch.get_or_insert_with(|| 0u64) += 1;
        });
        item.execute(&mut scratch);
        assert_eq!(scratch.get_mut::<u64>(), Some(&mut 6));
    }
}
