//! One worker pool for every run type in the workspace.
//!
//! The fault-simulation engine, the Table 1 power reproduction and the
//! crash-safe campaign runner used to fan work out through three separate
//! ad-hoc mechanisms. This crate replaces them with a single batch
//! scheduler built from three pieces:
//!
//! * [`WorkItem`] — the unit of work: one enum unifying the three run
//!   types (fault sweeps, power sessions, campaign jobs) behind one
//!   [`WorkItem::execute`] dispatch;
//! * [`WorkerScratch`] — reusable per-worker storage, keyed by type, so
//!   hot paths (lane memories, schedule vectors, bookkeeping sets) stop
//!   allocating per dispatch;
//! * [`run_pool`] / [`map_chunks`] — the pool itself: workers pull items
//!   off a shared cursor (batch fan-outs) or an open-ended producer
//!   (campaign queues), each with a scratch that lives as long as the
//!   worker.
//!
//! The crate is dependency-free and sits at the bottom of the workspace
//! graph: `march-test` builds its order-preserving sweep primitives on
//! [`map_chunks`], `lp-precharge` fans Table 1 power sessions through the
//! same pool, and `campaign` drives its journaled retry queue through
//! [`run_pool`]. See `docs/ARCHITECTURE.md` at the repository root for
//! the full data-flow picture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod item;
mod pool;
mod scratch;

pub use item::{Task, WorkItem, WorkKind};
pub use pool::{map_chunks, run_pool, Poll, PoolStats};
pub use scratch::WorkerScratch;
