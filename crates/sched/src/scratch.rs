//! Per-worker scratch storage.
//!
//! Every pool worker owns one [`WorkerScratch`] for its whole lifetime.
//! Work items of any kind pull their typed scratch state out of it with
//! [`WorkerScratch::get_or_insert_with`]: the first item of a given type
//! on a worker allocates the scratch, every later item on the same worker
//! reuses it. This is what makes the cohort hot path allocation-flat —
//! the lane memory backing stores, schedule vectors and bookkeeping
//! buffers live here between dispatches instead of being reallocated per
//! dispatch.
//!
//! The map is keyed by [`TypeId`], so independent subsystems (the fault
//! sweep's lane scratch, a power session's waveform buffers) can share
//! one worker without coordinating key names.

use std::any::{Any, TypeId};
use std::collections::HashMap;

/// Reusable per-worker storage: one slot per scratch *type*.
///
/// # Examples
///
/// ```
/// use sched::WorkerScratch;
///
/// struct SweepBuffers {
///     schedule: Vec<u64>,
/// }
///
/// let mut scratch = WorkerScratch::new();
/// // First use allocates…
/// let buffers = scratch.get_or_insert_with(|| SweepBuffers { schedule: Vec::new() });
/// buffers.schedule.extend([1, 2, 3]);
/// // …later dispatches on the same worker reuse the same allocation.
/// let buffers = scratch.get_or_insert_with(|| SweepBuffers { schedule: Vec::new() });
/// assert_eq!(buffers.schedule, [1, 2, 3]);
/// ```
#[derive(Default)]
pub struct WorkerScratch {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl WorkerScratch {
    /// Creates an empty scratch map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the worker's scratch value of type `T`, creating it with
    /// `init` on first use. Callers are responsible for resetting any
    /// state they cannot tolerate from a previous dispatch — the point is
    /// that the *allocations* (vector capacities, hash tables) survive.
    pub fn get_or_insert_with<T, F>(&mut self, init: F) -> &mut T
    where
        T: Any + Send,
        F: FnOnce() -> T,
    {
        self.slots
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(init()))
            .downcast_mut::<T>()
            .expect("slot is keyed by its own TypeId")
    }

    /// Returns the scratch value of type `T` if one was created.
    pub fn get_mut<T: Any + Send>(&mut self) -> Option<&mut T> {
        self.slots
            .get_mut(&TypeId::of::<T>())
            .and_then(|slot| slot.downcast_mut::<T>())
    }

    /// Number of distinct scratch types this worker holds.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no scratch value has been created yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl std::fmt::Debug for WorkerScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerScratch")
            .field("types", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_types_get_distinct_slots() {
        let mut scratch = WorkerScratch::new();
        assert!(scratch.is_empty());
        *scratch.get_or_insert_with(|| 0u64) += 7;
        scratch.get_or_insert_with(String::new).push('x');
        assert_eq!(scratch.len(), 2);
        assert_eq!(*scratch.get_or_insert_with(|| 0u64), 7);
        assert_eq!(scratch.get_or_insert_with(String::new), "x");
        assert_eq!(scratch.get_mut::<u64>(), Some(&mut 7));
        assert_eq!(scratch.get_mut::<u32>(), None);
    }

    #[test]
    fn init_runs_only_on_first_use() {
        let mut scratch = WorkerScratch::new();
        let mut calls = 0;
        for _ in 0..3 {
            scratch.get_or_insert_with(|| {
                calls += 1;
                vec![0u8; 16]
            });
        }
        assert_eq!(calls, 1);
    }
}
