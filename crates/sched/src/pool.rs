//! The worker pool: shared-cursor claiming over one set of workers.
//!
//! The pool is a *pull* design. Callers hand [`run_pool`] a producer
//! closure; each worker repeatedly polls it for the next [`WorkItem`] and
//! executes whatever it gets with its own long-lived
//! [`WorkerScratch`](crate::WorkerScratch). That one loop serves every
//! fan-out shape in the workspace:
//!
//! * **batch fan-outs** (fault sweeps, Table 1 power sessions) expose an
//!   atomic cursor over a precomputed chunk list — whichever worker frees
//!   up first claims (steals) the next chunk, so uneven chunks balance
//!   themselves; [`map_chunks`] packages this shape, including the
//!   order-preserving write-once output slots;
//! * **open-ended producers** (the campaign runner's retry queue) return
//!   [`Poll::Pending`] while items are in flight elsewhere and may keep
//!   producing items that earlier items re-enqueued.
//!
//! Workers never coordinate beyond the producer closure, and results
//! travel through what the items captured, so the pool stays free of
//! result types, `unsafe`, and locks of its own.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;
use std::time::Duration;

use crate::item::{WorkItem, WorkKind};
use crate::scratch::WorkerScratch;

/// What a producer hands a polling worker.
#[derive(Debug)]
pub enum Poll<'a> {
    /// Run this item now.
    Item(WorkItem<'a>),
    /// Nothing to run *yet* — items in flight on other workers may still
    /// produce more. The worker backs off briefly and polls again.
    Pending,
    /// The producer is exhausted; the polling worker exits.
    Done,
}

/// What ran through one [`run_pool`] call, by run type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Workers the pool ran with.
    pub workers: usize,
    /// [`WorkKind::FaultSweep`] items executed.
    pub fault_sweeps: u64,
    /// [`WorkKind::PowerSession`] items executed.
    pub power_sessions: u64,
    /// [`WorkKind::CampaignJob`] items executed.
    pub campaign_jobs: u64,
}

impl PoolStats {
    /// Total items executed, across all run types.
    pub fn total(&self) -> u64 {
        self.fault_sweeps + self.power_sessions + self.campaign_jobs
    }
}

/// How long an idle worker sleeps between [`Poll::Pending`] polls.
const IDLE_BACKOFF: Duration = Duration::from_millis(1);

struct KindCounters {
    fault_sweeps: AtomicU64,
    power_sessions: AtomicU64,
    campaign_jobs: AtomicU64,
}

impl KindCounters {
    fn new() -> Self {
        Self {
            fault_sweeps: AtomicU64::new(0),
            power_sessions: AtomicU64::new(0),
            campaign_jobs: AtomicU64::new(0),
        }
    }

    fn record(&self, kind: WorkKind) {
        let counter = match kind {
            WorkKind::FaultSweep => &self.fault_sweeps,
            WorkKind::PowerSession => &self.power_sessions,
            WorkKind::CampaignJob => &self.campaign_jobs,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

fn drain<'a>(worker: usize, next: &(impl Fn(usize) -> Poll<'a> + Sync), counters: &KindCounters) {
    let mut scratch = WorkerScratch::new();
    loop {
        match next(worker) {
            Poll::Item(item) => {
                counters.record(item.kind());
                item.execute(&mut scratch);
            }
            Poll::Pending => thread::sleep(IDLE_BACKOFF),
            Poll::Done => break,
        }
    }
}

/// Runs up to `threads` workers over a producer until every worker sees
/// [`Poll::Done`].
///
/// Each worker owns one [`WorkerScratch`](crate::WorkerScratch) for the
/// whole run and passes it to every item it executes. `next` is called
/// with the polling worker's index (`0..workers`); it must be safe to
/// call concurrently from all workers — an atomic cursor or an internal
/// lock is the producer's business.
///
/// With one thread no worker threads are spawned: the current thread
/// drains the producer directly, so single-threaded runs stay
/// deterministic and stack traces stay flat.
///
/// # Panics
///
/// Panics if a worker panics (the scope propagates it). Producers that
/// must survive item panics catch them inside the item's closure, as the
/// campaign runner does.
pub fn run_pool<'a, F>(threads: usize, next: F) -> PoolStats
where
    F: Fn(usize) -> Poll<'a> + Sync,
{
    let workers = threads.max(1);
    let counters = KindCounters::new();
    if workers == 1 {
        drain(0, &next, &counters);
    } else {
        thread::scope(|scope| {
            for worker in 0..workers {
                let next = &next;
                let counters = &counters;
                scope.spawn(move || drain(worker, next, counters));
            }
        });
    }
    PoolStats {
        workers,
        fault_sweeps: counters.fault_sweeps.into_inner(),
        power_sessions: counters.power_sessions.into_inner(),
        campaign_jobs: counters.campaign_jobs.into_inner(),
    }
}

/// Fans contiguous chunks of `items` across the pool and concatenates the
/// per-chunk outputs **in input order**.
///
/// The items are split into up to `chunk_count` contiguous chunks; an
/// atomic cursor hands chunks to whichever worker frees up first, and
/// each chunk's output is published into its own write-once slot
/// ([`OnceLock`]), so the concatenation order is the chunk order whatever
/// the claiming order was. Passing more chunks than workers is the
/// load-balancing lever: workers that draw cheap chunks claim more.
///
/// With one item, one worker, or an empty input the call degenerates to
/// `map_chunk(items, scratch)` on the current thread with a fresh
/// scratch.
///
/// # Examples
///
/// ```
/// use sched::{map_chunks, WorkKind};
///
/// let items: Vec<u32> = (0..100).collect();
/// let doubled = map_chunks(WorkKind::FaultSweep, &items, 4, 16, |chunk, _scratch| {
///     chunk.iter().map(|&x| u64::from(x) * 2).collect()
/// });
/// assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
/// ```
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
pub fn map_chunks<T, R, F>(
    kind: WorkKind,
    items: &[T],
    threads: usize,
    chunk_count: usize,
    map_chunk: F,
) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&[T], &mut WorkerScratch) -> Vec<R> + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers <= 1 {
        return map_chunk(items, &mut WorkerScratch::new());
    }
    let chunk_count = chunk_count.clamp(1, items.len());
    let chunk_size = items.len().div_ceil(chunk_count);
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    let cursor = AtomicUsize::new(0);
    let slots: Vec<OnceLock<Vec<R>>> = chunks.iter().map(|_| OnceLock::new()).collect();
    let map_chunk = &map_chunk;
    let slots_ref = &slots;
    run_pool(workers, |_| {
        let claim = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&chunk) = chunks.get(claim) else {
            return Poll::Done;
        };
        Poll::Item(WorkItem::new(kind, move |scratch| {
            let out = map_chunk(chunk, scratch);
            slots_ref[claim]
                .set(out)
                .unwrap_or_else(|_| unreachable!("chunk claimed twice"));
        }))
    });
    let mut results = Vec::with_capacity(items.len());
    for slot in slots {
        results.extend(slot.into_inner().expect("claimed chunks publish results"));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn map_chunks_preserves_input_order_for_any_worker_count() {
        let items: Vec<u32> = (0..517).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let out = map_chunks(
                WorkKind::FaultSweep,
                &items,
                threads,
                threads * 8,
                |c, _| c.iter().map(|&x| u64::from(x) * 3).collect(),
            );
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_chunks_handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> =
            map_chunks(WorkKind::FaultSweep, &[] as &[u8], 8, 64, |c, _| c.to_vec());
        assert!(empty.is_empty());
        let one = map_chunks(WorkKind::FaultSweep, &[7u8], 8, 64, |c, _| c.to_vec());
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn map_chunks_concatenates_variable_length_outputs_in_input_order() {
        let items: Vec<u32> = (0..211).map(|i| i % 13).collect();
        let expected: Vec<u32> = items
            .iter()
            .flat_map(|&x| std::iter::repeat_n(x, (x % 3) as usize))
            .collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = map_chunks(
                WorkKind::FaultSweep,
                &items,
                threads,
                threads * 8,
                |c, _| {
                    c.iter()
                        .flat_map(|&x| std::iter::repeat_n(x, (x % 3) as usize))
                        .collect()
                },
            );
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn scratch_survives_across_items_on_one_worker() {
        // Single worker: every chunk sees the same scratch, so a counter
        // stored in it observes every dispatch.
        let items: Vec<u32> = (0..40).collect();
        let out = map_chunks(WorkKind::FaultSweep, &items, 1, 8, |chunk, scratch| {
            let seen = scratch.get_or_insert_with(|| 0u32);
            *seen += chunk.len() as u32;
            vec![*seen]
        });
        // One worker degenerates to a single whole-slice chunk.
        assert_eq!(out, vec![40]);
    }

    #[test]
    fn run_pool_counts_items_by_kind() {
        let produced = AtomicUsize::new(0);
        let stats = run_pool(2, |_| {
            let index = produced.fetch_add(1, Ordering::Relaxed);
            match index {
                0..=4 => Poll::Item(WorkItem::fault_sweep(|_| {})),
                5..=6 => Poll::Item(WorkItem::power_session(|_| {})),
                7 => Poll::Item(WorkItem::campaign_job(|_| {})),
                _ => Poll::Done,
            }
        });
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.fault_sweeps, 5);
        assert_eq!(stats.power_sessions, 2);
        assert_eq!(stats.campaign_jobs, 1);
        assert_eq!(stats.total(), 8);
    }

    #[test]
    fn pending_producers_can_reenqueue_from_running_items() {
        // A queue whose first item enqueues a second one while other
        // workers are already polling: Pending must keep them alive until
        // the re-enqueued item lands — the campaign retry shape.
        let queue = Mutex::new(vec![0u32]);
        let in_flight = AtomicUsize::new(0);
        let ran = Mutex::new(Vec::new());
        let (queue_ref, in_flight_ref, ran_ref) = (&queue, &in_flight, &ran);
        run_pool(3, |_| {
            let item = {
                let mut queue = queue.lock().unwrap();
                let item = queue.pop();
                if item.is_some() {
                    in_flight.fetch_add(1, Ordering::SeqCst);
                }
                item
            };
            match item {
                Some(job) => Poll::Item(WorkItem::campaign_job(move |_| {
                    if job < 3 {
                        queue_ref.lock().unwrap().push(job + 1);
                    }
                    ran_ref.lock().unwrap().push(job);
                    in_flight_ref.fetch_sub(1, Ordering::SeqCst);
                })),
                None if in_flight.load(Ordering::SeqCst) > 0 => Poll::Pending,
                None => Poll::Done,
            }
        });
        let mut ran = ran.into_inner().unwrap();
        ran.sort_unstable();
        assert_eq!(ran, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_threaded_pool_runs_on_the_current_thread() {
        let caller = thread::current().id();
        let produced = AtomicUsize::new(0);
        run_pool(1, |_| {
            if produced.fetch_add(1, Ordering::Relaxed) == 0 {
                Poll::Item(WorkItem::fault_sweep(move |_| {
                    assert_eq!(thread::current().id(), caller);
                }))
            } else {
                Poll::Done
            }
        });
    }
}
