//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the real `criterion` crate cannot be fetched. This shim
//! implements the (small) subset of its API that the `bench` crate uses —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros and
//! `black_box` — with a simple median-of-samples timer, so `cargo bench`
//! runs and prints comparable numbers without any external dependency.
//!
//! It is intentionally *not* a statistics engine: no outlier analysis, no
//! HTML reports. Each benchmark runs `sample_size` timed samples (after one
//! warm-up) and reports the median and minimum sample time.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; forwards to [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of a parameterised benchmark, e.g. `coverage/March SS`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter display value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(name: &str, group: Option<&str>, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    samples.sort();
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    if samples.is_empty() {
        println!("{full:<48} (no samples)");
    } else {
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!(
            "{full:<48} median {:>12}   min {:>12}   ({} samples)",
            format_duration(median),
            format_duration(min),
            samples.len()
        );
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim ignores the target time.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), Some(&self.name), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &id.to_string(),
            Some(&self.name),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility with `criterion_group!` configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, self.sample_size, &mut f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_secs(1));
        let mut ran = 0u32;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(ran, 4);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        let id = BenchmarkId::new("coverage", "March SS");
        assert_eq!(id.to_string(), "coverage/March SS");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
