//! Cycle-level execution trace.
//!
//! A [`Trace`] optionally records, for every executed cycle, the address,
//! operation, pre-charge count and selected bit-line voltages. The `repro`
//! binary uses it to regenerate the waveform-style figures of the paper
//! (Figures 2, 6 and 7) from an actual simulated run rather than from the
//! closed-form models.

use crate::address::Address;
use crate::operation::MemOperation;
use transient::units::{Joules, Volts};

/// One recorded cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleRecord {
    /// Cycle index since the trace was started.
    pub cycle: u64,
    /// Address accessed.
    pub address: Address,
    /// Operation performed.
    pub op: MemOperation,
    /// Number of columns whose pre-charge circuit was enabled this cycle.
    pub precharged_columns: u32,
    /// Whether this cycle used the all-columns restore (row transition).
    pub restore_all: bool,
    /// `BL` voltage of the observed column at the end of the cycle.
    pub observed_bl: Volts,
    /// `BLB` voltage of the observed column at the end of the cycle.
    pub observed_blb: Volts,
    /// Total energy of the cycle.
    pub energy: Joules,
}

/// A sequence of recorded cycles plus the column being observed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    observed_column: Option<u32>,
    records: Vec<CycleRecord>,
}

impl Trace {
    /// Creates a trace that observes no particular column (bit-line fields
    /// record the selected column of each cycle).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace that records the bit-line voltages of a fixed column
    /// regardless of which column each cycle selects.
    pub fn observing_column(column: u32) -> Self {
        Self {
            observed_column: Some(column),
            records: Vec::new(),
        }
    }

    /// The column this trace observes, if fixed.
    pub fn observed_column(&self) -> Option<u32> {
        self.observed_column
    }

    /// Appends a record.
    pub fn push(&mut self, record: CycleRecord) {
        self.records.push(record);
    }

    /// The recorded cycles.
    pub fn records(&self) -> &[CycleRecord] {
        &self.records
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The `BL` voltage sequence of the observed column, one point per
    /// cycle.
    pub fn bl_series(&self) -> Vec<Volts> {
        self.records.iter().map(|r| r.observed_bl).collect()
    }

    /// The `BLB` voltage sequence of the observed column.
    pub fn blb_series(&self) -> Vec<Volts> {
        self.records.iter().map(|r| r.observed_blb).collect()
    }

    /// The per-cycle total energy sequence.
    pub fn energy_series(&self) -> Vec<Joules> {
        self.records.iter().map(|r| r.energy).collect()
    }

    /// Average number of pre-charged columns per recorded cycle.
    pub fn mean_precharged_columns(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.precharged_columns as f64)
            .sum::<f64>()
            / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycle: u64, bl: f64, precharged: u32) -> CycleRecord {
        CycleRecord {
            cycle,
            address: Address::new(cycle as u32),
            op: MemOperation::Read,
            precharged_columns: precharged,
            restore_all: false,
            observed_bl: Volts(bl),
            observed_blb: Volts(1.6),
            energy: Joules::from_picojoules(1.0),
        }
    }

    #[test]
    fn records_and_series() {
        let mut trace = Trace::observing_column(3);
        assert_eq!(trace.observed_column(), Some(3));
        assert!(trace.is_empty());
        trace.push(record(0, 1.6, 512));
        trace.push(record(1, 1.4, 2));
        trace.push(record(2, 1.2, 2));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.bl_series(), vec![Volts(1.6), Volts(1.4), Volts(1.2)]);
        assert_eq!(trace.blb_series().len(), 3);
        assert_eq!(trace.energy_series().len(), 3);
        assert!((trace.mean_precharged_columns() - (512.0 + 2.0 + 2.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_statistics() {
        let trace = Trace::new();
        assert_eq!(trace.observed_column(), None);
        assert_eq!(trace.mean_precharged_columns(), 0.0);
    }
}
