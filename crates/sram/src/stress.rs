//! Read-equivalent-stress (RES) and corruption reporting.
//!
//! The paper quantifies two side effects of its technique besides power:
//! the number of cells still receiving a (full or reduced) RES per cycle —
//! the `α` parameter, between 2 and 10 in their Spice runs — and the
//! possibility of faulty swaps at row transitions. [`StressReport`]
//! aggregates both from the per-cell counters of the array so experiments
//! can assert on them.

/// Aggregated stress and corruption statistics over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StressReport {
    /// Total number of full read-equivalent stresses applied to any cell.
    pub full_res_events: u64,
    /// Total number of reduced read-equivalent stresses.
    pub reduced_res_events: u64,
    /// Number of cells currently flagged as corrupted by a faulty swap.
    pub corrupted_cells: u64,
    /// Number of cycles observed.
    pub cycles: u64,
}

impl StressReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Average number of cells stressed (full + reduced RES) per cycle —
    /// directly comparable to the paper's `α` in low-power test mode and to
    /// `#cols − 1` in functional mode.
    pub fn stressed_cells_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.full_res_events + self.reduced_res_events) as f64 / self.cycles as f64
    }

    /// Average number of *full* RES events per cycle.
    pub fn full_res_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.full_res_events as f64 / self.cycles as f64
    }

    /// Returns `true` if no cell has been corrupted.
    pub fn is_corruption_free(&self) -> bool {
        self.corrupted_cells == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cycle_rates() {
        let report = StressReport {
            full_res_events: 100,
            reduced_res_events: 50,
            corrupted_cells: 0,
            cycles: 50,
        };
        assert!((report.stressed_cells_per_cycle() - 3.0).abs() < 1e-12);
        assert!((report.full_res_per_cycle() - 2.0).abs() < 1e-12);
        assert!(report.is_corruption_free());
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let report = StressReport::new();
        assert_eq!(report.stressed_cells_per_cycle(), 0.0);
        assert_eq!(report.full_res_per_cycle(), 0.0);
        assert!(report.is_corruption_free());
    }

    #[test]
    fn corruption_detection() {
        let report = StressReport {
            corrupted_cells: 3,
            ..StressReport::new()
        };
        assert!(!report.is_corruption_free());
    }
}
