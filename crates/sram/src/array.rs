//! The cell array: cells, bit-line pairs and pre-charge circuits.
//!
//! [`SramArray`] owns the mutable electrical state of the memory — one
//! [`SramCell`] per bit, one [`BitLinePair`] and one [`PrechargeCircuit`]
//! per column — and provides direct, bounds-checked access to it. The
//! cycle-by-cycle behaviour (what happens to this state when an operation
//! executes) lives in [`crate::controller`]; keeping the two apart makes it
//! possible to inspect or perturb the array directly in tests and fault
//! experiments.

use crate::address::{Address, ColIndex, RowIndex};
use crate::bitline::BitLinePair;
use crate::cell::SramCell;
use crate::config::{ArrayOrganization, SramConfig};
use crate::error::SramError;
use crate::precharge::PrechargeCircuit;
use crate::stress::StressReport;

/// Which columns have their pre-charge circuit enabled during a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrechargeMask {
    enabled: Vec<bool>,
}

impl PrechargeMask {
    /// A mask with every column enabled (functional mode).
    pub fn all(cols: u32) -> Self {
        Self {
            enabled: vec![true; cols as usize],
        }
    }

    /// A mask with no column enabled.
    pub fn none(cols: u32) -> Self {
        Self {
            enabled: vec![false; cols as usize],
        }
    }

    /// A mask with only the listed columns enabled. Columns outside the
    /// array are ignored.
    pub fn only(cols: u32, columns: &[u32]) -> Self {
        let mut enabled = vec![false; cols as usize];
        for &c in columns {
            if (c as usize) < enabled.len() {
                enabled[c as usize] = true;
            }
        }
        Self { enabled }
    }

    /// Number of columns covered by the mask.
    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// Returns `true` if the mask covers no column.
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }

    /// Whether column `col` is enabled.
    pub fn is_enabled(&self, col: u32) -> bool {
        self.enabled.get(col as usize).copied().unwrap_or(false)
    }

    /// Number of enabled columns.
    pub fn enabled_count(&self) -> u32 {
        self.enabled.iter().filter(|&&e| e).count() as u32
    }

    /// Iterates over the enabled column indices.
    pub fn enabled_columns(&self) -> impl Iterator<Item = u32> + '_ {
        self.enabled
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| if e { Some(i as u32) } else { None })
    }
}

/// The complete electrical state of the memory array.
#[derive(Debug, Clone, PartialEq)]
pub struct SramArray {
    config: SramConfig,
    cells: Vec<SramCell>,
    bitlines: Vec<BitLinePair>,
    precharge: Vec<PrechargeCircuit>,
}

impl SramArray {
    /// Creates an array with every cell initialised to `0` and every bit
    /// line pre-charged to `V_DD`.
    pub fn new(config: SramConfig) -> Self {
        let capacity = config.organization().capacity() as usize;
        let cols = config.organization().cols() as usize;
        let vdd = config.technology().vdd;
        Self {
            config,
            cells: vec![SramCell::default(); capacity],
            bitlines: vec![BitLinePair::precharged(vdd); cols],
            precharge: vec![PrechargeCircuit::new(); cols],
        }
    }

    /// The configuration the array was built with.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// The array organization.
    pub fn organization(&self) -> &ArrayOrganization {
        self.config.organization()
    }

    fn cell_index(&self, row: RowIndex, col: ColIndex) -> Result<usize, SramError> {
        let org = self.organization();
        if row.0 >= org.rows() {
            return Err(SramError::IndexOutOfRange {
                what: "row",
                index: row.0,
                limit: org.rows(),
            });
        }
        if col.0 >= org.cols() {
            return Err(SramError::IndexOutOfRange {
                what: "column",
                index: col.0,
                limit: org.cols(),
            });
        }
        Ok((row.0 * org.cols() + col.0) as usize)
    }

    /// Shared access to the cell at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::IndexOutOfRange`] for coordinates outside the
    /// array.
    pub fn cell(&self, row: RowIndex, col: ColIndex) -> Result<&SramCell, SramError> {
        let idx = self.cell_index(row, col)?;
        Ok(&self.cells[idx])
    }

    /// Mutable access to the cell at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::IndexOutOfRange`] for coordinates outside the
    /// array.
    pub fn cell_mut(&mut self, row: RowIndex, col: ColIndex) -> Result<&mut SramCell, SramError> {
        let idx = self.cell_index(row, col)?;
        Ok(&mut self.cells[idx])
    }

    /// Shared access to a cell by its linear address.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::AddressOutOfRange`] for an address outside the
    /// array.
    pub fn cell_at(&self, address: Address) -> Result<&SramCell, SramError> {
        if !address.is_valid(self.organization()) {
            return Err(SramError::AddressOutOfRange {
                address,
                capacity: self.organization().capacity(),
            });
        }
        Ok(&self.cells[address.value() as usize])
    }

    /// Mutable access to a cell by its linear address.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::AddressOutOfRange`] for an address outside the
    /// array.
    pub fn cell_at_mut(&mut self, address: Address) -> Result<&mut SramCell, SramError> {
        if !address.is_valid(self.organization()) {
            return Err(SramError::AddressOutOfRange {
                address,
                capacity: self.organization().capacity(),
            });
        }
        Ok(&mut self.cells[address.value() as usize])
    }

    /// Shared access to the bit-line pair of column `col`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::IndexOutOfRange`] for a column outside the
    /// array.
    pub fn bitline(&self, col: ColIndex) -> Result<&BitLinePair, SramError> {
        self.check_col(col)?;
        Ok(&self.bitlines[col.0 as usize])
    }

    /// Mutable access to the bit-line pair of column `col`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::IndexOutOfRange`] for a column outside the
    /// array.
    pub fn bitline_mut(&mut self, col: ColIndex) -> Result<&mut BitLinePair, SramError> {
        self.check_col(col)?;
        Ok(&mut self.bitlines[col.0 as usize])
    }

    /// Shared access to the pre-charge circuit of column `col`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::IndexOutOfRange`] for a column outside the
    /// array.
    pub fn precharge(&self, col: ColIndex) -> Result<&PrechargeCircuit, SramError> {
        self.check_col(col)?;
        Ok(&self.precharge[col.0 as usize])
    }

    /// Mutable access to the pre-charge circuit of column `col`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::IndexOutOfRange`] for a column outside the
    /// array.
    pub fn precharge_mut(&mut self, col: ColIndex) -> Result<&mut PrechargeCircuit, SramError> {
        self.check_col(col)?;
        Ok(&mut self.precharge[col.0 as usize])
    }

    fn check_col(&self, col: ColIndex) -> Result<(), SramError> {
        if col.0 >= self.organization().cols() {
            return Err(SramError::IndexOutOfRange {
                what: "column",
                index: col.0,
                limit: self.organization().cols(),
            });
        }
        Ok(())
    }

    /// Writes `value` into every cell without modelling the write cycles
    /// (used to establish a data background before an experiment).
    pub fn fill(&mut self, value: bool) {
        for cell in &mut self.cells {
            cell.write(value);
        }
    }

    /// Writes a checkerboard background: cell `(row, col)` holds
    /// `(row + col) % 2 == 0 ? base : !base`.
    pub fn fill_checkerboard(&mut self, base: bool) {
        let cols = self.organization().cols();
        for (idx, cell) in self.cells.iter_mut().enumerate() {
            let row = idx as u32 / cols;
            let col = idx as u32 % cols;
            let v = if (row + col).is_multiple_of(2) {
                base
            } else {
                !base
            };
            cell.write(v);
        }
    }

    /// Restores every bit-line pair to `V_DD` without accounting energy
    /// (used to initialise experiments).
    pub fn restore_all_bitlines(&mut self) {
        let tech = *self.config.technology();
        for pair in &mut self.bitlines {
            let _ = pair.restore(&tech);
        }
    }

    /// Number of cells currently flagged as corrupted by a faulty swap.
    pub fn corrupted_cell_count(&self) -> u64 {
        self.cells.iter().filter(|c| c.is_corrupted()).count() as u64
    }

    /// Aggregates per-cell stress counters into a [`StressReport`]
    /// (`cycles` is left at zero because the array does not track time; the
    /// controller fills it in).
    pub fn stress_report(&self) -> StressReport {
        let mut report = StressReport::new();
        for cell in &self.cells {
            report.full_res_events += cell.full_res_count();
            report.reduced_res_events += cell.reduced_res_count();
            if cell.is_corrupted() {
                report.corrupted_cells += 1;
            }
        }
        report
    }

    /// Clears the statistics of every cell while preserving stored data.
    pub fn reset_cell_statistics(&mut self) {
        for cell in &mut self.cells {
            cell.reset_statistics();
        }
    }

    /// Iterates over all cells together with their physical coordinates.
    pub fn iter_cells(&self) -> impl Iterator<Item = (RowIndex, ColIndex, &SramCell)> {
        let cols = self.organization().cols();
        self.cells.iter().enumerate().map(move |(idx, cell)| {
            (
                RowIndex(idx as u32 / cols),
                ColIndex(idx as u32 % cols),
                cell,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transient::units::Volts;

    fn small() -> SramArray {
        SramArray::new(SramConfig::small_for_tests(4, 8).unwrap())
    }

    #[test]
    fn new_array_is_zeroed_and_precharged() {
        let array = small();
        assert_eq!(array.organization().capacity(), 32);
        for (_, _, cell) in array.iter_cells() {
            assert!(!cell.value());
        }
        for c in 0..8 {
            let pair = array.bitline(ColIndex(c)).unwrap();
            assert_eq!(pair.bl(), Volts(1.6));
            assert!(array.precharge(ColIndex(c)).unwrap().is_enabled());
        }
    }

    #[test]
    fn cell_access_by_coordinates_and_address() {
        let mut array = small();
        array
            .cell_mut(RowIndex(2), ColIndex(3))
            .unwrap()
            .write(true);
        let addr = Address::from_row_col(RowIndex(2), ColIndex(3), array.organization());
        assert!(array.cell_at(addr).unwrap().value());
        array.cell_at_mut(addr).unwrap().write(false);
        assert!(!array.cell(RowIndex(2), ColIndex(3)).unwrap().value());
    }

    #[test]
    fn out_of_range_access_is_rejected() {
        let mut array = small();
        assert!(array.cell(RowIndex(4), ColIndex(0)).is_err());
        assert!(array.cell(RowIndex(0), ColIndex(8)).is_err());
        assert!(array.cell_at(Address::new(32)).is_err());
        assert!(array.bitline(ColIndex(8)).is_err());
        assert!(array.precharge_mut(ColIndex(9)).is_err());
    }

    #[test]
    fn fill_patterns() {
        let mut array = small();
        array.fill(true);
        assert!(array.iter_cells().all(|(_, _, c)| c.value()));
        array.fill_checkerboard(false);
        assert!(!array.cell(RowIndex(0), ColIndex(0)).unwrap().value());
        assert!(array.cell(RowIndex(0), ColIndex(1)).unwrap().value());
        assert!(array.cell(RowIndex(1), ColIndex(0)).unwrap().value());
        assert!(!array.cell(RowIndex(1), ColIndex(1)).unwrap().value());
    }

    #[test]
    fn stress_report_aggregates_cells() {
        let mut array = small();
        array
            .cell_mut(RowIndex(0), ColIndex(0))
            .unwrap()
            .apply_full_res();
        array
            .cell_mut(RowIndex(0), ColIndex(1))
            .unwrap()
            .apply_reduced_res();
        array
            .cell_mut(RowIndex(1), ColIndex(1))
            .unwrap()
            .corrupt_to(true);
        let report = array.stress_report();
        assert_eq!(report.full_res_events, 1);
        assert_eq!(report.reduced_res_events, 1);
        assert_eq!(report.corrupted_cells, 1);
        assert_eq!(array.corrupted_cell_count(), 1);
        array.reset_cell_statistics();
        assert_eq!(array.stress_report().full_res_events, 0);
        assert_eq!(array.corrupted_cell_count(), 0);
    }

    #[test]
    fn precharge_mask_constructors() {
        let all = PrechargeMask::all(8);
        assert_eq!(all.enabled_count(), 8);
        assert!(all.is_enabled(7));
        assert!(!all.is_empty());

        let none = PrechargeMask::none(8);
        assert_eq!(none.enabled_count(), 0);

        let some = PrechargeMask::only(8, &[1, 3, 99]);
        assert_eq!(some.enabled_count(), 2);
        assert!(some.is_enabled(1));
        assert!(some.is_enabled(3));
        assert!(!some.is_enabled(0));
        let cols: Vec<u32> = some.enabled_columns().collect();
        assert_eq!(cols, vec![1, 3]);
        assert_eq!(some.len(), 8);
    }

    #[test]
    fn restore_all_bitlines_resets_voltages() {
        let mut array = small();
        let tech = *array.config().technology();
        array
            .bitline_mut(ColIndex(0))
            .unwrap()
            .drive_write(true, &tech);
        assert_eq!(array.bitline(ColIndex(0)).unwrap().blb(), Volts::ZERO);
        array.restore_all_bitlines();
        assert_eq!(array.bitline(ColIndex(0)).unwrap().blb(), Volts(1.6));
    }
}
