//! Array organization, technology parameters and the `SramConfig` builder.
//!
//! The defaults reproduce the operating point of the paper's experimental
//! section: a 512×512 bit-oriented array in a 0.13 µm technology, 1.6 V
//! supply and a 3 ns clock cycle. The electrical parameters are first-order
//! values calibrated so that the model reproduces the paper's observable
//! behaviour:
//!
//! * a floating bit line is discharged by a selected cell in ≈ 9 clock
//!   cycles (Figure 6 of the paper),
//! * the bit-line capacitance dominates the cell node capacitance by two to
//!   three orders of magnitude (the faulty-swap condition of Figure 7), and
//! * the power removed by disabling the pre-charge of the unselected
//!   columns amounts to roughly half of the total test power (Table 1),
//!   with the remaining half lumped into the peripheral energy of a
//!   read/write operation (decoders, control, clock tree and I/O, which the
//!   paper's Spice testbench includes but does not itemize).

use crate::error::SramError;
use transient::units::{Amps, Farads, Joules, Ohms, Seconds, Volts};

/// Largest supported array side, chosen so `rows × cols` always fits `u32`.
pub const MAX_DIMENSION: u32 = 65_536;

/// Number of rows and columns of the cell array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayOrganization {
    rows: u32,
    cols: u32,
}

impl ArrayOrganization {
    /// Creates an organization with `rows` word lines and `cols` bit-line
    /// pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidOrganization`] if either dimension is
    /// zero or larger than [`MAX_DIMENSION`].
    pub fn new(rows: u32, cols: u32) -> Result<Self, SramError> {
        if rows == 0 || cols == 0 {
            return Err(SramError::InvalidOrganization {
                rows,
                cols,
                reason: "rows and columns must be non-zero",
            });
        }
        if rows > MAX_DIMENSION || cols > MAX_DIMENSION {
            return Err(SramError::InvalidOrganization {
                rows,
                cols,
                reason: "dimension exceeds the supported maximum",
            });
        }
        Ok(Self { rows, cols })
    }

    /// The 512×512 organization used in the paper's experiments.
    pub fn paper_512x512() -> Self {
        Self {
            rows: 512,
            cols: 512,
        }
    }

    /// Number of rows (word lines).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (bit-line pairs).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Total number of cells.
    pub fn capacity(&self) -> u32 {
        self.rows * self.cols
    }
}

impl Default for ArrayOrganization {
    /// Defaults to the paper's 512×512 array.
    fn default() -> Self {
        Self::paper_512x512()
    }
}

/// First-order electrical and timing parameters of the memory.
///
/// All defaults are documented on [`TechnologyParams::default_013um`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyParams {
    /// Supply voltage.
    pub vdd: Volts,
    /// Clock period (one memory operation per clock cycle).
    pub clock_period: Seconds,
    /// Drawn feature size in micrometres (informational).
    pub feature_size_um: f64,
    /// Total capacitance of one bit line.
    pub bitline_capacitance: Farads,
    /// Capacitance of one cell storage node.
    pub cell_node_capacitance: Farads,
    /// Total capacitance of one word line (all gates it drives).
    pub wordline_capacitance: Farads,
    /// ON resistance of the pre-charge pull-up devices.
    pub precharge_resistance: Ohms,
    /// Cell read/discharge current through the access transistor while the
    /// word line is high.
    pub cell_read_current: Amps,
    /// Fraction of the clock cycle during which the word line is high (the
    /// operation phase of Figure 2 of the paper).
    pub wordline_duty: f64,
    /// Differential bit-line swing developed during a read before the sense
    /// amplifier fires.
    pub read_bitline_swing: Volts,
    /// Energy of one sense-amplifier evaluation.
    pub sense_amp_energy: Joules,
    /// Energy dissipated by the write driver pulling one bit line to ground.
    pub write_driver_energy: Joules,
    /// Lumped peripheral energy of a read operation (row/column decoders,
    /// control, clock tree, I/O) excluding the array contributions that the
    /// model tracks explicitly.
    pub periphery_read_energy: Joules,
    /// Lumped peripheral energy of a write operation.
    pub periphery_write_energy: Joules,
    /// Logic threshold used to interpret analog node voltages as bits.
    pub logic_threshold: Volts,
    /// Capacitance of the `LPtest` mode-select line (the paper notes it
    /// matches a word line because it spans the same columns).
    pub lptest_line_capacitance: Farads,
    /// Switched capacitance of one modified pre-charge control element
    /// (mux + NAND, ten transistors) — three orders of magnitude below a bit
    /// line per the paper.
    pub control_element_capacitance: Farads,
}

impl TechnologyParams {
    /// The calibrated 0.13 µm / 1.6 V / 3 ns operating point of the paper.
    ///
    /// Key derived figures with these values:
    /// * floating bit-line discharge rate ≈ 0.176 V per cycle → a full
    ///   1.6 V swing in ≈ 9 cycles (Figure 6);
    /// * bit-line to cell-node capacitance ratio = 128 (faulty swap);
    /// * RES replenishment energy per unselected column per cycle ≈ 72 fJ,
    ///   so the 510 unselected columns of the 512-column array account for
    ///   ≈ 37 pJ per cycle — roughly half of the total read/write energy,
    ///   matching the ≈ 50 % PRR of Table 1.
    pub fn default_013um() -> Self {
        Self {
            vdd: Volts(1.6),
            clock_period: Seconds::from_nanoseconds(3.0),
            feature_size_um: 0.13,
            bitline_capacitance: Farads::from_femtofarads(256.0),
            cell_node_capacitance: Farads::from_femtofarads(2.0),
            wordline_capacitance: Farads::from_femtofarads(307.0),
            precharge_resistance: Ohms(2_000.0),
            cell_read_current: Amps(30e-6),
            wordline_duty: 0.5,
            read_bitline_swing: Volts(0.15),
            sense_amp_energy: Joules::from_femtojoules(250.0),
            write_driver_energy: Joules::from_femtojoules(655.0),
            periphery_read_energy: Joules::from_picojoules(28.0),
            periphery_write_energy: Joules::from_picojoules(41.0),
            logic_threshold: Volts(0.8),
            lptest_line_capacitance: Farads::from_femtofarads(307.0),
            control_element_capacitance: Farads::from_femtofarads(2.0),
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidParameter`] naming the first parameter
    /// that is non-physical (non-positive capacitance, duty outside (0, 1],
    /// threshold outside the supply range, …).
    pub fn validate(&self) -> Result<(), SramError> {
        fn positive(name: &'static str, v: f64) -> Result<(), SramError> {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(SramError::InvalidParameter {
                    name,
                    reason: "must be a positive finite number",
                })
            }
        }
        positive("vdd", self.vdd.value())?;
        positive("clock_period", self.clock_period.value())?;
        positive("feature_size_um", self.feature_size_um)?;
        positive("bitline_capacitance", self.bitline_capacitance.value())?;
        positive("cell_node_capacitance", self.cell_node_capacitance.value())?;
        positive("wordline_capacitance", self.wordline_capacitance.value())?;
        positive("precharge_resistance", self.precharge_resistance.value())?;
        positive("cell_read_current", self.cell_read_current.value())?;
        positive("read_bitline_swing", self.read_bitline_swing.value())?;
        if !(self.wordline_duty > 0.0 && self.wordline_duty <= 1.0) {
            return Err(SramError::InvalidParameter {
                name: "wordline_duty",
                reason: "must lie in (0, 1]",
            });
        }
        if self.read_bitline_swing >= self.vdd {
            return Err(SramError::InvalidParameter {
                name: "read_bitline_swing",
                reason: "must be below the supply voltage",
            });
        }
        if !(self.logic_threshold.value() > 0.0 && self.logic_threshold < self.vdd) {
            return Err(SramError::InvalidParameter {
                name: "logic_threshold",
                reason: "must lie strictly between 0 and vdd",
            });
        }
        if self.sense_amp_energy.value() < 0.0
            || self.write_driver_energy.value() < 0.0
            || self.periphery_read_energy.value() < 0.0
            || self.periphery_write_energy.value() < 0.0
        {
            return Err(SramError::InvalidParameter {
                name: "energy",
                reason: "energy parameters must be non-negative",
            });
        }
        positive(
            "lptest_line_capacitance",
            self.lptest_line_capacitance.value(),
        )?;
        positive(
            "control_element_capacitance",
            self.control_element_capacitance.value(),
        )?;
        Ok(())
    }

    /// Bit-line voltage drop per clock cycle while a cell discharges a
    /// floating bit line (word line high for [`Self::wordline_duty`] of the
    /// cycle).
    pub fn floating_discharge_per_cycle(&self) -> Volts {
        let dq = self.cell_read_current.value() * self.clock_period.value() * self.wordline_duty;
        Volts(dq / self.bitline_capacitance.value())
    }

    /// Number of clock cycles for a floating bit line to discharge from
    /// `vdd` to (near) ground — the paper's "nearly nine clock cycles".
    pub fn floating_discharge_cycles(&self) -> f64 {
        self.vdd.value() / self.floating_discharge_per_cycle().value()
    }

    /// Energy drawn from the supply by one pre-charge circuit replenishing
    /// the RES droop of one unselected column during one cycle (the paper's
    /// `P_A` expressed as energy per cycle).
    pub fn res_replenish_energy(&self) -> Joules {
        let dt = self.clock_period.value() * self.wordline_duty;
        Joules(self.vdd.value() * self.cell_read_current.value() * dt)
    }

    /// Energy to restore one fully-discharged bit line to `vdd`
    /// (`C_bl · V_DD²`), the per-line cost of the row-transition restore.
    pub fn full_bitline_restore_energy(&self) -> Joules {
        Joules(self.bitline_capacitance.value() * self.vdd.value() * self.vdd.value())
    }

    /// Energy to restore the read swing on both bit lines after a read.
    pub fn read_restore_energy(&self) -> Joules {
        Joules(
            self.bitline_capacitance.value() * self.vdd.value() * self.read_bitline_swing.value(),
        )
    }

    /// Energy of one full word-line charge/discharge.
    pub fn wordline_energy(&self) -> Joules {
        Joules(self.wordline_capacitance.value() * self.vdd.value() * self.vdd.value())
    }

    /// Energy of charging the `LPtest` line once (paid once per row
    /// transition in low-power test mode).
    pub fn lptest_line_energy(&self) -> Joules {
        Joules(self.lptest_line_capacitance.value() * self.vdd.value() * self.vdd.value())
    }

    /// Energy of one modified pre-charge control element switching.
    pub fn control_element_energy(&self) -> Joules {
        Joules(self.control_element_capacitance.value() * self.vdd.value() * self.vdd.value())
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self::default_013um()
    }
}

/// Full configuration of a simulated SRAM: organization + technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramConfig {
    organization: ArrayOrganization,
    technology: TechnologyParams,
}

impl SramConfig {
    /// Starts building a configuration.
    pub fn builder() -> SramConfigBuilder {
        SramConfigBuilder::default()
    }

    /// The paper's experimental configuration: 512×512, 0.13 µm defaults.
    pub fn paper_default() -> Self {
        Self {
            organization: ArrayOrganization::paper_512x512(),
            technology: TechnologyParams::default_013um(),
        }
    }

    /// A small configuration convenient for unit tests and examples.
    pub fn small_for_tests(rows: u32, cols: u32) -> Result<Self, SramError> {
        Ok(Self {
            organization: ArrayOrganization::new(rows, cols)?,
            technology: TechnologyParams::default_013um(),
        })
    }

    /// The array organization.
    pub fn organization(&self) -> &ArrayOrganization {
        &self.organization
    }

    /// The technology parameters.
    pub fn technology(&self) -> &TechnologyParams {
        &self.technology
    }
}

impl Default for SramConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Builder for [`SramConfig`].
#[derive(Debug, Clone, Default)]
pub struct SramConfigBuilder {
    organization: Option<ArrayOrganization>,
    technology: Option<TechnologyParams>,
}

impl SramConfigBuilder {
    /// Sets the array organization (defaults to 512×512).
    pub fn organization(mut self, organization: ArrayOrganization) -> Self {
        self.organization = Some(organization);
        self
    }

    /// Sets the technology parameters (defaults to the calibrated 0.13 µm
    /// point).
    pub fn technology(mut self, technology: TechnologyParams) -> Self {
        self.technology = Some(technology);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if the technology parameters fail
    /// [`TechnologyParams::validate`].
    pub fn build(self) -> Result<SramConfig, SramError> {
        let organization = self.organization.unwrap_or_default();
        let technology = self.technology.unwrap_or_default();
        technology.validate()?;
        Ok(SramConfig {
            organization,
            technology,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organization_validation() {
        assert!(ArrayOrganization::new(0, 4).is_err());
        assert!(ArrayOrganization::new(4, 0).is_err());
        assert!(ArrayOrganization::new(MAX_DIMENSION + 1, 4).is_err());
        let org = ArrayOrganization::new(512, 512).unwrap();
        assert_eq!(org.capacity(), 262_144);
        assert_eq!(
            ArrayOrganization::default(),
            ArrayOrganization::paper_512x512()
        );
    }

    #[test]
    fn default_technology_is_valid_and_matches_paper_operating_point() {
        let t = TechnologyParams::default_013um();
        t.validate().unwrap();
        assert_eq!(t.vdd, Volts(1.6));
        assert!((t.clock_period.to_nanoseconds() - 3.0).abs() < 1e-12);
        assert!((t.feature_size_um - 0.13).abs() < 1e-12);
    }

    #[test]
    fn floating_discharge_takes_about_nine_cycles() {
        let t = TechnologyParams::default_013um();
        let cycles = t.floating_discharge_cycles();
        assert!(
            (8.0..10.5).contains(&cycles),
            "expected ~9 cycles, got {cycles}"
        );
    }

    #[test]
    fn res_energy_is_tens_of_femtojoules() {
        let t = TechnologyParams::default_013um();
        let e = t.res_replenish_energy().to_femtojoules();
        assert!((60.0..90.0).contains(&e), "got {e} fJ");
    }

    #[test]
    fn bitline_dominates_cell_node() {
        let t = TechnologyParams::default_013um();
        let ratio = t.bitline_capacitance.value() / t.cell_node_capacitance.value();
        assert!(
            ratio > 100.0,
            "need at least two orders of magnitude, got {ratio}"
        );
    }

    #[test]
    fn derived_energies_positive_and_ordered() {
        let t = TechnologyParams::default_013um();
        assert!(t.read_restore_energy() < t.full_bitline_restore_energy());
        assert!(t.control_element_energy() < t.res_replenish_energy());
        assert!(t.wordline_energy().value() > 0.0);
        assert!(t.lptest_line_energy().value() > 0.0);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let config = SramConfig::builder().build().unwrap();
        assert_eq!(config.organization().rows(), 512);
        let small = SramConfig::builder()
            .organization(ArrayOrganization::new(4, 8).unwrap())
            .build()
            .unwrap();
        assert_eq!(small.organization().capacity(), 32);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut t = TechnologyParams::default_013um();
        t.wordline_duty = 0.0;
        assert!(t.validate().is_err());

        let mut t = TechnologyParams::default_013um();
        t.vdd = Volts(0.0);
        assert!(t.validate().is_err());

        let mut t = TechnologyParams::default_013um();
        t.logic_threshold = Volts(2.0);
        assert!(t.validate().is_err());

        let mut t = TechnologyParams::default_013um();
        t.read_bitline_swing = Volts(1.7);
        assert!(t.validate().is_err());

        let mut t = TechnologyParams::default_013um();
        t.bitline_capacitance = Farads(0.0);
        assert!(SramConfig::builder().technology(t).build().is_err());
    }

    #[test]
    fn small_for_tests_helper() {
        let config = SramConfig::small_for_tests(4, 4).unwrap();
        assert_eq!(config.organization().capacity(), 16);
        assert!(SramConfig::small_for_tests(0, 4).is_err());
    }
}
