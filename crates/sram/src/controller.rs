//! The memory controller: cycle-by-cycle execution engine.
//!
//! [`MemoryController`] wraps an [`SramArray`] together with the periphery
//! (decoders, sense amplifier, write driver) and executes one
//! [`CycleCommand`] per call to [`MemoryController::execute`]. Each call
//! models one 3 ns clock cycle of the paper's Figure 2 timing:
//!
//! 1. the address is decoded and the word line of the target row rises;
//! 2. the selected column performs its read or write while every other
//!    column of the row either undergoes a read-equivalent stress (its
//!    pre-charge circuit is enabled) or discharges its floating bit line
//!    (pre-charge disabled — the paper's low-power test mode);
//! 3. in the second half of the cycle the enabled pre-charge circuits
//!    restore their bit lines to `V_DD`.
//!
//! The controller detects faulty swaps when a word line rises onto columns
//! whose floating bit lines were discharged by the previous row (Figure 7
//! of the paper) and reports them in the [`CycleOutcome`], so the
//! verification experiments can demonstrate both the hazard and the fix.
//!
//! # Performance notes
//!
//! The controller is used to simulate full March tests on 512×512 arrays
//! (tens of millions of cycles), so the per-cycle work must not scale with
//! the number of columns. Two bookkeeping sets make the common cycles
//! cheap: `discharging` holds the columns whose floating bit lines are
//! still moving, and `not_precharged` holds every column whose bit lines
//! are away from `V_DD`. Both are [`ColumnSet`] bit masks and are walked
//! through one reused scratch buffer, so steady-state cycles perform no
//! heap allocation at all — the run-level energy feed is purely
//! incremental. Full-array sweeps only happen when a word line rises on a
//! new row or when an all-columns restore executes — once per row,
//! exactly like the hardware. As a consequence the per-column
//! [`crate::precharge::PrechargeCircuit`] activity counters are only
//! updated for cycles with an explicit column mask (the low-power mode);
//! the all-columns functional path accounts pre-charge activity in the
//! aggregate cycle energies instead.

use transient::charge_share::node_flips;
use transient::units::Volts;

use crate::address::{Address, ColIndex, RowIndex};
use crate::array::SramArray;
use crate::colset::ColumnSet;
use crate::config::{ArrayOrganization, SramConfig, TechnologyParams};
use crate::decoder::AddressDecoder;
use crate::energy::CycleEnergy;
use crate::error::SramError;
use crate::operation::{CycleCommand, MemOperation, PrechargePolicy};
use crate::senseamp::SenseAmplifier;
use crate::stress::StressReport;
use crate::trace::{CycleRecord, Trace};
use crate::writedriver::WriteDriver;

/// Result of executing one clock cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleOutcome {
    /// Value returned by a read operation (`None` for writes).
    pub read_value: Option<bool>,
    /// Whether the sense amplifier considered the read reliable. Always
    /// `true` for writes.
    pub read_reliable: bool,
    /// Energy breakdown of the cycle.
    pub energy: CycleEnergy,
    /// Number of cells corrupted by faulty swaps during this cycle.
    pub faulty_swaps: u32,
    /// Number of columns whose pre-charge circuit was enabled.
    pub precharged_columns: u32,
    /// Whether this cycle selected a different row than the previous one.
    pub row_changed: bool,
}

/// The SRAM execution engine.
#[derive(Debug, Clone)]
pub struct MemoryController {
    array: SramArray,
    decoder: AddressDecoder,
    sense_amp: SenseAmplifier,
    write_driver: WriteDriver,
    cycle: u64,
    active_row: Option<RowIndex>,
    /// Columns whose bit lines are currently away from `V_DD`.
    not_precharged: ColumnSet,
    /// Columns whose floating bit lines are still being discharged by the
    /// active row's cell.
    discharging: ColumnSet,
    /// Columns enabled by the previous cycle's explicit mask (storage
    /// reused across cycles).
    prev_explicit_mask: Vec<u32>,
    /// Reused snapshot buffer for walking the column sets while the array
    /// is being mutated.
    scratch_cols: Vec<u32>,
    /// Whether the previous cycle used the all-columns policy.
    prev_policy_all: bool,
    stress: StressReport,
    total_faulty_swaps: u64,
    accumulated: CycleEnergy,
    trace: Option<Trace>,
}

impl MemoryController {
    /// Creates a controller around a freshly initialised array.
    pub fn new(config: SramConfig) -> Self {
        let array = SramArray::new(config);
        Self::with_array(array)
    }

    /// Creates a controller around an existing array (e.g. one pre-loaded
    /// with a data background or with injected faults).
    pub fn with_array(array: SramArray) -> Self {
        let decoder = AddressDecoder::new(array.organization());
        let cols = array.organization().cols();
        Self {
            array,
            decoder,
            sense_amp: SenseAmplifier::new(),
            write_driver: WriteDriver::new(),
            cycle: 0,
            active_row: None,
            not_precharged: ColumnSet::new(cols),
            discharging: ColumnSet::new(cols),
            prev_explicit_mask: Vec::new(),
            scratch_cols: Vec::new(),
            prev_policy_all: true,
            stress: StressReport::new(),
            total_faulty_swaps: 0,
            accumulated: CycleEnergy::new(),
            trace: None,
        }
    }

    /// The array organization.
    pub fn organization(&self) -> &ArrayOrganization {
        self.array.organization()
    }

    /// The technology parameters.
    pub fn technology(&self) -> &TechnologyParams {
        self.array.config().technology()
    }

    /// Shared access to the underlying array.
    pub fn array(&self) -> &SramArray {
        &self.array
    }

    /// Mutable access to the underlying array (for fault injection or
    /// background loading between cycles).
    pub fn array_mut(&mut self) -> &mut SramArray {
        &mut self.array
    }

    /// Number of cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Aggregate energy of all executed cycles.
    pub fn accumulated_energy(&self) -> &CycleEnergy {
        &self.accumulated
    }

    /// Aggregate stress/corruption statistics (cycle count included).
    pub fn stress_report(&self) -> StressReport {
        let mut report = self.stress;
        report.corrupted_cells = self.array.corrupted_cell_count();
        report.cycles = self.cycle;
        report
    }

    /// Total number of faulty swaps observed so far.
    pub fn total_faulty_swaps(&self) -> u64 {
        self.total_faulty_swaps
    }

    /// Starts recording a cycle trace (replacing any previous one).
    pub fn start_trace(&mut self, trace: Trace) {
        self.trace = Some(trace);
    }

    /// Stops recording and returns the trace, if any.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Resets cycle, stress and energy statistics while keeping the stored
    /// data and analog state.
    pub fn reset_statistics(&mut self) {
        self.cycle = 0;
        self.stress = StressReport::new();
        self.total_faulty_swaps = 0;
        self.accumulated = CycleEnergy::new();
        self.array.reset_cell_statistics();
    }

    /// Convenience accessor: the stored value at `address`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::AddressOutOfRange`] for an address outside the
    /// array.
    pub fn peek(&self, address: Address) -> Result<bool, SramError> {
        Ok(self.array.cell_at(address)?.value())
    }

    /// Convenience accessor: overwrite the stored value at `address`
    /// without modelling a write cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::AddressOutOfRange`] for an address outside the
    /// array.
    pub fn poke(&mut self, address: Address, value: bool) -> Result<(), SramError> {
        self.array.cell_at_mut(address)?.write(value);
        Ok(())
    }

    /// Executes one clock cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::AddressOutOfRange`] if the command addresses a
    /// cell outside the array.
    pub fn execute(&mut self, command: CycleCommand) -> Result<CycleOutcome, SramError> {
        let organization = *self.array.organization();
        let technology = *self.array.config().technology();
        let cols = organization.cols();

        let mut energy = CycleEnergy::new();
        let (decoded, decode_energy) =
            self.decoder
                .decode(command.address, &organization, &technology)?;
        energy.decoders = decode_energy;

        let row = decoded.row;
        let selected_col = decoded.col;
        let row_changed = self.active_row != Some(row);

        // The explicit column list of the low-power policy, `None` when every
        // column is enabled. Lists are tiny (two entries in the paper's
        // scheme), so membership tests are linear scans rather than a
        // per-cycle mask allocation.
        let explicit: Option<&[u32]> = match &command.precharge {
            PrechargePolicy::AllColumns => None,
            PrechargePolicy::Columns(list) => Some(list.as_slice()),
        };
        let enabled = |col: u32| explicit.is_none_or(|list| list.contains(&col));
        let enabled_count = explicit.map_or(cols, |list| {
            list.iter().filter(|&&c| c < cols).count() as u32
        });
        let policy_all = explicit.is_none();

        // --- Word line rises on (possibly) a new row -------------------
        let mut faulty_swaps = 0u32;
        if row_changed {
            faulty_swaps = self.handle_row_change(row, &technology);
            self.active_row = Some(row);
        }

        // --- Track which columns start floating this cycle -------------
        if !policy_all {
            if self.prev_policy_all {
                // Transition from an all-columns cycle: every column not in
                // the new mask starts floating from VDD.
                for col in 0..cols {
                    if !enabled(col) {
                        self.begin_floating(col, row);
                    }
                }
            } else {
                // Columns enabled last cycle but not this one start
                // floating from VDD (they were restored last cycle). The
                // previous mask is swapped into the scratch buffer so both
                // vectors keep their storage.
                self.scratch_cols.clear();
                std::mem::swap(&mut self.scratch_cols, &mut self.prev_explicit_mask);
                for i in 0..self.scratch_cols.len() {
                    let col = self.scratch_cols[i];
                    if !enabled(col) {
                        self.begin_floating(col, row);
                    }
                }
            }
        }

        // --- Stress and pre-charge activity on unselected columns ------
        if policy_all {
            // Functional behaviour: every unselected column of the active
            // row undergoes a full RES replenished by its pre-charge
            // circuit.
            let stressed = cols.saturating_sub(1) as u64;
            self.stress.full_res_events += stressed;
            energy.precharge_res = transient::units::Joules(
                technology.res_replenish_energy().value() * stressed as f64,
            );
            // Discharging columns are taken over by their pre-charge
            // circuits this cycle.
            self.discharging.clear();
        } else {
            // Low-power mode: enabled, unselected columns (the "next"
            // column) see a full RES and their bit lines are restored.
            for &col in explicit.unwrap_or(&[]) {
                if col == selected_col.0 || col >= cols {
                    continue;
                }
                self.stress.full_res_events += 1;
                energy.precharge_res += technology.res_replenish_energy();
                let pair = self.array.bitline_mut(ColIndex(col))?;
                energy.precharge_res += pair.restore(&technology);
                self.not_precharged.remove(col);
                self.discharging.remove(col);
                self.array
                    .precharge_mut(ColIndex(col))?
                    .set_enabled_for_cycle(true);
            }
            if let Ok(pc) = self.array.precharge_mut(selected_col) {
                pc.set_enabled_for_cycle(enabled(selected_col.0));
            }

            // Floating columns still above ground keep discharging and keep
            // (weakly) stressing their cells.
            self.scratch_cols.clear();
            self.discharging.collect_into(&mut self.scratch_cols);
            for i in 0..self.scratch_cols.len() {
                let col = self.scratch_cols[i];
                if col == selected_col.0 || enabled(col) {
                    continue;
                }
                let cell_value = self.array.cell(row, ColIndex(col))?.value();
                let pair = self.array.bitline_mut(ColIndex(col))?;
                let side = pair.float_discharge_by_cell(cell_value, &technology);
                self.stress.reduced_res_events += 1;
                if pair.side(side) <= Volts::ZERO {
                    self.discharging.remove(col);
                }
            }
        }

        // --- The selected column performs its operation ----------------
        let mut read_value = None;
        let mut read_reliable = true;
        {
            let cell_value = self.array.cell(row, selected_col)?.value();
            match command.op {
                MemOperation::Read => {
                    let pair = self.array.bitline_mut(selected_col)?;
                    // Pre-charge-based sensing requires both bit lines at
                    // V_DD *before* the word line rises — the paper's "the
                    // bit line restoration is needed for each following
                    // operation". A read on a column whose lines were left
                    // floating is flagged as unreliable.
                    let was_precharged =
                        pair.is_fully_precharged(technology.vdd, technology.read_bitline_swing);
                    pair.develop_read_swing(cell_value, &technology);
                    let outcome = self.sense_amp.sense(pair, &technology);
                    energy.sense_amp = outcome.energy;
                    // The data returned is the stored bit (the sense
                    // amplifier resolves the cell-driven differential); the
                    // reliability flag records marginal conditions.
                    read_value = Some(self.array.cell_mut(row, selected_col)?.read());
                    read_reliable = outcome.reliable && was_precharged;
                    energy.periphery = technology.periphery_read_energy;
                }
                MemOperation::Write(value) => {
                    let pair = self.array.bitline_mut(selected_col)?;
                    energy.write_driver = self.write_driver.drive(pair, value, &technology);
                    self.array.cell_mut(row, selected_col)?.write(value);
                    energy.periphery = technology.periphery_write_energy;
                }
            }
        }

        // --- Second half of the cycle: restorations --------------------
        let selected_enabled = enabled(selected_col.0);
        if selected_enabled {
            let pair = self.array.bitline_mut(selected_col)?;
            energy.precharge_selected = pair.restore(&technology);
            self.not_precharged.remove(selected_col.0);
            self.discharging.remove(selected_col.0);
        } else {
            // A scheduler that forgets to pre-charge the selected column
            // leaves its bit lines driven; track that.
            self.begin_floating(selected_col.0, row);
        }

        if policy_all {
            // Restore every column that had drifted away from VDD (the
            // row-transition restore of the low-power mode, or simply a
            // no-op in steady functional mode).
            self.scratch_cols.clear();
            self.not_precharged.collect_into(&mut self.scratch_cols);
            for i in 0..self.scratch_cols.len() {
                let col = self.scratch_cols[i];
                if col == selected_col.0 {
                    continue;
                }
                let pair = self.array.bitline_mut(ColIndex(col))?;
                energy.precharge_row_transition += pair.restore(&technology);
            }
            self.not_precharged.clear();
            self.discharging.clear();
        }

        // --- Fixed per-cycle contributions ------------------------------
        energy.wordline = technology.wordline_energy();
        if command.lp_test_mode {
            energy.control_logic = technology.control_element_energy();
            if policy_all {
                // The LPtest line toggles once per row-transition restore.
                energy.lptest_driver = technology.lptest_line_energy();
            }
        }

        // --- Bookkeeping -------------------------------------------------
        self.prev_policy_all = policy_all;
        self.prev_explicit_mask.clear();
        if let Some(list) = explicit {
            self.prev_explicit_mask
                .extend(list.iter().copied().filter(|&c| c < cols));
        }
        self.stress.cycles += 1;
        self.total_faulty_swaps += u64::from(faulty_swaps);
        self.accumulated.accumulate(&energy);
        self.cycle += 1;

        if let Some(trace) = &mut self.trace {
            let observe = trace
                .observed_column()
                .map(ColIndex)
                .unwrap_or(selected_col);
            let pair = self.array.bitline(observe)?;
            trace.push(CycleRecord {
                cycle: self.cycle - 1,
                address: command.address,
                op: command.op,
                precharged_columns: enabled_count,
                restore_all: policy_all && command.lp_test_mode,
                observed_bl: pair.bl(),
                observed_blb: pair.blb(),
                energy: energy.total(),
            });
        }

        Ok(CycleOutcome {
            read_value,
            read_reliable,
            energy,
            faulty_swaps,
            precharged_columns: enabled_count,
            row_changed,
        })
    }

    /// Marks a column as floating from its current (restored) level and
    /// registers it for per-cycle discharge tracking.
    fn begin_floating(&mut self, col: u32, row: RowIndex) {
        self.not_precharged.insert(col);
        // Only track the column as actively discharging if the cell of the
        // active row still has headroom to pull its zero-side line down.
        if let (Ok(cell), Ok(pair)) = (
            self.array.cell(row, ColIndex(col)),
            self.array.bitline(ColIndex(col)),
        ) {
            let side = if cell.value() { pair.blb() } else { pair.bl() };
            if side > Volts::ZERO {
                self.discharging.insert(col);
            }
        }
        if let Ok(pc) = self.array.precharge_mut(ColIndex(col)) {
            pc.set_enabled_for_cycle(false);
        }
    }

    /// Handles the word line rising on a new row: discharged floating bit
    /// lines overwrite conflicting cells (the faulty swap of Figure 7).
    /// Returns the number of cells corrupted.
    fn handle_row_change(&mut self, new_row: RowIndex, technology: &TechnologyParams) -> u32 {
        let mut swaps = 0u32;
        let threshold = technology.logic_threshold;
        let cell_cap = technology.cell_node_capacitance;
        let bl_cap = technology.bitline_capacitance;
        let vdd = technology.vdd;

        self.scratch_cols.clear();
        self.not_precharged.collect_into(&mut self.scratch_cols);
        for i in 0..self.scratch_cols.len() {
            let col = self.scratch_cols[i];
            let Ok(cell) = self.array.cell(new_row, ColIndex(col)) else {
                continue;
            };
            let value = cell.value();
            let Ok(pair) = self.array.bitline(ColIndex(col)) else {
                continue;
            };
            // The high storage node of the cell contacts BL when the cell
            // stores 1 and BLB when it stores 0.
            let contacted = if value { pair.bl() } else { pair.blb() };
            if node_flips(cell_cap, vdd, bl_cap, contacted, threshold) {
                if let Ok(cell) = self.array.cell_mut(new_row, ColIndex(col)) {
                    cell.corrupt_to(!value);
                    swaps += 1;
                }
            }
            // The (possibly flipped) cell of the new row now drives the
            // floating pair; refresh the discharge tracking.
            let new_value = self
                .array
                .cell(new_row, ColIndex(col))
                .map(|c| c.value())
                .unwrap_or(value);
            if let Ok(pair) = self.array.bitline(ColIndex(col)) {
                let side = if new_value { pair.blb() } else { pair.bl() };
                if side > Volts::ZERO {
                    self.discharging.insert(col);
                } else {
                    self.discharging.remove(col);
                }
            }
        }
        swaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(rows: u32, cols: u32) -> MemoryController {
        MemoryController::new(SramConfig::small_for_tests(rows, cols).unwrap())
    }

    fn addr(c: &MemoryController, row: u32, col: u32) -> Address {
        Address::from_row_col(RowIndex(row), ColIndex(col), c.organization())
    }

    #[test]
    fn functional_write_then_read_round_trip() {
        let mut c = controller(4, 4);
        let a = addr(&c, 1, 2);
        let w = c
            .execute(CycleCommand::functional(a, MemOperation::Write(true)))
            .unwrap();
        assert!(w.read_value.is_none());
        assert!(w.energy.write_driver.value() > 0.0);
        let r = c
            .execute(CycleCommand::functional(a, MemOperation::Read))
            .unwrap();
        assert_eq!(r.read_value, Some(true));
        assert!(r.read_reliable);
        assert!(r.energy.sense_amp.value() > 0.0);
        assert_eq!(c.cycles(), 2);
    }

    #[test]
    fn functional_mode_stresses_all_other_columns() {
        let mut c = controller(4, 8);
        let a = addr(&c, 0, 0);
        let out = c
            .execute(CycleCommand::functional(a, MemOperation::Read))
            .unwrap();
        assert_eq!(out.precharged_columns, 8);
        let report = c.stress_report();
        assert_eq!(report.full_res_events, 7);
        // RES replenishment energy scales with the stressed columns.
        let expected = c.technology().res_replenish_energy().value() * 7.0;
        assert!((out.energy.precharge_res.value() - expected).abs() < 1e-21);
    }

    #[test]
    fn low_power_mode_limits_precharge_to_listed_columns() {
        let mut c = controller(4, 8);
        let a = addr(&c, 0, 0);
        let out = c
            .execute(CycleCommand::low_power(a, MemOperation::Read, vec![0, 1]))
            .unwrap();
        assert_eq!(out.precharged_columns, 2);
        // Exactly one full RES (the "next" column).
        assert_eq!(c.stress_report().full_res_events, 1);
        // Low-power RES energy is far below the functional 7-column figure.
        assert!(out.energy.precharge_res < c.technology().res_replenish_energy() * 2.0);
    }

    #[test]
    fn floating_bitlines_discharge_over_cycles() {
        let mut c = controller(2, 8);
        // March across row 0 in LP mode; observe column 7's BL (cell stores
        // 0, so BL discharges).
        for col in 0..4u32 {
            let a = addr(&c, 0, col);
            c.execute(CycleCommand::low_power(
                a,
                MemOperation::Read,
                vec![col, col + 1],
            ))
            .unwrap();
        }
        let pair = c.array().bitline(ColIndex(7)).unwrap();
        let vdd = c.technology().vdd;
        assert!(pair.bl() < vdd, "column 7 BL should have discharged");
        assert_eq!(pair.blb(), vdd, "BLB stays high for a cell storing 0");
    }

    #[test]
    fn faulty_swap_occurs_without_row_transition_restore() {
        let mut c = controller(2, 8);
        // Row 0 stores 0s (default); row 1 column 5 stores 1.
        let victim = addr(&c, 1, 5);
        c.poke(victim, true).unwrap();
        // Sweep row 0 in LP mode long enough for distant columns to fully
        // discharge their BL (cells store 0 → BL goes low).
        for col in 0..8u32 {
            for _ in 0..2 {
                let a = addr(&c, 0, col);
                c.execute(CycleCommand::low_power(
                    a,
                    MemOperation::Read,
                    vec![col, col + 1],
                ))
                .unwrap();
            }
        }
        // Keep row 0 active a few more cycles so even the columns that were
        // pre-charged late in the sweep (like column 5) fully discharge.
        for _ in 0..10 {
            let a = addr(&c, 0, 0);
            c.execute(CycleCommand::low_power(a, MemOperation::Read, vec![0, 1]))
                .unwrap();
        }
        // Move to row 1 WITHOUT the all-columns restore: the discharged BL
        // of column 5 overwrites the stored 1.
        let out = c
            .execute(CycleCommand::low_power(
                addr(&c, 1, 0),
                MemOperation::Read,
                vec![0, 1],
            ))
            .unwrap();
        assert!(out.row_changed);
        assert!(out.faulty_swaps > 0, "expected at least one faulty swap");
        assert!(!c.peek(victim).unwrap(), "victim cell should have flipped");
        assert!(c.array().cell_at(victim).unwrap().is_corrupted());
    }

    #[test]
    fn row_transition_restore_prevents_faulty_swap() {
        let mut c = controller(2, 8);
        let victim = addr(&c, 1, 5);
        c.poke(victim, true).unwrap();
        for col in 0..8u32 {
            for _ in 0..2 {
                let a = addr(&c, 0, col);
                c.execute(CycleCommand::low_power(
                    a,
                    MemOperation::Read,
                    vec![col, col + 1],
                ))
                .unwrap();
            }
        }
        // The paper's fix: the last operation of the row re-enables every
        // pre-charge circuit for one cycle.
        let restore = c
            .execute(CycleCommand::low_power_restore_all(
                addr(&c, 0, 7),
                MemOperation::Read,
            ))
            .unwrap();
        assert!(restore.energy.precharge_row_transition.value() > 0.0);
        // Now the row transition is harmless.
        let out = c
            .execute(CycleCommand::low_power(
                addr(&c, 1, 0),
                MemOperation::Read,
                vec![0, 1],
            ))
            .unwrap();
        assert_eq!(out.faulty_swaps, 0);
        assert!(c.peek(victim).unwrap(), "victim cell must keep its 1");
        assert_eq!(c.total_faulty_swaps(), 0);
    }

    #[test]
    fn low_power_cycle_energy_is_well_below_functional() {
        let mut functional = controller(8, 64);
        let mut low_power = controller(8, 64);
        let mut e_f = 0.0;
        let mut e_lp = 0.0;
        for col in 0..32u32 {
            let a = addr(&functional, 0, col);
            e_f += functional
                .execute(CycleCommand::functional(a, MemOperation::Read))
                .unwrap()
                .energy
                .total()
                .value();
            e_lp += low_power
                .execute(CycleCommand::low_power(
                    a,
                    MemOperation::Read,
                    vec![col, col + 1],
                ))
                .unwrap()
                .energy
                .total()
                .value();
        }
        assert!(
            e_lp < e_f,
            "low-power mode should consume less: {e_lp} vs {e_f}"
        );
    }

    #[test]
    fn trace_records_cycles() {
        let mut c = controller(2, 4);
        c.start_trace(Trace::observing_column(3));
        for col in 0..4u32 {
            let a = addr(&c, 0, col);
            c.execute(CycleCommand::low_power(
                a,
                MemOperation::Read,
                vec![col, col + 1],
            ))
            .unwrap();
        }
        let trace = c.take_trace().unwrap();
        assert_eq!(trace.len(), 4);
        assert!(trace.mean_precharged_columns() <= 2.0);
    }

    #[test]
    fn out_of_range_address_is_rejected() {
        let mut c = controller(2, 2);
        let bad = Address::new(4);
        assert!(matches!(
            c.execute(CycleCommand::functional(bad, MemOperation::Read)),
            Err(SramError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn statistics_reset() {
        let mut c = controller(2, 2);
        let a = addr(&c, 0, 0);
        c.execute(CycleCommand::functional(a, MemOperation::Write(true)))
            .unwrap();
        assert!(c.accumulated_energy().total().value() > 0.0);
        c.reset_statistics();
        assert_eq!(c.cycles(), 0);
        assert_eq!(c.accumulated_energy().total().value(), 0.0);
        // Data survives the reset.
        assert!(c.peek(a).unwrap());
    }

    #[test]
    fn peek_poke_round_trip() {
        let mut c = controller(2, 2);
        let a = addr(&c, 1, 1);
        assert!(!c.peek(a).unwrap());
        c.poke(a, true).unwrap();
        assert!(c.peek(a).unwrap());
        assert!(c.peek(Address::new(99)).is_err());
        assert!(c.poke(Address::new(99), false).is_err());
    }
}
