//! Cell addresses and their row/column decomposition.
//!
//! The paper's technique relies on a specific mapping between the linear
//! test address and the physical (row, column) position: the "word line
//! after word line" order walks all columns of a row before moving to the
//! next row. The [`Address`] type is the linear address used by the March
//! engine, and [`RowIndex`]/[`ColIndex`] are the physical coordinates used
//! by the array; conversions go through the [`ArrayOrganization`] so the
//! mapping is explicit everywhere.

use crate::config::ArrayOrganization;
use std::fmt;

/// Linear cell address in `0..(rows × cols)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(u32);

/// Physical row (word line) index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RowIndex(pub u32);

/// Physical column (bit-line pair) index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ColIndex(pub u32);

impl Address {
    /// Wraps a raw linear address.
    pub fn new(value: u32) -> Self {
        Address(value)
    }

    /// Raw linear value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// Builds the linear address of physical position `(row, col)` under the
    /// row-major ("word line after word line") layout used throughout the
    /// workspace: `address = row · #cols + col`.
    pub fn from_row_col(row: RowIndex, col: ColIndex, organization: &ArrayOrganization) -> Self {
        Address(row.0 * organization.cols() + col.0)
    }

    /// Physical row of this address under the row-major layout.
    pub fn row(self, organization: &ArrayOrganization) -> RowIndex {
        RowIndex(self.0 / organization.cols())
    }

    /// Physical column of this address under the row-major layout.
    pub fn col(self, organization: &ArrayOrganization) -> ColIndex {
        ColIndex(self.0 % organization.cols())
    }

    /// Returns `true` if the address falls inside `organization`.
    pub fn is_valid(self, organization: &ArrayOrganization) -> bool {
        self.0 < organization.capacity()
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<u32> for Address {
    fn from(value: u32) -> Self {
        Address(value)
    }
}

impl From<Address> for u32 {
    fn from(value: Address) -> Self {
        value.0
    }
}

impl fmt::Display for RowIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row {}", self.0)
    }
}

impl fmt::Display for ColIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col {}", self.0)
    }
}

impl RowIndex {
    /// Raw index value.
    pub fn value(self) -> u32 {
        self.0
    }
}

impl ColIndex {
    /// Raw index value.
    pub fn value(self) -> u32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> ArrayOrganization {
        ArrayOrganization::new(8, 16).unwrap()
    }

    #[test]
    fn row_col_round_trip() {
        let organization = org();
        for row in 0..8 {
            for col in 0..16 {
                let a = Address::from_row_col(RowIndex(row), ColIndex(col), &organization);
                assert_eq!(a.row(&organization), RowIndex(row));
                assert_eq!(a.col(&organization), ColIndex(col));
                assert!(a.is_valid(&organization));
            }
        }
    }

    #[test]
    fn row_major_layout_is_word_line_after_word_line() {
        let organization = org();
        // Consecutive addresses inside a row differ only by the column.
        let a = Address::from_row_col(RowIndex(3), ColIndex(5), &organization);
        let b = Address::new(a.value() + 1);
        assert_eq!(b.row(&organization), RowIndex(3));
        assert_eq!(b.col(&organization), ColIndex(6));
        // The last column of a row is followed by column 0 of the next row.
        let last = Address::from_row_col(RowIndex(3), ColIndex(15), &organization);
        let next = Address::new(last.value() + 1);
        assert_eq!(next.row(&organization), RowIndex(4));
        assert_eq!(next.col(&organization), ColIndex(0));
    }

    #[test]
    fn validity_bound() {
        let organization = org();
        assert!(Address::new(127).is_valid(&organization));
        assert!(!Address::new(128).is_valid(&organization));
    }

    #[test]
    fn conversions_and_display() {
        let a: Address = 42u32.into();
        let v: u32 = a.into();
        assert_eq!(v, 42);
        assert_eq!(format!("{a}"), "@42");
        assert_eq!(format!("{}", RowIndex(3)), "row 3");
        assert_eq!(format!("{}", ColIndex(7)), "col 7");
        assert_eq!(RowIndex(3).value(), 3);
        assert_eq!(ColIndex(7).value(), 7);
    }
}
