//! Error type of the SRAM simulator.

use crate::address::Address;
use std::error::Error;
use std::fmt;

/// Errors reported by the SRAM model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SramError {
    /// An address outside the configured array was used.
    AddressOutOfRange {
        /// The offending address.
        address: Address,
        /// Number of addressable cells in the array.
        capacity: u32,
    },
    /// A row or column index outside the configured array was used.
    IndexOutOfRange {
        /// Human-readable description of the offending index.
        what: &'static str,
        /// The offending value.
        index: u32,
        /// Exclusive upper bound.
        limit: u32,
    },
    /// The array organization is degenerate (zero rows or columns) or too
    /// large to address.
    InvalidOrganization {
        /// Requested number of rows.
        rows: u32,
        /// Requested number of columns.
        cols: u32,
        /// Why the organization was rejected.
        reason: &'static str,
    },
    /// A configuration parameter failed validation.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A read was attempted on a column whose bit lines were not pre-charged
    /// high enough for the sense amplifier to resolve the value.
    ReadOnUnprechargedColumn {
        /// The address being read.
        address: Address,
        /// The bit-line voltage seen by the sense amplifier, in volts.
        bitline_voltage: f64,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::AddressOutOfRange { address, capacity } => write!(
                f,
                "address {} is outside the array capacity of {} cells",
                address.value(),
                capacity
            ),
            SramError::IndexOutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} is outside the valid range 0..{limit}")
            }
            SramError::InvalidOrganization { rows, cols, reason } => {
                write!(f, "invalid array organization {rows}x{cols}: {reason}")
            }
            SramError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SramError::ReadOnUnprechargedColumn {
                address,
                bitline_voltage,
            } => write!(
                f,
                "read at address {} attempted on a column whose bit lines are at {:.3} V and cannot be sensed",
                address.value(),
                bitline_voltage
            ),
        }
    }
}

impl Error for SramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SramError::InvalidOrganization {
            rows: 0,
            cols: 4,
            reason: "rows must be non-zero",
        };
        let msg = format!("{e}");
        assert!(msg.contains("0x4"));
        assert!(msg.contains("rows must be non-zero"));

        let e = SramError::AddressOutOfRange {
            address: Address::new(300),
            capacity: 256,
        };
        assert!(format!("{e}").contains("300"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SramError>();
    }
}
