//! Cycle-accurate behavioural/electrical SRAM array simulator.
//!
//! This crate is the memory substrate for the reproduction of
//! *"Minimizing Test Power in SRAM through Reduction of Pre-charge
//! Activity"* (DATE 2006). It models the pieces of a bit-oriented SRAM
//! macro that the paper's argument rests on:
//!
//! * a [`config::TechnologyParams`] / [`config::ArrayOrganization`] pair
//!   describing the operating point (0.13 µm, 1.6 V, 3 ns cycle, 512×512 by
//!   default) and the first-order electrical parameters (bit-line and word
//!   line capacitances, cell drive current, pre-charge strength),
//! * 6T [`cell::SramCell`]s with stored data, stress counters and
//!   corruption tracking,
//! * per-column [`bitline::BitLinePair`]s whose voltages evolve cycle by
//!   cycle (pre-charged, driven by an operation, or floating and discharged
//!   by the selected cell as in Figure 6 of the paper),
//! * per-column [`precharge::PrechargeCircuit`]s that can be enabled or
//!   disabled each cycle through a [`array::PrechargeMask`],
//! * [`decoder`], [`senseamp`] and [`writedriver`] periphery models, and
//! * the [`array::SramArray`] + [`controller::MemoryController`] pair that
//!   executes one [`operation::CycleCommand`] per clock cycle and returns
//!   the resulting [`energy::CycleEnergy`] breakdown, read data, stress and
//!   corruption reports.
//!
//! The crate is deliberately independent from the power-accounting and
//! March-test crates: it reports raw per-cycle energies and lets the
//! higher layers attribute and aggregate them.
//!
//! # Example
//!
//! ```
//! use sram_model::prelude::*;
//!
//! let config = SramConfig::builder()
//!     .organization(ArrayOrganization::new(16, 16)?)
//!     .build()?;
//! let mut memory = MemoryController::new(config);
//! let addr = Address::from_row_col(RowIndex(0), ColIndex(0), memory.organization());
//! let outcome = memory.execute(CycleCommand::functional(addr, MemOperation::Write(true)))?;
//! assert!(outcome.energy.total().value() > 0.0);
//! let outcome = memory.execute(CycleCommand::functional(addr, MemOperation::Read))?;
//! assert_eq!(outcome.read_value, Some(true));
//! # Ok::<(), sram_model::error::SramError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod array;
pub mod bitline;
pub mod cell;
pub mod colset;
pub mod config;
pub mod controller;
pub mod decoder;
pub mod energy;
pub mod error;
pub mod operation;
pub mod precharge;
pub mod senseamp;
pub mod stress;
pub mod trace;
pub mod writedriver;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::address::{Address, ColIndex, RowIndex};
    pub use crate::array::{PrechargeMask, SramArray};
    pub use crate::cell::SramCell;
    pub use crate::config::{ArrayOrganization, SramConfig, TechnologyParams};
    pub use crate::controller::{CycleOutcome, MemoryController};
    pub use crate::energy::CycleEnergy;
    pub use crate::error::SramError;
    pub use crate::operation::{CycleCommand, MemOperation};
    pub use crate::stress::StressReport;
    pub use crate::trace::{CycleRecord, Trace};
}
