//! Write-driver model.
//!
//! The write driver forces the selected column's bit-line pair to the full
//! differential value being written. Its energy is the sum of a fixed
//! driver-internal term and the dissipation of pulling the low-going bit
//! line to ground (reported by [`BitLinePair::drive_write`]).

use crate::bitline::BitLinePair;
use crate::config::TechnologyParams;
use transient::units::Joules;

/// One column-multiplexed write driver.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WriteDriver {
    writes: u64,
    dissipated: Joules,
}

impl WriteDriver {
    /// Creates an idle write driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drives `value` onto `pair` and returns the total driver energy.
    pub fn drive(
        &mut self,
        pair: &mut BitLinePair,
        value: bool,
        technology: &TechnologyParams,
    ) -> Joules {
        self.writes += 1;
        let line = pair.drive_write(value, technology);
        let total = technology.write_driver_energy + line;
        self.dissipated += total;
        total
    }

    /// Number of writes driven.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Total energy dissipated so far.
    pub fn dissipated_energy(&self) -> Joules {
        self.dissipated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_accumulates_energy_and_count() {
        let t = TechnologyParams::default_013um();
        let mut driver = WriteDriver::new();
        let mut pair = BitLinePair::precharged(t.vdd);
        let e1 = driver.drive(&mut pair, true, &t);
        assert!(e1 >= t.write_driver_energy);
        // Writing the opposite value from a driven state swings the other
        // line and costs again.
        let e2 = driver.drive(&mut pair, false, &t);
        assert!(e2.value() > 0.0);
        assert_eq!(driver.write_count(), 2);
        assert!((driver.dissipated_energy().value() - (e1 + e2).value()).abs() < 1e-21);
    }
}
