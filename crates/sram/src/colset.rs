//! A dense set of column indices, packed 64 per word.
//!
//! The memory controller tracks two per-column conditions on every cycle
//! of a low-power run: *which bit-line pairs are away from `V_DD`* and
//! *which are still actively discharging*. A 512-column array needs those
//! sets interrogated and updated millions of times per run, so they are
//! stored as plain bit masks: membership updates are single word
//! operations, iteration is a word scan in ascending column order (the
//! same order a `BTreeSet<u32>` would produce, which keeps every
//! order-sensitive energy accumulation byte-identical), and — unlike a
//! tree set — no operation ever allocates after construction.

/// A set of `u32` column indices below a fixed bound, backed by a bit
/// mask.
///
/// # Examples
///
/// ```
/// use sram_model::colset::ColumnSet;
///
/// let mut set = ColumnSet::new(512);
/// assert!(set.insert(300));
/// assert!(set.insert(5));
/// assert!(!set.insert(300), "second insert reports already-present");
/// assert!(set.contains(5) && !set.contains(6));
///
/// // Iteration snapshots into a caller-owned scratch buffer, in
/// // ascending order — the order-sensitive energy accumulations of the
/// // controller depend on it.
/// let mut scratch = Vec::new();
/// set.collect_into(&mut scratch);
/// assert_eq!(scratch, vec![5, 300]);
///
/// // `clear` keeps the storage, so steady-state use never allocates.
/// set.clear();
/// assert!(set.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSet {
    words: Vec<u64>,
    len: u32,
}

impl ColumnSet {
    /// Creates an empty set able to hold columns `0..columns`.
    pub fn new(columns: u32) -> Self {
        Self {
            words: vec![0; columns.div_ceil(64) as usize],
            len: 0,
        }
    }

    /// Number of columns in the set.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` when no column is in the set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `col`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `col` is outside the capacity the set was created with.
    #[inline]
    pub fn insert(&mut self, col: u32) -> bool {
        let word = &mut self.words[(col / 64) as usize];
        let bit = 1u64 << (col % 64);
        let added = *word & bit == 0;
        *word |= bit;
        self.len += u32::from(added);
        added
    }

    /// Removes `col`; returns `true` if it was present. Columns beyond the
    /// capacity are never present, so removing them is a no-op.
    #[inline]
    pub fn remove(&mut self, col: u32) -> bool {
        let Some(word) = self.words.get_mut((col / 64) as usize) else {
            return false;
        };
        let bit = 1u64 << (col % 64);
        let removed = *word & bit != 0;
        *word &= !bit;
        self.len -= u32::from(removed);
        removed
    }

    /// Returns `true` if `col` is in the set.
    #[inline]
    pub fn contains(&self, col: u32) -> bool {
        self.words
            .get((col / 64) as usize)
            .is_some_and(|word| word & (1 << (col % 64)) != 0)
    }

    /// Removes every column without shrinking the storage.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Appends the members to `out` in ascending order, reusing `out`'s
    /// storage (the caller clears it). This is the iteration primitive of
    /// the controller's hot loop: snapshotting into a reused scratch
    /// buffer lets the caller mutate the array (and the set itself) while
    /// walking the snapshot.
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.reserve(self.len as usize);
        for (index, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                out.push(index as u32 * 64 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut set = ColumnSet::new(130);
        assert!(set.is_empty());
        assert!(set.insert(0));
        assert!(set.insert(63));
        assert!(set.insert(64));
        assert!(set.insert(129));
        assert!(!set.insert(64), "second insert reports already-present");
        assert_eq!(set.len(), 4);
        assert!(set.contains(129));
        assert!(!set.contains(1));
        assert!(set.remove(63));
        assert!(!set.remove(63));
        assert_eq!(set.len(), 3);
        // Out-of-capacity queries behave like an absent member.
        assert!(!set.contains(1000));
        assert!(!set.remove(1000));
    }

    #[test]
    fn collect_into_is_ascending_and_reusable() {
        let mut set = ColumnSet::new(200);
        for col in [150, 3, 64, 65, 0, 199] {
            set.insert(col);
        }
        let mut out = Vec::new();
        set.collect_into(&mut out);
        assert_eq!(out, vec![0, 3, 64, 65, 150, 199]);

        set.clear();
        assert!(set.is_empty());
        out.clear();
        set.collect_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_btreeset_order() {
        use std::collections::BTreeSet;
        let mut set = ColumnSet::new(512);
        let mut reference = BTreeSet::new();
        let mut state = 12345u64;
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let col = (state >> 33) as u32 % 512;
            if state & 1 == 0 {
                set.insert(col);
                reference.insert(col);
            } else {
                set.remove(col);
                reference.remove(&col);
            }
        }
        let mut out = Vec::new();
        set.collect_into(&mut out);
        let expected: Vec<u32> = reference.into_iter().collect();
        assert_eq!(out, expected);
        assert_eq!(set.len() as usize, expected.len());
    }
}
