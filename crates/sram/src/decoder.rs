//! Row and column address decoders.
//!
//! The decoders translate the linear cell address into the physical word
//! line and column-select signals and account for the dynamic energy of the
//! pre-decoder and final driver stages. The energy model is deliberately
//! simple — a fixed switched capacitance per decode that scales
//! logarithmically with the number of outputs — because the paper lumps all
//! peripheral power into the read/write operation power `P_r`/`P_w`; the
//! explicit decoder term mainly exists so that ablation experiments can
//! separate "array" from "periphery" contributions.

use crate::address::{Address, ColIndex, RowIndex};
use crate::config::{ArrayOrganization, TechnologyParams};
use crate::error::SramError;
use transient::units::{Farads, Joules};

/// Decoded physical location of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddress {
    /// Word line to assert.
    pub row: RowIndex,
    /// Column-select to assert.
    pub col: ColIndex,
}

/// Row (word-line) decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowDecoder {
    outputs: u32,
    last_row: Option<u32>,
    decode_count: u64,
}

/// Column-select decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnDecoder {
    outputs: u32,
    last_col: Option<u32>,
    decode_count: u64,
}

/// Switched capacitance per decoded output bit, per decode event.
const DECODE_CAP_PER_BIT: Farads = Farads(5e-15);

fn decode_energy(outputs: u32, changed: bool, technology: &TechnologyParams) -> Joules {
    if !changed {
        // Same output as last cycle: only the pre-decoder clocking toggles.
        return Joules(
            DECODE_CAP_PER_BIT.value() * technology.vdd.value() * technology.vdd.value(),
        );
    }
    let bits = (outputs.max(2) as f64).log2().ceil();
    Joules(bits * DECODE_CAP_PER_BIT.value() * technology.vdd.value() * technology.vdd.value())
}

impl RowDecoder {
    /// Creates a decoder with one output per row of `organization`.
    pub fn new(organization: &ArrayOrganization) -> Self {
        Self {
            outputs: organization.rows(),
            last_row: None,
            decode_count: 0,
        }
    }

    /// Decodes the row of `address`, returning the row and the decode
    /// energy. Consecutive decodes of the same row are cheaper (the word
    /// line simply stays asserted across the cycle boundary).
    ///
    /// # Errors
    ///
    /// Returns [`SramError::AddressOutOfRange`] if the address does not fit
    /// the organization the decoder was built for.
    pub fn decode(
        &mut self,
        address: Address,
        organization: &ArrayOrganization,
        technology: &TechnologyParams,
    ) -> Result<(RowIndex, Joules), SramError> {
        if !address.is_valid(organization) {
            return Err(SramError::AddressOutOfRange {
                address,
                capacity: organization.capacity(),
            });
        }
        let row = address.row(organization);
        let changed = self.last_row != Some(row.0);
        self.last_row = Some(row.0);
        self.decode_count += 1;
        Ok((row, decode_energy(self.outputs, changed, technology)))
    }

    /// Number of decodes performed.
    pub fn decode_count(&self) -> u64 {
        self.decode_count
    }
}

impl ColumnDecoder {
    /// Creates a decoder with one output per column of `organization`.
    pub fn new(organization: &ArrayOrganization) -> Self {
        Self {
            outputs: organization.cols(),
            last_col: None,
            decode_count: 0,
        }
    }

    /// Decodes the column of `address`, returning the column and the decode
    /// energy.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::AddressOutOfRange`] if the address does not fit
    /// the organization the decoder was built for.
    pub fn decode(
        &mut self,
        address: Address,
        organization: &ArrayOrganization,
        technology: &TechnologyParams,
    ) -> Result<(ColIndex, Joules), SramError> {
        if !address.is_valid(organization) {
            return Err(SramError::AddressOutOfRange {
                address,
                capacity: organization.capacity(),
            });
        }
        let col = address.col(organization);
        let changed = self.last_col != Some(col.0);
        self.last_col = Some(col.0);
        self.decode_count += 1;
        Ok((col, decode_energy(self.outputs, changed, technology)))
    }

    /// Number of decodes performed.
    pub fn decode_count(&self) -> u64 {
        self.decode_count
    }
}

/// Convenience wrapper decoding both coordinates at once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AddressDecoder {
    row: RowDecoder,
    col: ColumnDecoder,
}

impl AddressDecoder {
    /// Creates the pair of decoders for `organization`.
    pub fn new(organization: &ArrayOrganization) -> Self {
        Self {
            row: RowDecoder::new(organization),
            col: ColumnDecoder::new(organization),
        }
    }

    /// Decodes an address into its physical location plus total decode
    /// energy.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::AddressOutOfRange`] for an address outside the
    /// array.
    pub fn decode(
        &mut self,
        address: Address,
        organization: &ArrayOrganization,
        technology: &TechnologyParams,
    ) -> Result<(DecodedAddress, Joules), SramError> {
        let (row, e_row) = self.row.decode(address, organization, technology)?;
        let (col, e_col) = self.col.decode(address, organization, technology)?;
        Ok((DecodedAddress { row, col }, e_row + e_col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ArrayOrganization, TechnologyParams) {
        (
            ArrayOrganization::new(8, 16).unwrap(),
            TechnologyParams::default_013um(),
        )
    }

    #[test]
    fn decodes_row_and_column() {
        let (org, tech) = setup();
        let mut dec = AddressDecoder::new(&org);
        let a = Address::from_row_col(RowIndex(3), ColIndex(9), &org);
        let (loc, energy) = dec.decode(a, &org, &tech).unwrap();
        assert_eq!(loc.row, RowIndex(3));
        assert_eq!(loc.col, ColIndex(9));
        assert!(energy.value() > 0.0);
    }

    #[test]
    fn repeated_row_decode_is_cheaper() {
        let (org, tech) = setup();
        let mut dec = RowDecoder::new(&org);
        let a0 = Address::from_row_col(RowIndex(2), ColIndex(0), &org);
        let a1 = Address::from_row_col(RowIndex(2), ColIndex(1), &org);
        let a2 = Address::from_row_col(RowIndex(3), ColIndex(0), &org);
        let (_, first) = dec.decode(a0, &org, &tech).unwrap();
        let (_, same_row) = dec.decode(a1, &org, &tech).unwrap();
        let (_, new_row) = dec.decode(a2, &org, &tech).unwrap();
        assert!(same_row < first);
        assert!(new_row > same_row);
        assert_eq!(dec.decode_count(), 3);
    }

    #[test]
    fn out_of_range_address_rejected() {
        let (org, tech) = setup();
        let mut dec = AddressDecoder::new(&org);
        let bad = Address::new(org.capacity());
        assert!(matches!(
            dec.decode(bad, &org, &tech),
            Err(SramError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn column_decoder_counts() {
        let (org, tech) = setup();
        let mut dec = ColumnDecoder::new(&org);
        for c in 0..4 {
            let a = Address::from_row_col(RowIndex(0), ColIndex(c), &org);
            dec.decode(a, &org, &tech).unwrap();
        }
        assert_eq!(dec.decode_count(), 4);
    }
}
