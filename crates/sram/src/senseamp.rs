//! Sense-amplifier model.
//!
//! The sense amplifier resolves the small differential swing developed on
//! the selected column's bit lines during a read. The model captures the
//! two properties the experiments rely on: it needs a minimum differential
//! *and* a sufficiently pre-charged common mode to resolve correctly (reads
//! on floating, discharged bit lines are flagged rather than silently
//! returning data), and each evaluation costs a fixed energy.

use crate::bitline::BitLinePair;
use crate::config::TechnologyParams;
use transient::units::{Joules, Volts};

/// Outcome of a sense operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseOutcome {
    /// The resolved bit.
    pub value: bool,
    /// Whether the common-mode level was high enough for a reliable
    /// resolution.
    pub reliable: bool,
    /// Energy spent by the evaluation.
    pub energy: Joules,
}

/// One column-multiplexed sense amplifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmplifier {
    /// Minimum differential input the latch resolves deterministically.
    offset: Volts,
    evaluations: u64,
}

impl SenseAmplifier {
    /// Creates a sense amplifier with a 20 mV input offset.
    pub fn new() -> Self {
        Self {
            offset: Volts::from_millivolts(20.0),
            evaluations: 0,
        }
    }

    /// Creates a sense amplifier with an explicit input offset.
    pub fn with_offset(offset: Volts) -> Self {
        Self {
            offset,
            evaluations: 0,
        }
    }

    /// Resolves the value presented by `pair` for a cell that developed its
    /// read swing. The common mode must be above the logic threshold for the
    /// outcome to be reliable — this is what fails if a column is read
    /// without having been pre-charged.
    pub fn sense(&mut self, pair: &BitLinePair, technology: &TechnologyParams) -> SenseOutcome {
        self.evaluations += 1;
        let differential = pair.bl() - pair.blb();
        let value = if differential.abs() < self.offset {
            // Below the offset the latch falls towards its skewed side; we
            // model it as reading the BL side but flag unreliability below.
            pair.bl() >= pair.blb()
        } else {
            differential.value() > 0.0
        };
        let common_mode = pair.bl().max(pair.blb());
        let reliable =
            common_mode >= technology.logic_threshold && differential.abs() >= self.offset;
        SenseOutcome {
            value,
            reliable,
            energy: technology.sense_amp_energy,
        }
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

impl Default for SenseAmplifier {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechnologyParams {
        TechnologyParams::default_013um()
    }

    #[test]
    fn senses_a_one_and_a_zero() {
        let t = tech();
        let mut sa = SenseAmplifier::new();

        let mut pair = BitLinePair::precharged(t.vdd);
        pair.develop_read_swing(true, &t); // cell stores 1 → BLB droops
        let out = sa.sense(&pair, &t);
        assert!(out.value);
        assert!(out.reliable);
        assert_eq!(out.energy, t.sense_amp_energy);

        let mut pair = BitLinePair::precharged(t.vdd);
        pair.develop_read_swing(false, &t);
        let out = sa.sense(&pair, &t);
        assert!(!out.value);
        assert!(out.reliable);
        assert_eq!(sa.evaluations(), 2);
    }

    #[test]
    fn unreliable_on_discharged_bitlines() {
        let t = tech();
        let mut sa = SenseAmplifier::new();
        let mut pair = BitLinePair::precharged(t.vdd);
        // Float the pair for many cycles: both the droop side goes to ground
        // and the common mode argument no longer holds.
        for _ in 0..20 {
            pair.float_discharge_by_cell(false, &t);
        }
        // Now BL is at ground and BLB at VDD: a huge differential but the
        // data is the *cell-induced* one, so it is still reliable.
        let out = sa.sense(&pair, &t);
        assert!(out.reliable);
        assert!(!out.value);

        // Equal, discharged lines: unreliable.
        let mut pair = BitLinePair::precharged(Volts(0.3));
        pair.develop_read_swing(true, &t);
        let out = sa.sense(&pair, &t);
        assert!(!out.reliable);
    }

    #[test]
    fn below_offset_is_unreliable() {
        let t = tech();
        let mut sa = SenseAmplifier::with_offset(Volts::from_millivolts(50.0));
        let pair = BitLinePair::precharged(t.vdd); // no swing developed
        let out = sa.sense(&pair, &t);
        assert!(!out.reliable);
    }
}
