//! Memory operations and per-cycle commands.
//!
//! The controller executes exactly one [`CycleCommand`] per clock cycle: a
//! read or write at one address, together with the pre-charge policy for
//! that cycle. In functional mode the policy is always "every column
//! enabled"; the low-power test mode of the paper narrows it to the
//! selected column and the next one, and widens it back to every column for
//! the one-cycle row-transition restore.

use crate::address::Address;
use std::fmt;

/// A single-cell memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOperation {
    /// Read the addressed cell.
    Read,
    /// Write the given bit into the addressed cell.
    Write(bool),
}

impl MemOperation {
    /// Returns `true` for read operations.
    pub fn is_read(self) -> bool {
        matches!(self, MemOperation::Read)
    }

    /// Returns `true` for write operations.
    pub fn is_write(self) -> bool {
        matches!(self, MemOperation::Write(_))
    }
}

impl fmt::Display for MemOperation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemOperation::Read => write!(f, "r"),
            MemOperation::Write(true) => write!(f, "w1"),
            MemOperation::Write(false) => write!(f, "w0"),
        }
    }
}

/// The pre-charge policy of one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrechargePolicy {
    /// Every column's pre-charge circuit is enabled (functional mode, and
    /// the one-cycle row-transition restore of the low-power mode).
    AllColumns,
    /// Only the listed columns are enabled (low-power test mode: the
    /// selected column and the one that follows).
    Columns(Vec<u32>),
}

/// Everything the memory controller needs to execute one clock cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleCommand {
    /// Cell addressed this cycle.
    pub address: Address,
    /// Operation performed on that cell.
    pub op: MemOperation,
    /// Pre-charge policy for this cycle.
    pub precharge: PrechargePolicy,
    /// Whether the low-power-test control logic is active this cycle (used
    /// only for the small control-logic energy attribution).
    pub lp_test_mode: bool,
}

impl CycleCommand {
    /// A functional-mode cycle: all pre-charge circuits enabled.
    pub fn functional(address: Address, op: MemOperation) -> Self {
        Self {
            address,
            op,
            precharge: PrechargePolicy::AllColumns,
            lp_test_mode: false,
        }
    }

    /// A low-power-test cycle with an explicit set of pre-charged columns.
    pub fn low_power(address: Address, op: MemOperation, columns: Vec<u32>) -> Self {
        Self {
            address,
            op,
            precharge: PrechargePolicy::Columns(columns),
            lp_test_mode: true,
        }
    }

    /// The row-transition restore cycle of the low-power mode: the memory
    /// temporarily returns to the all-columns policy while still running the
    /// last operation of the row.
    pub fn low_power_restore_all(address: Address, op: MemOperation) -> Self {
        Self {
            address,
            op,
            precharge: PrechargePolicy::AllColumns,
            lp_test_mode: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_predicates_and_display() {
        assert!(MemOperation::Read.is_read());
        assert!(!MemOperation::Read.is_write());
        assert!(MemOperation::Write(true).is_write());
        assert_eq!(format!("{}", MemOperation::Read), "r");
        assert_eq!(format!("{}", MemOperation::Write(true)), "w1");
        assert_eq!(format!("{}", MemOperation::Write(false)), "w0");
    }

    #[test]
    fn command_constructors_set_policy_and_mode() {
        let a = Address::new(7);
        let c = CycleCommand::functional(a, MemOperation::Read);
        assert_eq!(c.precharge, PrechargePolicy::AllColumns);
        assert!(!c.lp_test_mode);

        let c = CycleCommand::low_power(a, MemOperation::Write(true), vec![3, 4]);
        assert_eq!(c.precharge, PrechargePolicy::Columns(vec![3, 4]));
        assert!(c.lp_test_mode);

        let c = CycleCommand::low_power_restore_all(a, MemOperation::Read);
        assert_eq!(c.precharge, PrechargePolicy::AllColumns);
        assert!(c.lp_test_mode);
    }
}
