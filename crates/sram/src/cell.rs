//! The 6T SRAM cell model.
//!
//! Each cell stores one bit on a cross-coupled latch with two storage nodes
//! `S` and `SB`. The model is behavioural: node voltages are derived from
//! the stored bit (one node at `V_DD`, the other at ground), but the cell
//! additionally tracks the events the paper cares about:
//!
//! * **RES** (Read Equivalent Stress) counts — in functional mode every cell
//!   of the selected row in an *unselected* column is stressed every cycle;
//!   in the low-power test mode only the next-to-be-selected column sees a
//!   full RES and a handful of columns with still-charged floating bit lines
//!   see a *reduced* RES (the paper's `α` cells),
//! * **corruption** — a faulty swap (Figure 7) overwrites the stored value
//!   through charge sharing with a discharged bit line; the cell remembers
//!   both the new value and the fact that it was corrupted, so verification
//!   can distinguish a legitimate write from a destroyed bit.

use transient::units::Volts;

/// One six-transistor SRAM cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramCell {
    value: bool,
    full_res_count: u64,
    reduced_res_count: u64,
    corrupted: bool,
    reads: u64,
    writes: u64,
}

impl SramCell {
    /// Creates a cell holding `value`.
    pub fn new(value: bool) -> Self {
        Self {
            value,
            full_res_count: 0,
            reduced_res_count: 0,
            corrupted: false,
            reads: 0,
            writes: 0,
        }
    }

    /// The stored bit.
    pub fn value(&self) -> bool {
        self.value
    }

    /// Voltage of the true storage node `S` for a given supply: `V_DD` when
    /// the cell stores `1`, ground otherwise.
    pub fn node_s(&self, vdd: Volts) -> Volts {
        if self.value {
            vdd
        } else {
            Volts::ZERO
        }
    }

    /// Voltage of the complementary storage node `SB`.
    pub fn node_sb(&self, vdd: Volts) -> Volts {
        if self.value {
            Volts::ZERO
        } else {
            vdd
        }
    }

    /// Performs a write, clearing any pending corruption flag (the new data
    /// overwrites whatever damage the swap did).
    pub fn write(&mut self, value: bool) {
        self.value = value;
        self.corrupted = false;
        self.writes += 1;
    }

    /// Performs a read and returns the stored bit (possibly a corrupted
    /// value — the read itself cannot tell).
    pub fn read(&mut self) -> bool {
        self.reads += 1;
        self.value
    }

    /// Registers one full read-equivalent stress on this cell.
    pub fn apply_full_res(&mut self) {
        self.full_res_count += 1;
    }

    /// Registers one reduced read-equivalent stress (floating bit line still
    /// partially charged).
    pub fn apply_reduced_res(&mut self) {
        self.reduced_res_count += 1;
    }

    /// Forcibly overwrites the stored value through bit-line charge sharing
    /// (a faulty swap). Marks the cell corrupted only when the value
    /// actually changes.
    pub fn corrupt_to(&mut self, value: bool) {
        if self.value != value {
            self.value = value;
            self.corrupted = true;
        }
    }

    /// Returns `true` if the last value change was a faulty swap rather than
    /// a legitimate write.
    pub fn is_corrupted(&self) -> bool {
        self.corrupted
    }

    /// Number of full read-equivalent stresses seen so far.
    pub fn full_res_count(&self) -> u64 {
        self.full_res_count
    }

    /// Number of reduced read-equivalent stresses seen so far.
    pub fn reduced_res_count(&self) -> u64 {
        self.reduced_res_count
    }

    /// Number of read operations performed on this cell.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of write operations performed on this cell.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Clears stress counters and the corruption flag while keeping the
    /// stored data (used between March elements when only the stress of one
    /// element is of interest).
    pub fn reset_statistics(&mut self) {
        self.full_res_count = 0;
        self.reduced_res_count = 0;
        self.corrupted = false;
        self.reads = 0;
        self.writes = 0;
    }
}

impl Default for SramCell {
    /// A cell initialised to `0`, the conventional post-power-up background.
    fn default() -> Self {
        Self::new(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut cell = SramCell::default();
        assert!(!cell.value());
        cell.write(true);
        assert!(cell.read());
        cell.write(false);
        assert!(!cell.read());
        assert_eq!(cell.read_count(), 2);
        assert_eq!(cell.write_count(), 2);
    }

    #[test]
    fn node_voltages_follow_stored_value() {
        let vdd = Volts(1.6);
        let mut cell = SramCell::new(true);
        assert_eq!(cell.node_s(vdd), vdd);
        assert_eq!(cell.node_sb(vdd), Volts::ZERO);
        cell.write(false);
        assert_eq!(cell.node_s(vdd), Volts::ZERO);
        assert_eq!(cell.node_sb(vdd), vdd);
    }

    #[test]
    fn stress_counters_accumulate_independently() {
        let mut cell = SramCell::default();
        cell.apply_full_res();
        cell.apply_full_res();
        cell.apply_reduced_res();
        assert_eq!(cell.full_res_count(), 2);
        assert_eq!(cell.reduced_res_count(), 1);
        cell.reset_statistics();
        assert_eq!(cell.full_res_count(), 0);
        assert_eq!(cell.reduced_res_count(), 0);
    }

    #[test]
    fn corruption_only_flags_actual_flips() {
        let mut cell = SramCell::new(true);
        cell.corrupt_to(true);
        assert!(!cell.is_corrupted());
        cell.corrupt_to(false);
        assert!(cell.is_corrupted());
        assert!(!cell.value());
        // A legitimate write clears the flag.
        cell.write(true);
        assert!(!cell.is_corrupted());
    }
}
