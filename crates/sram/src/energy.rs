//! Per-cycle energy breakdown.
//!
//! Every executed cycle produces one [`CycleEnergy`] record with one field
//! per physical source. The field list mirrors the five sources the paper
//! analyses in its Section 5 (pre-charge circuits, array row transition,
//! `LPtest` driver, read-equivalent stress, modified control logic) plus
//! the operation-side contributors that make up `P_r`/`P_w` (bit-line
//! restoration on the selected column, word line, sense amplifier, write
//! driver, decoders and the lumped periphery).

use transient::units::{Joules, Seconds, Watts};

/// Energy spent during one clock cycle, broken down by physical source.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CycleEnergy {
    /// Pre-charge circuits replenishing the RES droop on unselected,
    /// pre-charged columns (the paper's `P_A` aggregated over columns).
    pub precharge_res: Joules,
    /// Pre-charge restoration of the selected column after its operation.
    pub precharge_selected: Joules,
    /// Pre-charge restoration of discharged bit lines during a
    /// row-transition (or any all-columns) restore cycle — the paper's
    /// `P_B` contribution.
    pub precharge_row_transition: Joules,
    /// Word-line charge/discharge.
    pub wordline: Joules,
    /// Sense-amplifier evaluation (reads only).
    pub sense_amp: Joules,
    /// Write-driver dissipation (writes only).
    pub write_driver: Joules,
    /// Row and column address decoders.
    pub decoders: Joules,
    /// Lumped periphery (control, clock tree, I/O).
    pub periphery: Joules,
    /// Modified pre-charge control logic (low-power mode only).
    pub control_logic: Joules,
    /// `LPtest` mode line driver (low-power mode, row transitions only).
    pub lptest_driver: Joules,
}

impl CycleEnergy {
    /// A cycle with no energy recorded yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy of the cycle.
    pub fn total(&self) -> Joules {
        self.precharge_res
            + self.precharge_selected
            + self.precharge_row_transition
            + self.wordline
            + self.sense_amp
            + self.write_driver
            + self.decoders
            + self.periphery
            + self.control_logic
            + self.lptest_driver
    }

    /// Total energy attributable to pre-charge activity (the quantity the
    /// paper's technique attacks).
    pub fn precharge_total(&self) -> Joules {
        self.precharge_res + self.precharge_selected + self.precharge_row_transition
    }

    /// Average power of the cycle given the clock period.
    ///
    /// # Panics
    ///
    /// Panics if `clock_period` is zero or negative.
    pub fn average_power(&self, clock_period: Seconds) -> Watts {
        self.total().over(clock_period)
    }

    /// Element-wise sum of two cycle records (useful when aggregating).
    pub fn accumulate(&mut self, other: &CycleEnergy) {
        self.precharge_res += other.precharge_res;
        self.precharge_selected += other.precharge_selected;
        self.precharge_row_transition += other.precharge_row_transition;
        self.wordline += other.wordline;
        self.sense_amp += other.sense_amp;
        self.write_driver += other.write_driver;
        self.decoders += other.decoders;
        self.periphery += other.periphery;
        self.control_logic += other.control_logic;
        self.lptest_driver += other.lptest_driver;
    }

    /// Iterates over `(source name, energy)` pairs in a fixed order.
    pub fn components(&self) -> [(&'static str, Joules); 10] {
        [
            ("precharge_res", self.precharge_res),
            ("precharge_selected", self.precharge_selected),
            ("precharge_row_transition", self.precharge_row_transition),
            ("wordline", self.wordline),
            ("sense_amp", self.sense_amp),
            ("write_driver", self.write_driver),
            ("decoders", self.decoders),
            ("periphery", self.periphery),
            ("control_logic", self.control_logic),
            ("lptest_driver", self.lptest_driver),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_components() {
        let mut e = CycleEnergy::new();
        e.precharge_res = Joules(1.0);
        e.precharge_selected = Joules(2.0);
        e.precharge_row_transition = Joules(3.0);
        e.wordline = Joules(4.0);
        e.sense_amp = Joules(5.0);
        e.write_driver = Joules(6.0);
        e.decoders = Joules(7.0);
        e.periphery = Joules(8.0);
        e.control_logic = Joules(9.0);
        e.lptest_driver = Joules(10.0);
        assert_eq!(e.total(), Joules(55.0));
        assert_eq!(e.precharge_total(), Joules(6.0));
        assert_eq!(e.components().len(), 10);
        let sum: Joules = e.components().iter().map(|(_, j)| *j).sum();
        assert_eq!(sum, e.total());
    }

    #[test]
    fn accumulate_adds_element_wise() {
        let mut a = CycleEnergy::new();
        a.wordline = Joules(1.0);
        let mut b = CycleEnergy::new();
        b.wordline = Joules(2.0);
        b.periphery = Joules(3.0);
        a.accumulate(&b);
        assert_eq!(a.wordline, Joules(3.0));
        assert_eq!(a.periphery, Joules(3.0));
    }

    #[test]
    fn average_power() {
        let mut e = CycleEnergy::new();
        e.periphery = Joules::from_picojoules(3.0);
        let p = e.average_power(Seconds::from_nanoseconds(3.0));
        assert!((p.to_milliwatts() - 1.0).abs() < 1e-9);
    }
}
