//! Bit-line pair model.
//!
//! Every column owns a complementary pair of bit lines `BL`/`BLB`. Their
//! voltages are the central analog state of the paper's technique:
//!
//! * with the **pre-charge circuit enabled**, both lines sit at `V_DD`
//!   between operations and are restored there after every droop;
//! * with the pre-charge **disabled** (the low-power test mode of the
//!   paper), the lines float: the selected cell of the active row pulls one
//!   of them towards ground by a fixed charge per cycle (constant-current
//!   discharge through the access transistor), reproducing the ≈ 9-cycle
//!   decay of Figure 6;
//! * a **write** drives one line to ground and the other to `V_DD`;
//! * a **read** develops a small differential swing which the pre-charge
//!   circuit replenishes in the second half of the cycle.

use transient::units::{Joules, Volts};

use crate::config::TechnologyParams;

/// Which of the two lines of a pair is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitLineSide {
    /// The true bit line `BL`.
    Bl,
    /// The complementary bit line `BLB`.
    Blb,
}

/// Voltage state of one column's bit-line pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitLinePair {
    bl: Volts,
    blb: Volts,
}

impl BitLinePair {
    /// A pair pre-charged to `vdd` (the state after power-up pre-charge).
    pub fn precharged(vdd: Volts) -> Self {
        Self { bl: vdd, blb: vdd }
    }

    /// Voltage of the true bit line.
    pub fn bl(&self) -> Volts {
        self.bl
    }

    /// Voltage of the complementary bit line.
    pub fn blb(&self) -> Volts {
        self.blb
    }

    /// Voltage of one side.
    pub fn side(&self, side: BitLineSide) -> Volts {
        match side {
            BitLineSide::Bl => self.bl,
            BitLineSide::Blb => self.blb,
        }
    }

    /// The lower of the two line voltages (used to decide whether the pair
    /// still provides any stress or needs a full restore).
    pub fn min_voltage(&self) -> Volts {
        self.bl.min(self.blb)
    }

    /// Returns `true` if both lines are within `tolerance` of `vdd`.
    pub fn is_fully_precharged(&self, vdd: Volts, tolerance: Volts) -> bool {
        (vdd - self.bl).abs() <= tolerance && (vdd - self.blb).abs() <= tolerance
    }

    /// Applies the discharge caused by a selected cell over one cycle while
    /// the pair floats (pre-charge disabled). The cell pulls the line on the
    /// side of its `0` node: `BL` when the cell stores `0`, `BLB` when it
    /// stores `1`. Returns the side that was discharged.
    pub fn float_discharge_by_cell(
        &mut self,
        cell_value: bool,
        technology: &TechnologyParams,
    ) -> BitLineSide {
        let side = if cell_value {
            BitLineSide::Blb
        } else {
            BitLineSide::Bl
        };
        let dv = technology.floating_discharge_per_cycle();
        let v = self.side_mut(side);
        *v = (*v - dv).max(Volts::ZERO);
        side
    }

    /// Drives the pair for a write of `value`: the line opposite to the
    /// written value is pulled to ground, the other to `vdd`. Returns the
    /// energy dissipated in the write driver (pulling the high line down).
    pub fn drive_write(&mut self, value: bool, technology: &TechnologyParams) -> Joules {
        let vdd = technology.vdd;
        let (high, low) = if value {
            (BitLineSide::Bl, BitLineSide::Blb)
        } else {
            (BitLineSide::Blb, BitLineSide::Bl)
        };
        // Energy to discharge the low-going line from its present level.
        let discharged_from = self.side(low);
        let dissipated = Joules(
            technology.bitline_capacitance.value() * discharged_from.value().max(0.0) * vdd.value(),
        ) * 0.5;
        *self.side_mut(low) = Volts::ZERO;
        *self.side_mut(high) = vdd;
        dissipated
    }

    /// Develops the read swing for a cell storing `value`: the line on the
    /// cell's `0` side droops by the configured read swing.
    pub fn develop_read_swing(&mut self, value: bool, technology: &TechnologyParams) {
        let side = if value {
            BitLineSide::Blb
        } else {
            BitLineSide::Bl
        };
        let v = self.side_mut(side);
        *v = (*v - technology.read_bitline_swing).max(Volts::ZERO);
    }

    /// Restores both lines to `vdd` and returns the energy drawn from the
    /// supply by the pre-charge circuit (`C·V_DD·ΔV` per line).
    pub fn restore(&mut self, technology: &TechnologyParams) -> Joules {
        let vdd = technology.vdd;
        let c = technology.bitline_capacitance;
        let delta = (vdd - self.bl).max(Volts::ZERO) + (vdd - self.blb).max(Volts::ZERO);
        self.bl = vdd;
        self.blb = vdd;
        Joules(c.value() * vdd.value() * delta.value())
    }

    fn side_mut(&mut self, side: BitLineSide) -> &mut Volts {
        match side {
            BitLineSide::Bl => &mut self.bl,
            BitLineSide::Blb => &mut self.blb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> TechnologyParams {
        TechnologyParams::default_013um()
    }

    #[test]
    fn precharged_pair_is_at_vdd() {
        let t = tech();
        let pair = BitLinePair::precharged(t.vdd);
        assert!(pair.is_fully_precharged(t.vdd, Volts(1e-9)));
        assert_eq!(pair.min_voltage(), t.vdd);
    }

    #[test]
    fn floating_discharge_targets_the_zero_side() {
        let t = tech();
        let mut pair = BitLinePair::precharged(t.vdd);
        // Cell stores 0 → BL (true line) is pulled down.
        let side = pair.float_discharge_by_cell(false, &t);
        assert_eq!(side, BitLineSide::Bl);
        assert!(pair.bl() < t.vdd);
        assert_eq!(pair.blb(), t.vdd);

        let mut pair = BitLinePair::precharged(t.vdd);
        let side = pair.float_discharge_by_cell(true, &t);
        assert_eq!(side, BitLineSide::Blb);
        assert!(pair.blb() < t.vdd);
    }

    #[test]
    fn floating_discharge_reaches_ground_in_about_nine_cycles() {
        let t = tech();
        let mut pair = BitLinePair::precharged(t.vdd);
        let mut cycles = 0;
        while pair.bl().value() > 0.05 && cycles < 100 {
            pair.float_discharge_by_cell(false, &t);
            cycles += 1;
        }
        assert!(
            (8..=11).contains(&cycles),
            "discharge took {cycles} cycles, expected ~9"
        );
        // Clamped at ground, never negative.
        for _ in 0..5 {
            pair.float_discharge_by_cell(false, &t);
        }
        assert!(pair.bl().value() >= 0.0);
    }

    #[test]
    fn write_drives_full_swing_and_dissipates_energy() {
        let t = tech();
        let mut pair = BitLinePair::precharged(t.vdd);
        let e = pair.drive_write(false, &t);
        assert_eq!(pair.bl(), Volts::ZERO);
        assert_eq!(pair.blb(), t.vdd);
        assert!(e.value() > 0.0);

        // Writing into an already-written pair of the same polarity costs
        // nothing in the driver (the low line is already low).
        let e2 = pair.drive_write(false, &t);
        assert_eq!(e2, Joules::ZERO);
    }

    #[test]
    fn read_swing_and_restore_energy_accounting() {
        let t = tech();
        let mut pair = BitLinePair::precharged(t.vdd);
        pair.develop_read_swing(true, &t);
        assert!(pair.blb() < t.vdd);
        let e = pair.restore(&t);
        let expected = t.read_restore_energy();
        assert!((e.value() - expected.value()).abs() / expected.value() < 1e-9);
        assert!(pair.is_fully_precharged(t.vdd, Volts(1e-12)));

        // Restoring a fully-discharged line costs C·Vdd².
        let mut pair = BitLinePair::precharged(t.vdd);
        pair.drive_write(true, &t);
        let e = pair.restore(&t);
        assert!((e.value() - t.full_bitline_restore_energy().value()).abs() < 1e-18);
    }

    #[test]
    fn side_accessors() {
        let t = tech();
        let mut pair = BitLinePair::precharged(t.vdd);
        pair.drive_write(true, &t);
        assert_eq!(pair.side(BitLineSide::Bl), t.vdd);
        assert_eq!(pair.side(BitLineSide::Blb), Volts::ZERO);
        assert_eq!(pair.min_voltage(), Volts::ZERO);
    }
}
