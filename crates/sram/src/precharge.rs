//! Per-column pre-charge circuit model.
//!
//! A pre-charge circuit is a pair of pull-up devices plus an equalizer that
//! hold both bit lines of its column at `V_DD` whenever it is enabled. In
//! the functional mode of the paper every column's circuit is enabled all
//! the time (apart from the operation half-cycle on the selected column);
//! in the low-power test mode it is enabled only for the selected column
//! and the next one. The model tracks the ON/OFF state, counts activations
//! and accumulates the supply energy it has delivered, so the experiment
//! layer can attribute pre-charge power exactly as the paper does.

use transient::units::Joules;

/// State and accounting of one column's pre-charge circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrechargeCircuit {
    enabled: bool,
    cycles_enabled: u64,
    cycles_disabled: u64,
    delivered: Joules,
}

impl PrechargeCircuit {
    /// A circuit in the enabled state (the functional-mode default).
    pub fn new() -> Self {
        Self {
            enabled: true,
            cycles_enabled: 0,
            cycles_disabled: 0,
            delivered: Joules::ZERO,
        }
    }

    /// Whether the circuit currently drives its bit lines.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables the circuit for the coming cycle and counts the
    /// cycle in the corresponding bucket.
    pub fn set_enabled_for_cycle(&mut self, enabled: bool) {
        self.enabled = enabled;
        if enabled {
            self.cycles_enabled += 1;
        } else {
            self.cycles_disabled += 1;
        }
    }

    /// Records supply energy delivered by this circuit.
    pub fn record_energy(&mut self, energy: Joules) {
        self.delivered += energy;
    }

    /// Total supply energy delivered so far.
    pub fn delivered_energy(&self) -> Joules {
        self.delivered
    }

    /// Number of cycles spent enabled.
    pub fn cycles_enabled(&self) -> u64 {
        self.cycles_enabled
    }

    /// Number of cycles spent disabled.
    pub fn cycles_disabled(&self) -> u64 {
        self.cycles_disabled
    }

    /// Fraction of observed cycles spent enabled (1.0 when no cycle has been
    /// observed yet, matching the always-on functional default).
    pub fn duty_cycle(&self) -> f64 {
        let total = self.cycles_enabled + self.cycles_disabled;
        if total == 0 {
            1.0
        } else {
            self.cycles_enabled as f64 / total as f64
        }
    }
}

impl Default for PrechargeCircuit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_enabled_with_full_duty() {
        let pc = PrechargeCircuit::new();
        assert!(pc.is_enabled());
        assert_eq!(pc.duty_cycle(), 1.0);
        assert_eq!(pc.delivered_energy(), Joules::ZERO);
    }

    #[test]
    fn cycle_accounting() {
        let mut pc = PrechargeCircuit::new();
        pc.set_enabled_for_cycle(true);
        pc.set_enabled_for_cycle(false);
        pc.set_enabled_for_cycle(false);
        pc.set_enabled_for_cycle(true);
        assert_eq!(pc.cycles_enabled(), 2);
        assert_eq!(pc.cycles_disabled(), 2);
        assert!((pc.duty_cycle() - 0.5).abs() < 1e-12);
        assert!(pc.is_enabled());
    }

    #[test]
    fn energy_accumulates() {
        let mut pc = PrechargeCircuit::new();
        pc.record_energy(Joules::from_femtojoules(72.0));
        pc.record_energy(Joules::from_femtojoules(28.0));
        assert!((pc.delivered_energy().to_femtojoules() - 100.0).abs() < 1e-9);
    }
}
