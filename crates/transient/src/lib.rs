//! First-order analog transient substrate used in place of Spice.
//!
//! The paper this workspace reproduces ("Minimizing Test Power in SRAM
//! through Reduction of Pre-charge Activity", DATE 2006) validates its
//! technique with Spice simulations of a 0.13 µm SRAM. We do not have the
//! authors' transistor models or a Spice engine, so this crate provides the
//! minimal analog machinery their conclusions rest on:
//!
//! * strongly-typed electrical [`units`] (volts, farads, ohms, seconds,
//!   joules, watts) so that energy accounting cannot silently mix quantities,
//! * analytic [`rc`] charge/discharge behaviour (the floating bit-line
//!   discharge of Figure 6 is a single RC decay),
//! * capacitive [`charge_share`] redistribution (the faulty-swap mechanism of
//!   Figure 7 is charge sharing between a large bit line and a tiny cell
//!   node),
//! * [`energy`] helpers implementing the `E = C · V_DD · ΔV` accounting used
//!   for every pre-charge restoration event,
//! * [`waveform`] containers for sampled node voltages (the "figures"), and
//! * a small [`netlist`] + forward-Euler [`solver`] for cases where the
//!   closed-form expressions are not enough (e.g. a cell fighting an active
//!   pre-charge pull-up).
//!
//! # Example
//!
//! ```
//! use transient::prelude::*;
//!
//! // A 500 fF bit line floating at VDD, discharged through a cell pull-down
//! // of 150 kΩ: how long until it crosses the logic-'0' threshold?
//! let rc = RcDischarge::new(Ohms(150e3), Farads(500e-15), Volts(1.6));
//! let t = rc.time_to_reach(Volts(0.8)).expect("threshold below start");
//! assert!(t.0 > 0.0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charge_share;
pub mod energy;
pub mod netlist;
pub mod rc;
pub mod solver;
pub mod units;
pub mod waveform;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::charge_share::{share_charge, ChargeShareOutcome};
    pub use crate::energy::{restoration_energy, switching_energy, EnergyBudget};
    pub use crate::netlist::{Netlist, NodeId};
    pub use crate::rc::{RcCharge, RcDischarge};
    pub use crate::solver::{SolverConfig, TransientSolver};
    pub use crate::units::{Amps, Farads, Joules, Ohms, Seconds, Volts, Watts};
    pub use crate::waveform::{Sample, Waveform};
}
