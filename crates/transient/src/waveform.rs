//! Sampled voltage waveforms.
//!
//! The paper's figures are Spice waveforms: the pre-charge phase diagrams of
//! Figure 2, the floating bit-line discharge of Figure 6 and the faulty-swap
//! trace of Figure 7. [`Waveform`] is the container those reproductions are
//! emitted into: a time-ordered list of `(time, voltage)` samples with the
//! handful of measurements the experiments need (value interpolation,
//! threshold-crossing time, min/max, settling check) plus CSV/ASCII export
//! for the `repro` binary.

use crate::units::{Seconds, Volts};
use std::fmt::Write as _;

/// One `(time, voltage)` point of a waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Sample time.
    pub time: Seconds,
    /// Node voltage at that time.
    pub voltage: Volts,
}

/// A named, time-ordered sequence of voltage samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    name: String,
    samples: Vec<Sample>,
}

impl Waveform {
    /// Creates an empty waveform with a signal name (e.g. `"BL"`, `"SB"`).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The signal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous sample (waveforms are
    /// strictly time-ordered).
    pub fn push(&mut self, time: Seconds, voltage: Volts) {
        if let Some(last) = self.samples.last() {
            assert!(
                time.value() >= last.time.value(),
                "samples must be time-ordered: {} after {}",
                time,
                last.time
            );
        }
        self.samples.push(Sample { time, voltage });
    }

    /// Builds a waveform by sampling a closure at a fixed step over
    /// `[0, duration]` (inclusive of both ends).
    pub fn sample_fn(
        name: impl Into<String>,
        duration: Seconds,
        step: Seconds,
        mut f: impl FnMut(Seconds) -> Volts,
    ) -> Self {
        assert!(step.value() > 0.0, "step must be positive");
        let mut w = Self::new(name);
        let mut t = 0.0;
        while t <= duration.value() + step.value() * 0.5 {
            let ts = Seconds(t.min(duration.value()));
            w.push(ts, f(ts));
            t += step.value();
        }
        w
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the waveform holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Read-only access to the samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Linearly interpolated voltage at an arbitrary time inside the sampled
    /// span. Returns `None` outside of the span or if the waveform is empty.
    pub fn voltage_at(&self, t: Seconds) -> Option<Volts> {
        if self.samples.is_empty() {
            return None;
        }
        let first = self.samples.first().unwrap();
        let last = self.samples.last().unwrap();
        if t < first.time || t > last.time {
            return None;
        }
        // Find the first sample at or after t.
        let idx = self.samples.partition_point(|s| s.time.value() < t.value());
        if idx == 0 {
            return Some(first.voltage);
        }
        let hi = self.samples[idx.min(self.samples.len() - 1)];
        let lo = self.samples[idx - 1];
        if (hi.time.value() - lo.time.value()).abs() < f64::EPSILON {
            return Some(hi.voltage);
        }
        let frac = (t.value() - lo.time.value()) / (hi.time.value() - lo.time.value());
        Some(Volts(
            lo.voltage.value() + frac * (hi.voltage.value() - lo.voltage.value()),
        ))
    }

    /// Time of the first crossing of `threshold` in the given direction
    /// (`falling = true` looks for a high→low crossing), using linear
    /// interpolation between bracketing samples.
    pub fn first_crossing(&self, threshold: Volts, falling: bool) -> Option<Seconds> {
        for pair in self.samples.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let crossed = if falling {
                a.voltage >= threshold && b.voltage < threshold
            } else {
                a.voltage <= threshold && b.voltage > threshold
            };
            if crossed {
                let dv = b.voltage.value() - a.voltage.value();
                if dv.abs() < f64::EPSILON {
                    return Some(b.time);
                }
                let frac = (threshold.value() - a.voltage.value()) / dv;
                let dt = b.time.value() - a.time.value();
                return Some(Seconds(a.time.value() + frac * dt));
            }
        }
        None
    }

    /// Minimum voltage over the waveform.
    pub fn min_voltage(&self) -> Option<Volts> {
        self.samples
            .iter()
            .map(|s| s.voltage)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: Volts| a.min(v))))
    }

    /// Maximum voltage over the waveform.
    pub fn max_voltage(&self) -> Option<Volts> {
        self.samples
            .iter()
            .map(|s| s.voltage)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: Volts| a.max(v))))
    }

    /// Returns `true` if the tail of the waveform (its last `tail_fraction`
    /// of samples) stays within `tolerance` of the final value — i.e. the
    /// signal has settled.
    pub fn is_settled(&self, tail_fraction: f64, tolerance: Volts) -> bool {
        if self.samples.is_empty() {
            return false;
        }
        let final_v = self.samples.last().unwrap().voltage;
        let start = ((self.samples.len() as f64) * (1.0 - tail_fraction)).floor() as usize;
        self.samples[start.min(self.samples.len() - 1)..]
            .iter()
            .all(|s| (s.voltage - final_v).abs() <= tolerance)
    }

    /// Renders the waveform as CSV (`time_ns,voltage_v` per line) for
    /// external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ns,voltage_v\n");
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{:.4},{:.6}",
                s.time.to_nanoseconds(),
                s.voltage.value()
            );
        }
        out
    }

    /// Renders a coarse ASCII plot (one row per sample bucket) used by the
    /// `repro` binary to show figure shapes directly in a terminal.
    pub fn to_ascii(&self, width: usize, rows: usize) -> String {
        if self.samples.is_empty() || width == 0 || rows == 0 {
            return String::new();
        }
        let vmin = self.min_voltage().unwrap().value();
        let vmax = self.max_voltage().unwrap().value().max(vmin + 1e-12);
        let t0 = self.samples.first().unwrap().time.value();
        let t1 = self.samples.last().unwrap().time.value().max(t0 + 1e-18);
        let mut out = String::new();
        for r in 0..rows {
            let frac = r as f64 / (rows - 1).max(1) as f64;
            let t = t0 + frac * (t1 - t0);
            let v = self
                .voltage_at(Seconds(t))
                .unwrap_or(self.samples.last().unwrap().voltage)
                .value();
            let col =
                (((v - vmin) / (vmax - vmin)) * (width.saturating_sub(1)) as f64).round() as usize;
            let _ = write!(out, "{:>8.2} ns |", t * 1e9);
            for c in 0..width {
                out.push(if c == col { '*' } else { ' ' });
            }
            let _ = writeln!(out, "| {:.3} V", v);
        }
        out
    }
}

impl FromIterator<Sample> for Waveform {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        let mut w = Waveform::new("unnamed");
        for s in iter {
            w.push(s.time, s.voltage);
        }
        w
    }
}

impl Extend<Sample> for Waveform {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        for s in iter {
            self.push(s.time, s.voltage);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        // 0 V to 1.6 V over 8 ns in 1 ns steps.
        Waveform::sample_fn(
            "ramp",
            Seconds::from_nanoseconds(8.0),
            Seconds::from_nanoseconds(1.0),
            |t| Volts(t.to_nanoseconds() * 0.2),
        )
    }

    #[test]
    fn sample_fn_covers_both_ends() {
        let w = ramp();
        assert_eq!(w.len(), 9);
        assert_eq!(w.samples()[0].voltage, Volts(0.0));
        assert!((w.last().unwrap().voltage.value() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn interpolation_between_samples() {
        let w = ramp();
        let v = w.voltage_at(Seconds::from_nanoseconds(2.5)).unwrap();
        assert!((v.value() - 0.5).abs() < 1e-12);
        assert!(w.voltage_at(Seconds::from_nanoseconds(9.0)).is_none());
        assert!(w.voltage_at(Seconds(-1.0)).is_none());
    }

    #[test]
    fn rising_crossing_found() {
        let w = ramp();
        let t = w.first_crossing(Volts(0.8), false).unwrap();
        assert!((t.to_nanoseconds() - 4.0).abs() < 1e-9);
        assert!(w.first_crossing(Volts(0.8), true).is_none());
    }

    #[test]
    fn falling_crossing_found() {
        let w = Waveform::sample_fn(
            "fall",
            Seconds::from_nanoseconds(10.0),
            Seconds::from_nanoseconds(1.0),
            |t| Volts(1.6 - 0.16 * t.to_nanoseconds()),
        );
        let t = w.first_crossing(Volts(0.8), true).unwrap();
        assert!((t.to_nanoseconds() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_and_settled() {
        let w = ramp();
        assert_eq!(w.min_voltage().unwrap(), Volts(0.0));
        assert!((w.max_voltage().unwrap().value() - 1.6).abs() < 1e-12);
        assert!(!w.is_settled(0.5, Volts(0.01)));

        let flat = Waveform::sample_fn(
            "flat",
            Seconds::from_nanoseconds(5.0),
            Seconds::from_nanoseconds(1.0),
            |_| Volts(1.6),
        );
        assert!(flat.is_settled(0.5, Volts(0.001)));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut w = Waveform::new("x");
        w.push(Seconds::from_nanoseconds(2.0), Volts(1.0));
        w.push(Seconds::from_nanoseconds(1.0), Volts(1.0));
    }

    #[test]
    fn csv_and_ascii_render() {
        let w = ramp();
        let csv = w.to_csv();
        assert!(csv.starts_with("time_ns,voltage_v"));
        assert_eq!(csv.lines().count(), 10);
        let art = w.to_ascii(20, 5);
        assert_eq!(art.lines().count(), 5);
        assert!(art.contains('*'));
    }

    #[test]
    fn from_iterator_and_extend() {
        let samples = vec![
            Sample {
                time: Seconds(0.0),
                voltage: Volts(0.0),
            },
            Sample {
                time: Seconds(1e-9),
                voltage: Volts(1.0),
            },
        ];
        let mut w: Waveform = samples.clone().into_iter().collect();
        assert_eq!(w.len(), 2);
        w.extend(vec![Sample {
            time: Seconds(2e-9),
            voltage: Volts(1.5),
        }]);
        assert_eq!(w.len(), 3);
    }
}
