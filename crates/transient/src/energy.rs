//! Switching- and restoration-energy helpers.
//!
//! Every power number in the paper ultimately reduces to charging a
//! capacitance from a supply: restoring a bit line after a read, after a
//! read-equivalent stress (RES), or at a row transition. The energy drawn
//! from the supply to raise a capacitance `C` by `ΔV` towards a rail at
//! `V_DD` is `E = C · V_DD · ΔV`; the "dynamic switching energy" of a full
//! rail-to-rail transition is the familiar `C · V_DD²` (per charge event).

use crate::units::{Farads, Joules, Seconds, Volts, Watts};

/// Energy drawn from a supply at `vdd` to pull a capacitance `c` up by
/// `delta_v` (e.g. a pre-charge circuit restoring a bit line).
///
/// Negative `delta_v` (a discharge) draws no supply energy and returns zero.
pub fn restoration_energy(c: Farads, vdd: Volts, delta_v: Volts) -> Joules {
    Joules(c.value() * vdd.value() * delta_v.value().max(0.0))
}

/// Full rail-to-rail dynamic switching energy `C · V_DD²` for one
/// charge event of a node of capacitance `c`.
pub fn switching_energy(c: Farads, vdd: Volts) -> Joules {
    Joules(c.value() * vdd.value() * vdd.value())
}

/// Energy of a short-circuit/contention "fight" where a current `i_eq`
/// flows from the supply for a duration `dt` — used for the RES contention
/// between an ON pre-charge circuit and the pull-down of a selected cell in
/// an unselected column.
pub fn contention_energy(vdd: Volts, equivalent_resistance: f64, dt: Seconds) -> Joules {
    let i = vdd.value() / equivalent_resistance;
    Joules(vdd.value() * i * dt.value())
}

/// A small accumulator of named energy contributions. Useful when composing
/// the energy of one clock cycle out of several physical events before
/// handing a single number to the power meter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyBudget {
    entries: Vec<(String, Joules)>,
}

impl EnergyBudget {
    /// Creates an empty budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named contribution.
    pub fn add(&mut self, label: impl Into<String>, energy: Joules) -> &mut Self {
        self.entries.push((label.into(), energy));
        self
    }

    /// Total energy across all contributions.
    pub fn total(&self) -> Joules {
        self.entries.iter().map(|(_, e)| *e).sum()
    }

    /// Average power when the whole budget is spent over `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero or negative.
    pub fn average_power(&self, dt: Seconds) -> Watts {
        self.total().over(dt)
    }

    /// Iterates over the named contributions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Joules)> {
        self.entries.iter().map(|(l, e)| (l.as_str(), *e))
    }

    /// Number of contributions recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no contribution has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restoration_energy_formula() {
        let e = restoration_energy(Farads(500e-15), Volts(1.6), Volts(0.4));
        assert!((e.to_femtojoules() - 320.0).abs() < 1e-9);
    }

    #[test]
    fn restoration_energy_zero_for_discharge() {
        let e = restoration_energy(Farads(500e-15), Volts(1.6), Volts(-0.4));
        assert_eq!(e, Joules::ZERO);
    }

    #[test]
    fn switching_energy_full_swing() {
        let e = switching_energy(Farads(500e-15), Volts(1.6));
        assert!((e.to_picojoules() - 1.28).abs() < 1e-9);
    }

    #[test]
    fn contention_energy_scales_with_time() {
        let e1 = contention_energy(Volts(1.6), 1.0e6, Seconds::from_nanoseconds(1.5));
        let e2 = contention_energy(Volts(1.6), 1.0e6, Seconds::from_nanoseconds(3.0));
        assert!((e2.value() / e1.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn budget_accumulates_and_reports_power() {
        let mut b = EnergyBudget::new();
        assert!(b.is_empty());
        b.add("bitline", Joules::from_femtojoules(320.0))
            .add("wordline", Joules::from_femtojoules(180.0));
        assert_eq!(b.len(), 2);
        assert!((b.total().to_femtojoules() - 500.0).abs() < 1e-9);
        let p = b.average_power(Seconds::from_nanoseconds(3.0));
        assert!((p.to_microwatts() - 500.0e-15 / 3.0e-9 * 1e6).abs() < 1e-6);
        let labels: Vec<&str> = b.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["bitline", "wordline"]);
    }
}
