//! Analytic single-pole RC charge and discharge behaviour.
//!
//! The central analog phenomenon of the paper is a *floating* bit line (its
//! pre-charge circuit switched off) being discharged towards ground by the
//! pull-down path of a selected cell storing a '0'. The paper's Spice plots
//! (Figure 6) show this discharge taking roughly nine 3 ns clock cycles.
//! With the pre-charge transistor off, the circuit is a single capacitor
//! (the bit line) discharging through a single resistance (the series
//! access + driver transistors of the cell), i.e. the textbook
//! `v(t) = V₀ · e^(−t/RC)` decay modelled here.

use crate::units::{Farads, Joules, Ohms, Seconds, Volts};

/// Exponential discharge of a capacitor through a resistance towards a
/// final voltage (ground by default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcDischarge {
    resistance: Ohms,
    capacitance: Farads,
    start: Volts,
    target: Volts,
}

impl RcDischarge {
    /// Discharge from `start` towards 0 V through `resistance` with the
    /// capacitor `capacitance`.
    ///
    /// # Panics
    ///
    /// Panics if the resistance or capacitance is not strictly positive.
    pub fn new(resistance: Ohms, capacitance: Farads, start: Volts) -> Self {
        Self::towards(resistance, capacitance, start, Volts::ZERO)
    }

    /// Discharge (or converge) from `start` towards an arbitrary `target`
    /// voltage — used for a cell node fighting a divider, or a bit line that
    /// settles at an intermediate level.
    ///
    /// # Panics
    ///
    /// Panics if the resistance or capacitance is not strictly positive.
    pub fn towards(resistance: Ohms, capacitance: Farads, start: Volts, target: Volts) -> Self {
        assert!(resistance.value() > 0.0, "resistance must be positive");
        assert!(capacitance.value() > 0.0, "capacitance must be positive");
        Self {
            resistance,
            capacitance,
            start,
            target,
        }
    }

    /// The RC time constant `τ = R · C`.
    pub fn time_constant(&self) -> Seconds {
        self.resistance * self.capacitance
    }

    /// The starting voltage.
    pub fn start_voltage(&self) -> Volts {
        self.start
    }

    /// The asymptotic target voltage.
    pub fn target_voltage(&self) -> Volts {
        self.target
    }

    /// Voltage after an elapsed time `t`:
    /// `v(t) = target + (start − target) · e^(−t/τ)`.
    pub fn voltage_at(&self, t: Seconds) -> Volts {
        let tau = self.time_constant().value();
        let delta = self.start - self.target;
        self.target + delta * (-t.value() / tau).exp()
    }

    /// Time at which the waveform crosses `threshold`, or `None` if it never
    /// does (threshold outside the `[target, start]` span, or equal to the
    /// asymptote).
    pub fn time_to_reach(&self, threshold: Volts) -> Option<Seconds> {
        let delta0 = (self.start - self.target).value();
        let delta_th = (threshold - self.target).value();
        if delta0 == 0.0 {
            return None;
        }
        let ratio = delta_th / delta0;
        if ratio <= 0.0 || ratio > 1.0 {
            return None;
        }
        let tau = self.time_constant().value();
        Some(Seconds(-tau * ratio.ln()))
    }

    /// Energy dissipated in the resistive path between `t0` and `t1`.
    ///
    /// For a discharge towards ground the capacitor energy difference is all
    /// converted to heat in the resistance:
    /// `E = ½·C·(v(t0)² − v(t1)²)` referenced to the target voltage.
    pub fn dissipated_between(&self, t0: Seconds, t1: Seconds) -> Joules {
        let v0 = (self.voltage_at(t0) - self.target).value();
        let v1 = (self.voltage_at(t1) - self.target).value();
        Joules(0.5 * self.capacitance.value() * (v0 * v0 - v1 * v1).max(0.0))
    }
}

/// Exponential charge of a capacitor through a resistance towards a supply
/// voltage, accounting for both the energy stored and the energy dissipated
/// in the charging path (each `½·C·ΔV²` for a full charge, `C·V_DD·ΔV`
/// drawn from the supply).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcCharge {
    resistance: Ohms,
    capacitance: Farads,
    start: Volts,
    supply: Volts,
}

impl RcCharge {
    /// Charge from `start` towards `supply` through `resistance`.
    ///
    /// # Panics
    ///
    /// Panics if the resistance or capacitance is not strictly positive, or
    /// if `supply < start` (use [`RcDischarge`] for downward transitions).
    pub fn new(resistance: Ohms, capacitance: Farads, start: Volts, supply: Volts) -> Self {
        assert!(resistance.value() > 0.0, "resistance must be positive");
        assert!(capacitance.value() > 0.0, "capacitance must be positive");
        assert!(
            supply.value() >= start.value(),
            "supply must not be below the starting voltage"
        );
        Self {
            resistance,
            capacitance,
            start,
            supply,
        }
    }

    /// The RC time constant `τ = R · C`.
    pub fn time_constant(&self) -> Seconds {
        self.resistance * self.capacitance
    }

    /// Voltage after an elapsed time `t`:
    /// `v(t) = supply − (supply − start) · e^(−t/τ)`.
    pub fn voltage_at(&self, t: Seconds) -> Volts {
        let tau = self.time_constant().value();
        let delta = self.supply - self.start;
        self.supply - delta * (-t.value() / tau).exp()
    }

    /// Time to reach a voltage `threshold` between `start` and `supply`.
    pub fn time_to_reach(&self, threshold: Volts) -> Option<Seconds> {
        let delta0 = (self.supply - self.start).value();
        let remaining = (self.supply - threshold).value();
        if delta0 <= 0.0 {
            return None;
        }
        let ratio = remaining / delta0;
        if ratio <= 0.0 || ratio > 1.0 {
            return None;
        }
        let tau = self.time_constant().value();
        Some(Seconds(-tau * ratio.ln()))
    }

    /// Energy drawn from the supply to charge the capacitor fully from
    /// `start` to `supply`: `E = C · V_supply · (V_supply − V_start)`.
    ///
    /// Half of it ends up stored on the capacitor and half is dissipated in
    /// the charging resistance; the *supply* energy is what a power meter at
    /// the V_DD pin observes, which is what the paper's pre-charge power
    /// numbers refer to.
    pub fn supply_energy(&self) -> Joules {
        let dv = (self.supply - self.start).value();
        Joules(self.capacitance.value() * self.supply.value() * dv)
    }

    /// Energy drawn from the supply to charge only up to time `t`.
    pub fn supply_energy_until(&self, t: Seconds) -> Joules {
        let dv = (self.voltage_at(t) - self.start).value();
        Joules(self.capacitance.value() * self.supply.value() * dv.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitline_discharge() -> RcDischarge {
        // 500 fF bit line, ~1.2 MΩ effective cell pull-down path, 1.6 V.
        RcDischarge::new(Ohms(1.2e6), Farads::from_femtofarads(500.0), Volts(1.6))
    }

    #[test]
    fn discharge_monotonically_decreasing() {
        let rc = bitline_discharge();
        let mut prev = rc.voltage_at(Seconds::ZERO);
        assert_eq!(prev, Volts(1.6));
        for i in 1..100 {
            let v = rc.voltage_at(Seconds::from_nanoseconds(i as f64));
            assert!(v < prev, "voltage must strictly decrease");
            assert!(v.value() >= 0.0);
            prev = v;
        }
    }

    #[test]
    fn discharge_time_constant_point() {
        let rc = bitline_discharge();
        let tau = rc.time_constant();
        let v = rc.voltage_at(tau);
        // e^-1 of 1.6 V
        assert!((v.value() - 1.6 * (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn discharge_threshold_crossing_consistent() {
        let rc = bitline_discharge();
        let th = Volts(0.8);
        let t = rc.time_to_reach(th).expect("crosses threshold");
        let v = rc.voltage_at(t);
        assert!((v.value() - th.value()).abs() < 1e-9);
    }

    #[test]
    fn discharge_never_reaches_voltage_above_start() {
        let rc = bitline_discharge();
        assert!(rc.time_to_reach(Volts(1.7)).is_none());
        assert!(rc.time_to_reach(Volts(0.0)).is_none());
        assert!(rc.time_to_reach(Volts(-0.1)).is_none());
    }

    #[test]
    fn discharge_towards_intermediate_target() {
        let rc = RcDischarge::towards(
            Ohms::from_kilo_ohms(100.0),
            Farads::from_femtofarads(2.0),
            Volts(1.6),
            Volts(0.4),
        );
        // Converges to 0.4 V, never below.
        let v_late = rc.voltage_at(Seconds::from_nanoseconds(1000.0));
        assert!((v_late.value() - 0.4).abs() < 1e-6);
    }

    #[test]
    fn discharge_energy_is_half_cv_squared_total() {
        let rc = bitline_discharge();
        let e = rc.dissipated_between(Seconds::ZERO, Seconds(1.0));
        let expected = 0.5 * 500e-15 * 1.6 * 1.6;
        assert!((e.value() - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn charge_reaches_supply() {
        let rc = RcCharge::new(
            Ohms::from_kilo_ohms(2.0),
            Farads::from_femtofarads(500.0),
            Volts(0.0),
            Volts(1.6),
        );
        let v = rc.voltage_at(Seconds::from_nanoseconds(100.0));
        assert!((v.value() - 1.6).abs() < 1e-6);
        let t = rc.time_to_reach(Volts(1.5)).expect("reaches 1.5 V");
        assert!(rc.voltage_at(t).value() - 1.5 < 1e-9);
    }

    #[test]
    fn charge_supply_energy_full_swing() {
        let rc = RcCharge::new(
            Ohms::from_kilo_ohms(2.0),
            Farads::from_femtofarads(500.0),
            Volts(0.0),
            Volts(1.6),
        );
        // E = C * Vdd^2 for a full swing.
        assert!((rc.supply_energy().to_picojoules() - 1.28).abs() < 1e-9);
        // Partial charge draws strictly less.
        let partial = rc.supply_energy_until(Seconds::from_nanoseconds(1.0));
        assert!(partial < rc.supply_energy());
        assert!(partial.value() > 0.0);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let _ = RcDischarge::new(Ohms(0.0), Farads(1e-15), Volts(1.0));
    }

    #[test]
    #[should_panic(expected = "supply must not be below")]
    fn charge_with_inverted_supply_rejected() {
        let _ = RcCharge::new(Ohms(1.0), Farads(1e-15), Volts(1.6), Volts(0.0));
    }
}
