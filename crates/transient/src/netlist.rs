//! A very small circuit netlist.
//!
//! Some of the paper's scenarios are not a single RC pole: a cell fighting
//! an active pre-charge pull-up is a resistive divider charging/discharging
//! two coupled capacitors, and the Figure 5 testbench connects two cells and
//! a bit-line pair through switches (the access transistors). This module
//! provides just enough structure to describe such circuits — nodes with
//! grounded capacitors, resistors between nodes, switch-gated resistors and
//! ideal voltage sources — for the forward-Euler [`solver`](crate::solver)
//! to integrate.

use crate::units::{Farads, Ohms, Volts};

/// Identifier of a node created by [`Netlist::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index of the node inside its netlist.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a switch created by [`Netlist::add_switch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(pub(crate) usize);

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct NodeDef {
    pub(crate) name: String,
    pub(crate) capacitance: Farads,
    pub(crate) initial: Volts,
    /// If set, the node is an ideal source pinned at `initial` volts.
    pub(crate) pinned: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ResistorDef {
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    pub(crate) resistance: Ohms,
    /// If `Some`, the resistor only conducts while the switch is closed.
    pub(crate) gated_by: Option<SwitchId>,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SwitchDef {
    pub(crate) name: String,
    pub(crate) closed: bool,
}

/// Builder/owner of a small circuit.
///
/// # Example
///
/// ```
/// use transient::prelude::*;
///
/// let mut net = Netlist::new();
/// let vdd = net.add_source("VDD", Volts(1.6));
/// let bl = net.add_node("BL", Farads(500e-15), Volts(1.6));
/// net.add_resistor(vdd, bl, Ohms(2_000.0)); // pre-charge pull-up
/// assert_eq!(net.node_count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    pub(crate) nodes: Vec<NodeDef>,
    pub(crate) resistors: Vec<ResistorDef>,
    pub(crate) switches: Vec<SwitchDef>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a capacitive node with an initial voltage.
    ///
    /// # Panics
    ///
    /// Panics if `capacitance` is not strictly positive.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        capacitance: Farads,
        initial: Volts,
    ) -> NodeId {
        assert!(
            capacitance.value() > 0.0,
            "node capacitance must be positive"
        );
        self.nodes.push(NodeDef {
            name: name.into(),
            capacitance,
            initial,
            pinned: false,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds an ideal voltage source (a node pinned at a fixed voltage).
    pub fn add_source(&mut self, name: impl Into<String>, voltage: Volts) -> NodeId {
        self.nodes.push(NodeDef {
            name: name.into(),
            // Capacitance is irrelevant for a pinned node but must be valid.
            capacitance: Farads(1e-15),
            initial: voltage,
            pinned: true,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a resistor between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is not strictly positive or if either node id
    /// does not belong to this netlist.
    pub fn add_resistor(&mut self, a: NodeId, b: NodeId, resistance: Ohms) {
        self.push_resistor(a, b, resistance, None);
    }

    /// Adds a resistor that only conducts while `switch` is closed (models a
    /// pass/access transistor driven by a word line or a control signal).
    pub fn add_gated_resistor(&mut self, a: NodeId, b: NodeId, resistance: Ohms, switch: SwitchId) {
        self.push_resistor(a, b, resistance, Some(switch));
    }

    fn push_resistor(
        &mut self,
        a: NodeId,
        b: NodeId,
        resistance: Ohms,
        gated_by: Option<SwitchId>,
    ) {
        assert!(resistance.value() > 0.0, "resistance must be positive");
        assert!(a.0 < self.nodes.len(), "node a out of range");
        assert!(b.0 < self.nodes.len(), "node b out of range");
        assert_ne!(a, b, "resistor endpoints must differ");
        if let Some(s) = gated_by {
            assert!(s.0 < self.switches.len(), "switch out of range");
        }
        self.resistors.push(ResistorDef {
            a,
            b,
            resistance,
            gated_by,
        });
    }

    /// Declares a switch, initially open or closed.
    pub fn add_switch(&mut self, name: impl Into<String>, closed: bool) -> SwitchId {
        self.switches.push(SwitchDef {
            name: name.into(),
            closed,
        });
        SwitchId(self.switches.len() - 1)
    }

    /// Opens or closes a switch.
    ///
    /// # Panics
    ///
    /// Panics if the switch id does not belong to this netlist.
    pub fn set_switch(&mut self, switch: SwitchId, closed: bool) {
        self.switches[switch.0].closed = closed;
    }

    /// Returns whether a switch is currently closed.
    pub fn switch_closed(&self, switch: SwitchId) -> bool {
        self.switches[switch.0].closed
    }

    /// Re-pins a source node to a new voltage (e.g. toggling a word line).
    ///
    /// # Panics
    ///
    /// Panics if the node is not a source.
    pub fn set_source_voltage(&mut self, node: NodeId, voltage: Volts) {
        let def = &mut self.nodes[node.0];
        assert!(def.pinned, "node {} is not a source", def.name);
        def.initial = voltage;
    }

    /// Name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Number of nodes (sources included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of resistors.
    pub fn resistor_count(&self) -> usize {
        self.resistors.len()
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Returns `true` if the node is a pinned voltage source.
    pub fn is_source(&self, node: NodeId) -> bool {
        self.nodes[node.0].pinned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_circuit() {
        let mut net = Netlist::new();
        let vdd = net.add_source("VDD", Volts(1.6));
        let bl = net.add_node("BL", Farads(500e-15), Volts(1.6));
        let wl = net.add_switch("WL", false);
        let cell = net.add_node("S", Farads(2e-15), Volts(0.0));
        net.add_resistor(vdd, bl, Ohms(2000.0));
        net.add_gated_resistor(bl, cell, Ohms(50_000.0), wl);

        assert_eq!(net.node_count(), 3);
        assert_eq!(net.resistor_count(), 2);
        assert_eq!(net.switch_count(), 1);
        assert!(net.is_source(vdd));
        assert!(!net.is_source(bl));
        assert_eq!(net.node_name(bl), "BL");
        assert!(!net.switch_closed(wl));
        net.set_switch(wl, true);
        assert!(net.switch_closed(wl));
    }

    #[test]
    fn source_can_be_repinned() {
        let mut net = Netlist::new();
        let wl = net.add_source("WL", Volts(0.0));
        net.set_source_voltage(wl, Volts(1.6));
        assert_eq!(net.nodes[0].initial, Volts(1.6));
    }

    #[test]
    #[should_panic(expected = "is not a source")]
    fn repinning_a_capacitive_node_panics() {
        let mut net = Netlist::new();
        let bl = net.add_node("BL", Farads(1e-15), Volts(0.0));
        net.set_source_voltage(bl, Volts(1.0));
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_loop_rejected() {
        let mut net = Netlist::new();
        let a = net.add_node("A", Farads(1e-15), Volts(0.0));
        net.add_resistor(a, a, Ohms(1.0));
    }

    #[test]
    #[should_panic(expected = "node capacitance must be positive")]
    fn zero_cap_node_rejected() {
        let mut net = Netlist::new();
        net.add_node("A", Farads(0.0), Volts(0.0));
    }
}
