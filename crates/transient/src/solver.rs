//! Forward-Euler transient solver over a [`Netlist`].
//!
//! For each non-pinned node `i` with capacitance `C_i`, the solver
//! integrates `C_i · dV_i/dt = Σ_j (V_j − V_i)/R_ij` over conducting
//! resistors, with pinned nodes held at their source voltage. The time step
//! is chosen as a fraction of the smallest RC product in the circuit so the
//! explicit integration stays stable. Energy drawn from each source node is
//! accumulated (`∫ V_source · I_source dt`) so experiments can meter supply
//! energy exactly the way the paper does.

use crate::netlist::{Netlist, NodeId};
use crate::units::{Joules, Seconds, Volts};
use crate::waveform::Waveform;
use std::collections::BTreeMap;

/// Configuration of a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Total simulated time.
    pub duration: Seconds,
    /// Integration step. If `None`, the solver picks `min(RC)/20`.
    pub step: Option<Seconds>,
    /// Interval at which node voltages are recorded into waveforms. If
    /// `None`, every integration step is recorded.
    pub record_every: Option<Seconds>,
}

impl SolverConfig {
    /// Convenience constructor: simulate for `duration` with automatic step
    /// selection and full-rate recording.
    pub fn for_duration(duration: Seconds) -> Self {
        Self {
            duration,
            step: None,
            record_every: None,
        }
    }
}

/// Result of a transient run: per-node waveforms and per-source supplied
/// energy.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    waveforms: BTreeMap<usize, Waveform>,
    source_energy: BTreeMap<usize, Joules>,
    final_voltages: Vec<Volts>,
    steps: usize,
}

impl TransientResult {
    /// Waveform recorded for `node`.
    pub fn waveform(&self, node: NodeId) -> Option<&Waveform> {
        self.waveforms.get(&node.index())
    }

    /// Final voltage of `node` at the end of the run.
    pub fn final_voltage(&self, node: NodeId) -> Volts {
        self.final_voltages[node.index()]
    }

    /// Energy delivered by the source `node` over the run. Zero for
    /// non-source nodes.
    pub fn source_energy(&self, node: NodeId) -> Joules {
        self.source_energy
            .get(&node.index())
            .copied()
            .unwrap_or(Joules::ZERO)
    }

    /// Total energy delivered by all sources.
    pub fn total_source_energy(&self) -> Joules {
        self.source_energy.values().copied().sum()
    }

    /// Number of integration steps taken.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

/// The transient integrator. Holds node state so that a circuit can be
/// simulated in several consecutive segments (switch changes between
/// segments, as when a word line rises mid-scenario).
#[derive(Debug, Clone)]
pub struct TransientSolver {
    netlist: Netlist,
    voltages: Vec<Volts>,
    time: Seconds,
}

impl TransientSolver {
    /// Creates a solver with every node at its initial/netlist voltage.
    pub fn new(netlist: Netlist) -> Self {
        let voltages = netlist.nodes.iter().map(|n| n.initial).collect();
        Self {
            netlist,
            voltages,
            time: Seconds::ZERO,
        }
    }

    /// Mutable access to the underlying netlist, used to toggle switches or
    /// re-pin sources between simulation segments.
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    /// Shared access to the underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Current voltage of a node.
    pub fn voltage(&self, node: NodeId) -> Volts {
        self.voltages[node.index()]
    }

    /// Overrides the voltage of a (non-pinned) node — used to set up a
    /// scenario, e.g. a bit line left discharged by a previous phase.
    ///
    /// # Panics
    ///
    /// Panics if the node is a pinned source (re-pin it instead).
    pub fn set_voltage(&mut self, node: NodeId, v: Volts) {
        assert!(
            !self.netlist.is_source(node),
            "cannot override the voltage of a source node"
        );
        self.voltages[node.index()] = v;
    }

    /// Simulated time elapsed so far.
    pub fn elapsed(&self) -> Seconds {
        self.time
    }

    fn auto_step(&self) -> Seconds {
        let mut min_rc = f64::INFINITY;
        for r in &self.netlist.resistors {
            for node in [r.a, r.b] {
                let def = &self.netlist.nodes[node.index()];
                if !def.pinned {
                    min_rc = min_rc.min(r.resistance.value() * def.capacitance.value());
                }
            }
        }
        if !min_rc.is_finite() {
            // No resistors touching capacitive nodes: any step works.
            return Seconds(1e-12);
        }
        Seconds(min_rc / 20.0)
    }

    /// Runs one transient segment and returns the recorded result. Node
    /// state persists, so calling `run` again continues from where the
    /// previous segment ended.
    ///
    /// # Panics
    ///
    /// Panics if the configured duration or step is not strictly positive.
    pub fn run(&mut self, config: SolverConfig) -> TransientResult {
        assert!(config.duration.value() > 0.0, "duration must be positive");
        let dt = config.step.unwrap_or_else(|| self.auto_step());
        assert!(dt.value() > 0.0, "step must be positive");
        let record_every = config.record_every.unwrap_or(dt);
        assert!(
            record_every.value() > 0.0,
            "record interval must be positive"
        );

        // Pin sources at their configured voltage (they may have been re-pinned).
        for (i, def) in self.netlist.nodes.iter().enumerate() {
            if def.pinned {
                self.voltages[i] = def.initial;
            }
        }

        let steps = (config.duration.value() / dt.value()).ceil() as usize;
        let mut waveforms: BTreeMap<usize, Waveform> = self
            .netlist
            .nodes
            .iter()
            .enumerate()
            .map(|(i, def)| (i, Waveform::new(def.name.clone())))
            .collect();
        let mut source_energy: BTreeMap<usize, Joules> = BTreeMap::new();

        // Record the initial point.
        for (i, w) in waveforms.iter_mut() {
            w.push(self.time, self.voltages[*i]);
        }
        let mut since_record = 0.0;

        for _ in 0..steps {
            // Net current into each node.
            let mut current = vec![0.0f64; self.netlist.nodes.len()];
            for r in &self.netlist.resistors {
                let conducting = r
                    .gated_by
                    .map(|s| self.netlist.switches[s.0].closed)
                    .unwrap_or(true);
                if !conducting {
                    continue;
                }
                let va = self.voltages[r.a.index()].value();
                let vb = self.voltages[r.b.index()].value();
                let i_ab = (va - vb) / r.resistance.value();
                current[r.a.index()] -= i_ab;
                current[r.b.index()] += i_ab;
            }

            for (i, def) in self.netlist.nodes.iter().enumerate() {
                if def.pinned {
                    // Energy delivered by the source: V * I_out * dt, where
                    // I_out is the current flowing *out* of the source
                    // (negative net inflow).
                    let i_out = -current[i];
                    if i_out > 0.0 {
                        let e = source_energy.entry(i).or_insert(Joules::ZERO);
                        *e += Joules(def.initial.value() * i_out * dt.value());
                    }
                } else {
                    let dv = current[i] / def.capacitance.value() * dt.value();
                    self.voltages[i] = Volts(self.voltages[i].value() + dv);
                }
            }

            self.time += dt;
            since_record += dt.value();
            if since_record + 1e-18 >= record_every.value() {
                for (i, w) in waveforms.iter_mut() {
                    w.push(self.time, self.voltages[*i]);
                }
                since_record = 0.0;
            }
        }

        TransientResult {
            waveforms,
            source_energy,
            final_voltages: self.voltages.clone(),
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Farads, Ohms};

    /// Pre-charge circuit charging a discharged bit line: compare the solver
    /// against the closed-form RC charge.
    #[test]
    fn matches_analytic_rc_charge() {
        let mut net = Netlist::new();
        let vdd = net.add_source("VDD", Volts(1.6));
        let bl = net.add_node("BL", Farads(500e-15), Volts(0.0));
        net.add_resistor(vdd, bl, Ohms(2_000.0));
        let mut solver = TransientSolver::new(net);
        let result = solver.run(SolverConfig::for_duration(Seconds::from_nanoseconds(5.0)));

        let analytic =
            crate::rc::RcCharge::new(Ohms(2_000.0), Farads(500e-15), Volts(0.0), Volts(1.6));
        let v_sim = result.final_voltage(bl).value();
        let v_ana = analytic.voltage_at(Seconds::from_nanoseconds(5.0)).value();
        assert!(
            (v_sim - v_ana).abs() < 0.02,
            "simulated {v_sim} vs analytic {v_ana}"
        );
        // Supply energy close to C*Vdd*dV.
        let e_sim = result.source_energy(vdd).value();
        let e_ana = analytic
            .supply_energy_until(Seconds::from_nanoseconds(5.0))
            .value();
        assert!((e_sim - e_ana).abs() / e_ana < 0.05);
    }

    /// A floating bit line discharged through a gated resistor (the access
    /// path of a cell storing '0') — the Figure 6 scenario.
    #[test]
    fn floating_bitline_discharge_through_closed_switch() {
        let mut net = Netlist::new();
        let gnd = net.add_source("GND", Volts(0.0));
        let bl = net.add_node("BL", Farads(500e-15), Volts(1.6));
        let wl = net.add_switch("WL", false);
        net.add_gated_resistor(bl, gnd, Ohms(1.2e6), wl);
        let mut solver = TransientSolver::new(net);

        // Switch open: nothing happens.
        let r1 = solver.run(SolverConfig::for_duration(Seconds::from_nanoseconds(3.0)));
        assert!((r1.final_voltage(bl).value() - 1.6).abs() < 1e-9);

        // Close the word line: bit line decays.
        solver.netlist_mut().set_switch(wl, true);
        let r2 = solver.run(SolverConfig::for_duration(Seconds::from_nanoseconds(27.0)));
        let v = r2.final_voltage(bl).value();
        assert!(v < 1.6 * (-27.0e-9_f64 / (1.2e6 * 500e-15)).exp() + 0.05);
        assert!(v > 0.0);
        // The waveform is monotonically decreasing.
        let w = r2.waveform(bl).unwrap();
        let mut prev = f64::INFINITY;
        for s in w.iter() {
            assert!(s.voltage.value() <= prev + 1e-12);
            prev = s.voltage.value();
        }
    }

    /// Contention: pre-charge pull-up against a cell pull-down forms a
    /// divider; the bit line settles at the divider voltage and the source
    /// keeps supplying energy (static RES consumption).
    #[test]
    fn contention_settles_at_divider_voltage() {
        let mut net = Netlist::new();
        let vdd = net.add_source("VDD", Volts(1.6));
        let gnd = net.add_source("GND", Volts(0.0));
        let bl = net.add_node("BL", Farads(500e-15), Volts(1.6));
        net.add_resistor(vdd, bl, Ohms(2_000.0));
        net.add_resistor(bl, gnd, Ohms(200_000.0));
        let mut solver = TransientSolver::new(net);
        let result = solver.run(SolverConfig::for_duration(Seconds::from_nanoseconds(50.0)));
        let expected = 1.6 * 200_000.0 / 202_000.0;
        assert!((result.final_voltage(bl).value() - expected).abs() < 0.01);
        assert!(result.source_energy(vdd).value() > 0.0);
        // Ground never supplies energy.
        assert_eq!(result.source_energy(gnd), Joules::ZERO);
    }

    #[test]
    fn charge_sharing_between_two_capacitors() {
        let mut net = Netlist::new();
        let bl = net.add_node("BL", Farads(500e-15), Volts(0.0));
        let s = net.add_node("S", Farads(2e-15), Volts(1.6));
        net.add_resistor(bl, s, Ohms(10_000.0));
        let mut solver = TransientSolver::new(net);
        let result = solver.run(SolverConfig::for_duration(Seconds::from_nanoseconds(100.0)));
        let expected = crate::charge_share::share_charge(
            Farads(500e-15),
            Volts(0.0),
            Farads(2e-15),
            Volts(1.6),
        )
        .final_voltage
        .value();
        assert!((result.final_voltage(bl).value() - expected).abs() < 0.01);
        assert!((result.final_voltage(s).value() - expected).abs() < 0.01);
    }

    #[test]
    fn set_voltage_and_elapsed_time() {
        let mut net = Netlist::new();
        let a = net.add_node("A", Farads(1e-15), Volts(0.0));
        let mut solver = TransientSolver::new(net);
        solver.set_voltage(a, Volts(1.0));
        assert_eq!(solver.voltage(a), Volts(1.0));
        assert_eq!(solver.elapsed(), Seconds::ZERO);
        let _ = solver.run(SolverConfig {
            duration: Seconds::from_nanoseconds(1.0),
            step: Some(Seconds::from_picoseconds(10.0)),
            record_every: None,
        });
        assert!(solver.elapsed().value() >= 1.0e-9);
    }

    #[test]
    #[should_panic(expected = "cannot override the voltage of a source")]
    fn overriding_source_voltage_panics() {
        let mut net = Netlist::new();
        let vdd = net.add_source("VDD", Volts(1.6));
        let mut solver = TransientSolver::new(net);
        solver.set_voltage(vdd, Volts(0.0));
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let mut net = Netlist::new();
        net.add_node("A", Farads(1e-15), Volts(0.0));
        let mut solver = TransientSolver::new(net);
        let _ = solver.run(SolverConfig::for_duration(Seconds::ZERO));
    }
}
