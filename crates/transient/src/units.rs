//! Strongly-typed electrical units.
//!
//! All quantities in this workspace are carried in SI base units inside
//! simple newtypes. The newtypes are deliberately thin — `Copy`, `f64`
//! payload, full arithmetic where it is dimensionally meaningful — so that
//! the simulator code reads like the physics it implements while the
//! compiler rejects accidental mixes such as adding volts to farads.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this unit.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw `f64` value in SI base units.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the value between `lo` and `hi`.
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|x| x.0).sum())
            }
        }
    };
}

unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit!(
    /// Energy in joules.
    Joules,
    "J"
);
unit!(
    /// Power in watts.
    Watts,
    "W"
);
unit!(
    /// Current in amperes.
    Amps,
    "A"
);
unit!(
    /// Charge in coulombs.
    Coulombs,
    "C"
);

impl Volts {
    /// Constructs a value expressed in millivolts.
    pub fn from_millivolts(mv: f64) -> Self {
        Volts(mv * 1e-3)
    }

    /// Returns the value expressed in millivolts.
    pub fn to_millivolts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Farads {
    /// Constructs a value expressed in femtofarads.
    pub fn from_femtofarads(ff: f64) -> Self {
        Farads(ff * 1e-15)
    }

    /// Returns the value expressed in femtofarads.
    pub fn to_femtofarads(self) -> f64 {
        self.0 * 1e15
    }
}

impl Seconds {
    /// Constructs a value expressed in nanoseconds.
    pub fn from_nanoseconds(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Returns the value expressed in nanoseconds.
    pub fn to_nanoseconds(self) -> f64 {
        self.0 * 1e9
    }

    /// Constructs a value expressed in picoseconds.
    pub fn from_picoseconds(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }

    /// Returns the value expressed in picoseconds.
    pub fn to_picoseconds(self) -> f64 {
        self.0 * 1e12
    }
}

impl Joules {
    /// Constructs a value expressed in femtojoules.
    pub fn from_femtojoules(fj: f64) -> Self {
        Joules(fj * 1e-15)
    }

    /// Returns the value expressed in femtojoules.
    pub fn to_femtojoules(self) -> f64 {
        self.0 * 1e15
    }

    /// Constructs a value expressed in picojoules.
    pub fn from_picojoules(pj: f64) -> Self {
        Joules(pj * 1e-12)
    }

    /// Returns the value expressed in picojoules.
    pub fn to_picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Average power when this energy is spent over `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero or negative.
    pub fn over(self, dt: Seconds) -> Watts {
        assert!(dt.0 > 0.0, "duration must be positive, got {dt}");
        Watts(self.0 / dt.0)
    }
}

impl Watts {
    /// Returns the value expressed in microwatts.
    pub fn to_microwatts(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value expressed in milliwatts.
    pub fn to_milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Energy accumulated when this power is sustained for `dt`.
    pub fn times(self, dt: Seconds) -> Joules {
        Joules(self.0 * dt.0)
    }
}

impl Ohms {
    /// Constructs a value expressed in kilo-ohms.
    pub fn from_kilo_ohms(k: f64) -> Self {
        Ohms(k * 1e3)
    }
}

/// `Q = C · V`
impl Mul<Volts> for Farads {
    type Output = Coulombs;
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

/// `Q = C · V` (commutative)
impl Mul<Farads> for Volts {
    type Output = Coulombs;
    fn mul(self, rhs: Farads) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

/// `E = Q · V`
impl Mul<Volts> for Coulombs {
    type Output = Joules;
    fn mul(self, rhs: Volts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `τ = R · C`
impl Mul<Farads> for Ohms {
    type Output = Seconds;
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// `τ = R · C` (commutative)
impl Mul<Ohms> for Farads {
    type Output = Seconds;
    fn mul(self, rhs: Ohms) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

/// `I = V / R` (Ohm's law)
impl Div<Ohms> for Volts {
    type Output = Amps;
    fn div(self, rhs: Ohms) -> Amps {
        Amps(self.0 / rhs.0)
    }
}

/// `P = V · I`
impl Mul<Amps> for Volts {
    type Output = Watts;
    fn mul(self, rhs: Amps) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

/// `E = P · t`
impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// `P = E / t`
impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// `Q = I · t`
impl Mul<Seconds> for Amps {
    type Output = Coulombs;
    fn mul(self, rhs: Seconds) -> Coulombs {
        Coulombs(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volts_arithmetic() {
        let a = Volts(1.6);
        let b = Volts(0.4);
        assert_eq!(a + b, Volts(2.0));
        assert_eq!(a - b, Volts(1.2000000000000002));
        assert_eq!(a * 2.0, Volts(3.2));
        assert_eq!(2.0 * b, Volts(0.8));
        assert!((a / b - 4.0).abs() < 1e-12);
        assert_eq!(-b, Volts(-0.4));
    }

    #[test]
    fn unit_conversions() {
        assert!((Volts::from_millivolts(30.0).value() - 0.03).abs() < 1e-15);
        assert!((Farads::from_femtofarads(500.0).value() - 500e-15).abs() < 1e-27);
        assert!((Seconds::from_nanoseconds(3.0).value() - 3e-9).abs() < 1e-21);
        assert!((Joules::from_picojoules(1.28).to_femtojoules() - 1280.0).abs() < 1e-9);
    }

    #[test]
    fn dimensional_products() {
        let c = Farads::from_femtofarads(500.0);
        let v = Volts(1.6);
        let q = c * v;
        let e = q * v;
        // E = C * V^2 = 500fF * 2.56 V^2 = 1.28 pJ
        assert!((e.to_picojoules() - 1.28).abs() < 1e-9);

        let tau = Ohms::from_kilo_ohms(150.0) * c;
        assert!((tau.to_nanoseconds() - 75.0).abs() < 1e-9);

        let i = v / Ohms::from_kilo_ohms(1.0);
        let p = v * i;
        assert!((p.to_milliwatts() - 2.56).abs() < 1e-9);
    }

    #[test]
    fn power_energy_roundtrip() {
        let e = Joules::from_picojoules(3.0);
        let p = e.over(Seconds::from_nanoseconds(3.0));
        assert!((p.to_milliwatts() - 1.0).abs() < 1e-9);
        let back = p.times(Seconds::from_nanoseconds(3.0));
        assert!((back.to_picojoules() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn power_over_zero_duration_panics() {
        let _ = Joules(1.0).over(Seconds::ZERO);
    }

    #[test]
    fn sums_min_max_clamp() {
        let total: Joules = vec![Joules(1.0), Joules(2.0), Joules(3.0)]
            .into_iter()
            .sum();
        assert_eq!(total, Joules(6.0));
        assert_eq!(Volts(1.0).max(Volts(2.0)), Volts(2.0));
        assert_eq!(Volts(1.0).min(Volts(2.0)), Volts(1.0));
        assert_eq!(Volts(3.0).clamp(Volts(0.0), Volts(1.6)), Volts(1.6));
        assert_eq!(Volts(-3.0).abs(), Volts(3.0));
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(format!("{}", Volts(1.6)), "1.6 V");
        assert_eq!(format!("{}", Ohms(10.0)), "10 Ω");
    }
}
