//! Capacitive charge sharing.
//!
//! When a word line rises, each cell node is connected through its access
//! transistor to the corresponding bit line. If the bit line is floating
//! (its pre-charge circuit disabled, as in the paper's low-power test mode),
//! the two capacitors redistribute their charge. Because the bit-line
//! capacitance is two to three orders of magnitude larger than the cell node
//! capacitance, the final voltage is dominated by the bit line — this is
//! exactly the "faulty swap" mechanism of Figure 7 of the paper: a bit line
//! previously driven to '0' overwrites a cell that stores '1'.

use crate::units::{Farads, Joules, Volts};

/// Result of connecting two capacitors that were at different voltages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeShareOutcome {
    /// Common voltage after redistribution.
    pub final_voltage: Volts,
    /// Energy dissipated in the (unavoidably resistive) connecting path.
    pub dissipated: Joules,
    /// Voltage change seen by the first capacitor (signed).
    pub delta_a: Volts,
    /// Voltage change seen by the second capacitor (signed).
    pub delta_b: Volts,
}

/// Connects capacitor `a` (capacitance `ca`, initial voltage `va`) to
/// capacitor `b` and returns the equilibrium.
///
/// Charge is conserved: `V_f = (Ca·Va + Cb·Vb) / (Ca + Cb)`. The dissipated
/// energy is the well-known charge-sharing loss
/// `E = ½ · (Ca·Cb)/(Ca+Cb) · (Va − Vb)²` and does not depend on the series
/// resistance.
///
/// # Panics
///
/// Panics if either capacitance is not strictly positive.
pub fn share_charge(ca: Farads, va: Volts, cb: Farads, vb: Volts) -> ChargeShareOutcome {
    assert!(ca.value() > 0.0, "capacitance a must be positive");
    assert!(cb.value() > 0.0, "capacitance b must be positive");
    let total_c = ca.value() + cb.value();
    let vf = (ca.value() * va.value() + cb.value() * vb.value()) / total_c;
    let series_c = ca.value() * cb.value() / total_c;
    let dv = va.value() - vb.value();
    ChargeShareOutcome {
        final_voltage: Volts(vf),
        dissipated: Joules(0.5 * series_c * dv * dv),
        delta_a: Volts(vf - va.value()),
        delta_b: Volts(vf - vb.value()),
    }
}

/// Predicts whether connecting a storage node at `cell_voltage` (capacitance
/// `cell_cap`) to a bit line at `bitline_voltage` (capacitance
/// `bitline_cap`) flips the node across `logic_threshold`.
///
/// This is the quantitative form of the paper's faulty-swap argument: the
/// swap happens when the equilibrium voltage ends up on the other side of
/// the threshold from where the cell node started.
pub fn node_flips(
    cell_cap: Farads,
    cell_voltage: Volts,
    bitline_cap: Farads,
    bitline_voltage: Volts,
    logic_threshold: Volts,
) -> bool {
    let outcome = share_charge(cell_cap, cell_voltage, bitline_cap, bitline_voltage);
    let was_high = cell_voltage >= logic_threshold;
    let is_high = outcome.final_voltage >= logic_threshold;
    was_high != is_high
}

#[cfg(test)]
mod tests {
    use super::*;

    const BL_CAP: Farads = Farads(500e-15);
    const CELL_CAP: Farads = Farads(2e-15);
    const VDD: Volts = Volts(1.6);
    const VTH: Volts = Volts(0.8);

    #[test]
    fn equal_caps_meet_in_the_middle() {
        let out = share_charge(Farads(1e-15), Volts(0.0), Farads(1e-15), Volts(1.6));
        assert!((out.final_voltage.value() - 0.8).abs() < 1e-12);
        assert!(out.dissipated.value() > 0.0);
    }

    #[test]
    fn charge_is_conserved() {
        let out = share_charge(BL_CAP, Volts(0.3), CELL_CAP, VDD);
        let q_before = BL_CAP.value() * 0.3 + CELL_CAP.value() * VDD.value();
        let q_after = (BL_CAP.value() + CELL_CAP.value()) * out.final_voltage.value();
        assert!((q_before - q_after).abs() < 1e-24);
    }

    #[test]
    fn bitline_dominates_cell_node() {
        // Discharged bit line vs cell node at VDD: equilibrium is near the
        // bit-line value, i.e. the cell node is destroyed (faulty swap).
        let out = share_charge(CELL_CAP, VDD, BL_CAP, Volts(0.0));
        assert!(out.final_voltage.value() < 0.01);
        assert!(out.delta_a.value() < -1.5);
        assert!(out.delta_b.value().abs() < 0.01);
    }

    #[test]
    fn faulty_swap_predicted_for_discharged_bitline() {
        assert!(node_flips(CELL_CAP, VDD, BL_CAP, Volts(0.0), VTH));
    }

    #[test]
    fn no_swap_when_bitline_precharged() {
        // Bit line restored to VDD: a cell storing '1' keeps its value, and a
        // cell storing '0' is only weakly disturbed because in reality the
        // cell actively drives — here we only check the passive criterion for
        // the node that agrees with the bit line.
        assert!(!node_flips(CELL_CAP, VDD, BL_CAP, VDD, VTH));
    }

    #[test]
    fn no_swap_when_bitline_only_partially_discharged() {
        // Bit line still above threshold after a few floating cycles.
        assert!(!node_flips(CELL_CAP, VDD, BL_CAP, Volts(1.0), VTH));
    }

    #[test]
    fn dissipated_energy_formula() {
        let out = share_charge(BL_CAP, Volts(0.0), CELL_CAP, VDD);
        let series = BL_CAP.value() * CELL_CAP.value() / (BL_CAP.value() + CELL_CAP.value());
        let expected = 0.5 * series * VDD.value() * VDD.value();
        assert!((out.dissipated.value() - expected).abs() < 1e-24);
    }

    #[test]
    #[should_panic(expected = "capacitance a must be positive")]
    fn zero_capacitance_rejected() {
        let _ = share_charge(Farads(0.0), Volts(0.0), Farads(1e-15), Volts(1.0));
    }
}
