//! `campaign_run` — the crash-safe campaign CLI.
//!
//! Builds a cross-product plan from flag lists, runs (or resumes) one
//! shard of it with the panic-isolated worker pool, and optionally writes
//! the deterministic binary export.
//!
//! ```text
//! campaign_run --journal camp.journal \
//!     --organization 64x64 --seeds 1,2,3,4 --population mixed:600 \
//!     --threads 2 --export out.bin
//! campaign_run --journal camp.journal ... --resume   # after a crash
//! ```
//!
//! Exit codes are distinct per failure class so scripts (and the CI
//! kill-and-resume smoke job) can tell them apart:
//!
//! * `0` — campaign completed, no poisoned jobs
//! * `2` — usage error (unknown flag, malformed value)
//! * `3` — campaign error (I/O, corrupt journal, plan mismatch)
//! * `4` — campaign completed but some jobs are poison-quarantined

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use campaign::runner::{run_campaign, CampaignOptions};
use campaign::spec::{CampaignPlan, PopulationSpec};
use campaign::{FaultInjector, Injection, Shard};
use march_test::coverage::SweepBackend;
use march_test::library::table1_algorithms;

/// A malformed command line: the offending flag and why.
#[derive(Debug)]
struct UsageError {
    flag: String,
    reason: String,
}

impl UsageError {
    fn new(flag: &str, reason: impl Into<String>) -> Self {
        Self {
            flag: flag.to_string(),
            reason: reason.into(),
        }
    }
}

const USAGE: &str = "usage: campaign_run --journal PATH [options]
  --journal PATH        journal file (required)
  --organization RxC    array organization (default 64x64)
  --seeds A,B,...       population seeds (default 1)
  --algorithms A,B,...  March algorithms (default: the paper's Table 1 five)
  --orders A,B,...      address orders (default \"word line after word line\")
  --backgrounds 0,1     initial cell values (default 0)
  --population SPEC     standard | mixed:N | dense:N (default mixed:256)
  --backend NAME        lane | list-order | per-fault (default lane)
  --shard K/N           0-based shard of the plan (default 0/1)
  --threads N           worker threads (default: all cores)
  --max-attempts N      attempts before poison quarantine (default 3)
  --backoff-ms N        base retry backoff in ms (default 10)
  --job-delay-ms N      debug: sleep per job, for kill-timing tests
  --export PATH         write the deterministic binary export
  --heartbeat PATH      write a heartbeat sidecar after each journaled job
  --resume              resume from the journal (fresh start if missing)
  --list                print the plan and exit
  --help                print this help and exit
debug fault injections (for the supervisor test harness):
  --abort-after-records N      abort once N records are journaled (exit 3)
  --stall-heartbeat-after N    stop heartbeating after N jobs, keep working
  --wedge-after N              hang forever once N jobs are done
exit codes:
  0  campaign completed, no poisoned jobs
  2  usage error (unknown flag, malformed value)
  3  campaign error (I/O, corrupt journal, plan mismatch)
  4  campaign completed but some jobs are poison-quarantined";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(usage) => {
            eprintln!("campaign_run: {}: {}", usage.flag, usage.reason);
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Returns the value of `--flag value`, if present.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `true` when the bare flag is present.
fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--flag` as `T`, with a typed error naming the flag.
fn parse_arg<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, UsageError> {
    match arg_value(args, flag) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| UsageError::new(flag, format!("cannot parse \"{raw}\""))),
    }
}

/// Parses a comma-separated list with `parse_item`, with typed errors.
fn parse_list<T>(
    args: &[String],
    flag: &str,
    default: Vec<T>,
    parse_item: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, UsageError> {
    let Some(raw) = arg_value(args, flag) else {
        return Ok(default);
    };
    let items: Vec<T> = raw
        .split(',')
        .map(str::trim)
        .filter(|item| !item.is_empty())
        .map(|item| {
            parse_item(item).ok_or_else(|| UsageError::new(flag, format!("bad item \"{item}\"")))
        })
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err(UsageError::new(flag, "empty list"));
    }
    Ok(items)
}

fn run(args: &[String]) -> Result<ExitCode, UsageError> {
    if arg_present(args, "--help") {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    for (index, arg) in args.iter().enumerate() {
        if arg.starts_with("--") {
            let known = [
                "--journal",
                "--organization",
                "--seeds",
                "--algorithms",
                "--orders",
                "--backgrounds",
                "--population",
                "--backend",
                "--shard",
                "--threads",
                "--max-attempts",
                "--backoff-ms",
                "--job-delay-ms",
                "--export",
                "--heartbeat",
                "--resume",
                "--list",
                "--help",
                "--abort-after-records",
                "--stall-heartbeat-after",
                "--wedge-after",
            ];
            if !known.contains(&arg.as_str()) {
                return Err(UsageError::new(arg, "unknown flag"));
            }
        } else if index == 0 {
            return Err(UsageError::new(arg, "expected a --flag"));
        }
    }

    let organization = arg_value(args, "--organization").unwrap_or_else(|| "64x64".to_string());
    let (rows, cols) = organization
        .split_once('x')
        .and_then(|(r, c)| Some((r.trim().parse::<u32>().ok()?, c.trim().parse::<u32>().ok()?)))
        .ok_or_else(|| {
            UsageError::new(
                "--organization",
                format!("cannot parse \"{organization}\" (expected RxC)"),
            )
        })?;
    let seeds = parse_list(args, "--seeds", vec![1u64], |item| item.parse().ok())?;
    let default_algorithms: Vec<String> = table1_algorithms()
        .iter()
        .map(|test| test.name().to_string())
        .collect();
    let algorithms = parse_list(args, "--algorithms", default_algorithms, |item| {
        Some(item.to_string())
    })?;
    let orders = parse_list(
        args,
        "--orders",
        vec!["word line after word line".to_string()],
        |item| Some(item.to_string()),
    )?;
    let backgrounds = parse_list(args, "--backgrounds", vec![false], |item| match item {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    })?;
    let population = match arg_value(args, "--population") {
        None => PopulationSpec::Mixed { count: 256 },
        Some(raw) => PopulationSpec::parse(&raw)
            .ok_or_else(|| UsageError::new("--population", format!("cannot parse \"{raw}\"")))?,
    };
    let backend = match arg_value(args, "--backend").as_deref() {
        None | Some("lane") => SweepBackend::LaneBatched,
        Some("list-order") => SweepBackend::LaneBatchedListOrder,
        Some("per-fault") => SweepBackend::PerFault,
        Some(other) => {
            return Err(UsageError::new(
                "--backend",
                format!("unknown backend \"{other}\""),
            ));
        }
    };
    let shard = match arg_value(args, "--shard") {
        None => Shard::whole(),
        Some(raw) => {
            Shard::parse(&raw).map_err(|error| UsageError::new("--shard", error.to_string()))?
        }
    };
    let options = CampaignOptions {
        threads: parse_arg(args, "--threads", CampaignOptions::default().threads)?,
        max_attempts: {
            let attempts: u8 = parse_arg(args, "--max-attempts", 3u8)?;
            if attempts == 0 {
                return Err(UsageError::new("--max-attempts", "must be at least 1"));
            }
            attempts
        },
        backoff: Duration::from_millis(parse_arg(args, "--backoff-ms", 10u64)?),
        resume: arg_present(args, "--resume"),
        job_delay: Duration::from_millis(parse_arg(args, "--job-delay-ms", 0u64)?),
        heartbeat: arg_value(args, "--heartbeat").map(PathBuf::from),
    };

    // Debug injections for the supervisor harness: deterministic crash,
    // silent-heartbeat and wedge behaviours, each armed by a flag.
    let mut injections = Vec::new();
    if let Some(count) = arg_value(args, "--abort-after-records") {
        let count = count
            .parse()
            .map_err(|_| UsageError::new("--abort-after-records", "cannot parse count"))?;
        injections.push(Injection::AbortAfterRecords { count });
    }
    if let Some(after_jobs) = arg_value(args, "--stall-heartbeat-after") {
        let after_jobs = after_jobs
            .parse()
            .map_err(|_| UsageError::new("--stall-heartbeat-after", "cannot parse count"))?;
        injections.push(Injection::StallHeartbeat { after_jobs });
    }
    if let Some(after_jobs) = arg_value(args, "--wedge-after") {
        let after_jobs = after_jobs
            .parse()
            .map_err(|_| UsageError::new("--wedge-after", "cannot parse count"))?;
        injections.push(Injection::WedgeProcess { after_jobs });
    }
    let injector = FaultInjector::new(injections);

    let plan = CampaignPlan::cross(
        rows,
        cols,
        &seeds,
        &algorithms,
        &orders,
        &backgrounds,
        backend,
        population,
    );

    if arg_present(args, "--list") {
        println!(
            "plan: {} jobs, digest {:#018x}, shard {}/{} owns {}",
            plan.len(),
            plan.digest(),
            shard.index,
            shard.count,
            shard.jobs(plan.len() as u32).len()
        );
        for (index, job) in plan.jobs.iter().enumerate() {
            let owned = if shard.owns(index as u32) { "*" } else { " " };
            println!(
                "{owned} [{index:4}] {}x{} seed={} \"{}\" / \"{}\" bg={} {}",
                job.rows,
                job.cols,
                job.seed,
                job.algorithm,
                job.order,
                u8::from(job.background),
                job.population.render()
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    let journal = PathBuf::from(
        arg_value(args, "--journal")
            .ok_or_else(|| UsageError::new("--journal", "required flag missing"))?,
    );
    let export_path = arg_value(args, "--export").map(PathBuf::from);

    match run_campaign(&plan, shard, &journal, &options, &injector) {
        Ok(summary) => {
            if let Some(path) = &export_path {
                if let Err(error) = summary.export.write(path) {
                    eprintln!("campaign_run: {error}");
                    return Ok(ExitCode::from(3));
                }
            }
            println!(
                "campaign: {} jobs ({} executed, {} resumed, {} retries, {} poisoned)",
                summary.export.outcomes.len(),
                summary.executed,
                summary.skipped,
                summary.retries,
                summary.poisoned.len()
            );
            if summary.poisoned.is_empty() {
                Ok(ExitCode::SUCCESS)
            } else {
                for job in &summary.poisoned {
                    eprintln!("campaign_run: job {job} is poison-quarantined");
                }
                Ok(ExitCode::from(4))
            }
        }
        Err(error) => {
            eprintln!("campaign_run: {error}");
            Ok(ExitCode::from(3))
        }
    }
}
