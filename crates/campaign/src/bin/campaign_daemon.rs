//! `campaign_daemon` — the long-running dynamic-intake campaign service.
//!
//! Watches a spool directory for tmp+rename job submissions, appends
//! admitted jobs to a dynamic (v2) journal, runs them on the crash-safe
//! worker pool with bounded admission and per-job deadlines, and answers
//! every submission explicitly (accepted / duplicate / queue-full /
//! rejected).
//!
//! ```text
//! campaign_daemon --spool jobs/ --journal daemon.journal --export out.bin
//! campaign_daemon --spool jobs/ --journal daemon.journal --resume   # after SIGKILL
//! campaign_daemon --spool jobs/ --journal daemon.journal \
//!     --trace arrivals.trace --once                      # replay a recorded trace
//! ```
//!
//! SIGTERM (or SIGINT) drains gracefully: intake stops, queued and
//! in-flight jobs finish, the journal is left clean, and the process
//! exits 0. SIGKILL is the crash path: restart with `--resume` and the
//! journal replay reconstructs the dynamic plan — the export is
//! byte-identical either way.
//!
//! Exit codes, same classes as `campaign_run`:
//!
//! * `0` — drained or quiesced cleanly, no poisoned jobs
//! * `2` — usage error (unknown flag, malformed value)
//! * `3` — campaign error (I/O, corrupt journal, injected crash)
//! * `4` — drained, but some jobs are poison-quarantined

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use campaign::daemon::{run_daemon, DaemonOptions};
use campaign::trace::{load_trace, replay_trace_injected};
use campaign::{FaultInjector, Injection, SpoolDir};

/// A malformed command line: the offending flag and why.
#[derive(Debug)]
struct UsageError {
    flag: String,
    reason: String,
}

impl UsageError {
    fn new(flag: &str, reason: impl Into<String>) -> Self {
        Self {
            flag: flag.to_string(),
            reason: reason.into(),
        }
    }
}

const USAGE: &str = "usage: campaign_daemon --spool DIR --journal PATH [options]
  --spool DIR           spool directory for job intake (required)
  --journal PATH        dynamic (v2) journal file (required)
  --threads N           worker threads (default: all cores)
  --max-attempts N      attempts before poison quarantine (default 3)
  --backoff-ms N        base retry backoff in ms (default 10)
  --job-delay-ms N      debug: sleep per job, for kill-timing tests
  --queue-limit N       bounded admission queue; beyond it submissions
                        are shed with a queue-full response (default 64)
  --deadline-ms N       per-attempt deadline; an overrunning attempt is
                        abandoned and journaled timed-out (default: none)
  --poll-ms N           spool scan interval in ms (default 2)
  --trace PATH          replay a recorded arrival trace into the spool
                        (open-loop), then quiesce once it is drained
  --once                quiesce mode: exit once the spool is empty and
                        all admitted work is done (implied by --trace)
  --export PATH         write the deterministic binary export
  --resume              resume from the journal (fresh start if missing)
  --help                print this help and exit
debug fault injections (for the crash-resume test harness):
  --abort-after-records N   abort once N records are journaled (exit 3)
  --crash-mid-intake N      die between spool-accept and journal-append
                            of intake ordinal N (exit 3)
  --torn-spool N            tear trace event ordinal N mid-submission
  --stall-job J@A:MS        stall job J for MS ms on its first A attempts
exit codes:
  0  drained or quiesced cleanly, no poisoned jobs
  2  usage error (unknown flag, malformed value)
  3  campaign error (I/O, corrupt journal, injected crash)
  4  completed, but some jobs are poison-quarantined";

/// SIGTERM/SIGINT flag, set from the signal handler.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    // The lib crate forbids unsafe; this binary is its own crate root and
    // installs the one handler the daemon needs without pulling in libc.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // A store to a static atomic is async-signal-safe.
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    /// Installs the graceful-drain handler for SIGTERM (15) and
    /// SIGINT (2).
    pub fn install() {
        unsafe {
            signal(15, on_signal);
            signal(2, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// No signal handling off unix; drain via --once / --trace instead.
    pub fn install() {}
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(usage) => {
            eprintln!("campaign_daemon: {}: {}", usage.flag, usage.reason);
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Returns the value of `--flag value`, if present.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `true` when the bare flag is present.
fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--flag` as `T`, with a typed error naming the flag.
fn parse_arg<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, UsageError> {
    match arg_value(args, flag) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| UsageError::new(flag, format!("cannot parse \"{raw}\""))),
    }
}

fn run(args: &[String]) -> Result<ExitCode, UsageError> {
    if arg_present(args, "--help") {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    for (index, arg) in args.iter().enumerate() {
        if arg.starts_with("--") {
            let known = [
                "--spool",
                "--journal",
                "--threads",
                "--max-attempts",
                "--backoff-ms",
                "--job-delay-ms",
                "--queue-limit",
                "--deadline-ms",
                "--poll-ms",
                "--trace",
                "--once",
                "--export",
                "--resume",
                "--help",
                "--abort-after-records",
                "--crash-mid-intake",
                "--torn-spool",
                "--stall-job",
            ];
            if !known.contains(&arg.as_str()) {
                return Err(UsageError::new(arg, "unknown flag"));
            }
        } else if index == 0 {
            return Err(UsageError::new(arg, "expected a --flag"));
        }
    }

    let spool_dir = PathBuf::from(
        arg_value(args, "--spool")
            .ok_or_else(|| UsageError::new("--spool", "required flag missing"))?,
    );
    let journal = PathBuf::from(
        arg_value(args, "--journal")
            .ok_or_else(|| UsageError::new("--journal", "required flag missing"))?,
    );
    let export_path = arg_value(args, "--export").map(PathBuf::from);
    let trace_path = arg_value(args, "--trace").map(PathBuf::from);

    let mut injections = Vec::new();
    if let Some(count) = arg_value(args, "--abort-after-records") {
        let count = count
            .parse()
            .map_err(|_| UsageError::new("--abort-after-records", "cannot parse count"))?;
        injections.push(Injection::AbortAfterRecords { count });
    }
    if let Some(submission) = arg_value(args, "--crash-mid-intake") {
        let submission = submission
            .parse()
            .map_err(|_| UsageError::new("--crash-mid-intake", "cannot parse ordinal"))?;
        injections.push(Injection::CrashMidIntake { submission });
    }
    if let Some(submission) = arg_value(args, "--torn-spool") {
        let submission = submission
            .parse()
            .map_err(|_| UsageError::new("--torn-spool", "cannot parse ordinal"))?;
        injections.push(Injection::TornSpoolWrite { submission });
    }
    if let Some(raw) = arg_value(args, "--stall-job") {
        // J@A:MS — job J stalls MS milliseconds on its first A attempts.
        let parsed = raw.split_once('@').and_then(|(job, rest)| {
            let (attempts, delay) = rest.split_once(':')?;
            Some(Injection::StallJob {
                job: job.parse().ok()?,
                attempts: attempts.parse().ok()?,
                delay_ms: delay.parse().ok()?,
            })
        });
        injections.push(
            parsed.ok_or_else(|| UsageError::new("--stall-job", "expected JOB@ATTEMPTS:MS"))?,
        );
    }
    let injector = FaultInjector::new(injections);

    let shutdown = Arc::new(AtomicBool::new(false));
    let quiesce = Arc::new(AtomicBool::new(false));
    let options = DaemonOptions {
        threads: parse_arg(args, "--threads", DaemonOptions::default().threads)?,
        max_attempts: {
            let attempts: u8 = parse_arg(args, "--max-attempts", 3u8)?;
            if attempts == 0 {
                return Err(UsageError::new("--max-attempts", "must be at least 1"));
            }
            attempts
        },
        backoff: Duration::from_millis(parse_arg(args, "--backoff-ms", 10u64)?),
        resume: arg_present(args, "--resume"),
        job_delay: Duration::from_millis(parse_arg(args, "--job-delay-ms", 0u64)?),
        queue_limit: {
            let limit: usize = parse_arg(args, "--queue-limit", 64usize)?;
            if limit == 0 {
                return Err(UsageError::new("--queue-limit", "must be at least 1"));
            }
            limit
        },
        deadline: arg_value(args, "--deadline-ms")
            .map(|raw| {
                raw.parse::<u64>().map(Duration::from_millis).map_err(|_| {
                    UsageError::new("--deadline-ms", format!("cannot parse \"{raw}\""))
                })
            })
            .transpose()?,
        poll_interval: Duration::from_millis(parse_arg(args, "--poll-ms", 2u64)?),
        shutdown: Arc::clone(&shutdown),
        quiesce: Arc::clone(&quiesce),
    };

    let spool = match SpoolDir::open(&spool_dir) {
        Ok(spool) => spool,
        Err(error) => {
            eprintln!("campaign_daemon: {error}");
            return Ok(ExitCode::from(3));
        }
    };

    sig::install();
    // Bridge the async-signal-safe static into the daemon's drain flag.
    let signal_bridge = {
        let shutdown = Arc::clone(&shutdown);
        let done = Arc::new(AtomicBool::new(false));
        let done_clone = Arc::clone(&done);
        let handle = std::thread::spawn(move || {
            while !done_clone.load(Ordering::SeqCst) {
                if SIGNALLED.load(Ordering::SeqCst) {
                    shutdown.store(true, Ordering::SeqCst);
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        (done, handle)
    };

    // Trace replay runs open-loop on its own thread; once the whole
    // trace has been offered, quiesce so the run ends when drained.
    let replay = trace_path.map(|path| {
        let spool = spool.clone();
        let injector = injector.clone();
        let quiesce = Arc::clone(&quiesce);
        std::thread::spawn(move || {
            let result = load_trace(&path).and_then(|events| {
                replay_trace_injected(&spool, &events, Instant::now(), &injector)
            });
            quiesce.store(true, Ordering::SeqCst);
            result
        })
    });
    if replay.is_none() && arg_present(args, "--once") {
        quiesce.store(true, Ordering::SeqCst);
    }

    let outcome = run_daemon(&spool, &journal, &options, &injector);
    signal_bridge.0.store(true, Ordering::SeqCst);
    let _ = signal_bridge.1.join();
    if let Some(handle) = replay {
        match handle.join() {
            Ok(Ok(_)) => {}
            Ok(Err(error)) => {
                eprintln!("campaign_daemon: trace replay: {error}");
                return Ok(ExitCode::from(3));
            }
            Err(_) => {
                eprintln!("campaign_daemon: trace replay thread panicked");
                return Ok(ExitCode::from(3));
            }
        }
    }

    match outcome {
        Ok(summary) => {
            if let Some(path) = &export_path {
                if let Err(error) = summary.export.write(path) {
                    eprintln!("campaign_daemon: {error}");
                    return Ok(ExitCode::from(3));
                }
            }
            println!(
                "daemon: {} jobs ({} accepted, {} duplicate, {} shed, {} rejected, \
                 {} timed-out attempts, {} executed, {} resumed, {} retries, {} poisoned){}",
                summary.plan.len(),
                summary.accepted,
                summary.duplicates,
                summary.shed,
                summary.rejected,
                summary.timed_out,
                summary.executed,
                summary.skipped,
                summary.retries,
                summary.poisoned.len(),
                if summary.drained { ", drained" } else { "" }
            );
            if summary.poisoned.is_empty() {
                Ok(ExitCode::SUCCESS)
            } else {
                for job in &summary.poisoned {
                    eprintln!("campaign_daemon: job {job} is poison-quarantined");
                }
                Ok(ExitCode::from(4))
            }
        }
        Err(error) => {
            eprintln!("campaign_daemon: {error}");
            Ok(ExitCode::from(3))
        }
    }
}
